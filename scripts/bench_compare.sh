#!/usr/bin/env bash
# Compares a freshly generated BENCH artifact against a checked-in
# baseline.
#
# By default every cell is deterministic — virtual-time latencies,
# message totals, match counts, labels — and must match the baseline
# EXACTLY: a drift there is a behavioral regression, not noise. An
# artifact that carries real wall-clock measurements (the scale sweep's
# build/insert/query timings and peak RSS) opts specific columns out via
# a regex; those cells only need to stay within a generous ratio of the
# baseline, and only once they are large enough to rise above scheduler
# noise.
#
# Usage:
#   scripts/bench_compare.sh <fresh.json> <baseline.json> [timing-regex]
#
#   timing-regex: optional; column names matching it are compared with
#                 the loose wall-clock rule instead of exact equality
#                 (e.g. '_ms$|^rss_kb$' for the scale sweep). Without it,
#                 all columns are exact.
#
# Tunables (environment):
#   BENCH_COMPARE_MAX_RATIO  max fresh/baseline ratio either way (default 25)
#   BENCH_COMPARE_FLOOR_MS   timings where both sides are below this floor
#                            are ignored as noise (default 200)
set -euo pipefail

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
    echo "usage: $0 <fresh.json> <baseline.json> [timing-regex]" >&2
    exit 2
fi

python3 - "$1" "$2" "${3:-}" <<'EOF'
import json, os, re, sys

fresh_path, base_path, timing_re = sys.argv[1], sys.argv[2], sys.argv[3]
max_ratio = float(os.environ.get("BENCH_COMPARE_MAX_RATIO", "25"))
floor_ms = float(os.environ.get("BENCH_COMPARE_FLOOR_MS", "200"))

fresh = json.load(open(fresh_path))
base = json.load(open(base_path))

if fresh["columns"] != base["columns"]:
    sys.exit(f"column mismatch:\n  fresh:    {fresh['columns']}\n  baseline: {base['columns']}")
if len(fresh["rows"]) != len(base["rows"]):
    sys.exit(f"row count mismatch: fresh {len(fresh['rows'])} vs baseline {len(base['rows'])}")

def is_timing(col):
    return bool(timing_re) and re.search(timing_re, col) is not None

errors = []
checked_exact = checked_timing = skipped_noise = 0
for i, (frow, brow) in enumerate(zip(fresh["rows"], base["rows"])):
    label = "/".join(str(frow[c]) for c in fresh["columns"][:2])
    for col in fresh["columns"]:
        f, b = frow[col], brow[col]
        where = f"row {i} ({label}) column {col}"
        if is_timing(col):
            f, b = float(f), float(b)
            if max(f, b) < floor_ms:
                skipped_noise += 1
                continue
            checked_timing += 1
            lo, hi = sorted((max(f, 1e-9), max(b, 1e-9)))
            if hi / lo > max_ratio:
                errors.append(f"{where}: fresh {f} vs baseline {b} "
                              f"exceeds {max_ratio}x ratio")
        else:
            checked_exact += 1
            if f != b:
                errors.append(f"{where}: fresh {f!r} != baseline {b!r} "
                              "(deterministic column)")

if errors:
    sys.exit("bench_compare FAILED:\n  " + "\n  ".join(errors))
name = os.path.basename(fresh_path)
print(f"bench_compare OK [{name}]: {checked_exact} deterministic cells exact, "
      f"{checked_timing} timing cells within {max_ratio}x, "
      f"{skipped_noise} sub-{floor_ms:g}ms timings ignored as noise")
EOF
