#!/usr/bin/env bash
# Repo gate: formatting, lints, the full test suite, and a bench smoke run.
# Mirrors .github/workflows/ci.yml stage for stage.
#
# Usage:
#   ./scripts/check.sh           # full gate (what CI runs)
#   ./scripts/check.sh --quick   # fmt + clippy + debug tests only
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "unknown flag: $arg (supported: --quick)" >&2; exit 2 ;;
    esac
done

STAGE_NAMES=()
STAGE_SECS=()
stage() {
    local name="$1"
    shift
    echo "==> $name"
    local start=$SECONDS
    "$@"
    STAGE_NAMES+=("$name")
    STAGE_SECS+=($((SECONDS - start)))
}

report() {
    echo
    echo "Stage timings:"
    for i in "${!STAGE_NAMES[@]}"; do
        printf '  %-28s %4ds\n' "${STAGE_NAMES[$i]}" "${STAGE_SECS[$i]}"
    done
}

bench_smoke() {
    # Every figure binary from the shared manifest, scaled down, on two
    # workers. Validates that the emitted artifact under target/smoke/ is
    # well-formed JSON — a bench that panics, hangs, or emits garbage
    # fails the gate.
    local bins=()
    while IFS= read -r bin; do
        [[ -z "$bin" || "$bin" == \#* ]] && continue
        bins+=("$bin")
    done < scripts/figure_bins.txt
    rm -rf target/smoke
    for bin in "${bins[@]}"; do
        local start=$SECONDS
        "target/release/$bin" --smoke --jobs 2 >/dev/null
        printf '    %-24s %4ds\n' "$bin" $((SECONDS - start))
    done
    local artifacts
    artifacts=$(ls target/smoke/BENCH_*.json | wc -l)
    if [ "$artifacts" -ne "${#bins[@]}" ]; then
        echo "expected ${#bins[@]} smoke artifacts, found $artifacts" >&2
        exit 1
    fi
    for f in target/smoke/BENCH_*.json; do
        python3 -m json.tool "$f" >/dev/null
    done
    # Every artifact must carry virtual-time columns: latency percentiles
    # (…_ms) or cumulative virtual time / busy time (…_s).
    python3 - target/smoke/BENCH_*.json <<'EOF'
import json, sys
for path in sys.argv[1:]:
    cols = json.load(open(path))["columns"]
    if not any(c.endswith("_ms") or c.endswith("_s") for c in cols):
        sys.exit(f"{path}: no virtual-time column among {cols}")
EOF
    # Every smoke artifact diffs against its checked-in baseline under
    # results/. All cells are deterministic (exact) except the scale
    # sweep's wall-clock timing/RSS columns, which get the loose ratio
    # rule.
    for f in target/smoke/BENCH_*.json; do
        local name baseline timing_re
        name=$(basename "$f" .json)
        baseline="results/${name}_smoke.json"
        if [ ! -f "$baseline" ]; then
            echo "missing baseline $baseline for $f (regenerate and check it in)" >&2
            exit 1
        fi
        timing_re=""
        [ "$name" = "BENCH_scale" ] && timing_re='_ms$|^rss_kb$'
        ./scripts/bench_compare.sh "$f" "$baseline" "$timing_re"
    done
    echo "    ${#bins[@]} binaries ran; $artifacts artifacts validated against baselines"
}

stage "cargo fmt --check" cargo fmt --all --check
stage "cargo clippy (-D warnings)" cargo clippy --workspace --all-targets -- -D warnings

if [ "$QUICK" -eq 1 ]; then
    stage "cargo test (debug)" cargo test --workspace -q
    report
    echo "Quick checks passed (full gate: ./scripts/check.sh)."
    exit 0
fi

stage "cargo build --release" cargo build --release --workspace
stage "cargo test" cargo test --workspace -q
stage "conservation audit" cargo test -q --test conservation
stage "bench smoke (--smoke --jobs 2)" bench_smoke

report
echo "All checks passed."
