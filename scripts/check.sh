#!/usr/bin/env bash
# Repo gate: formatting, lints, and the full test suite.
# Run from the workspace root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> conservation audit (debug assertions: cost == ledger delta, all substrates)"
cargo test -q --test conservation

echo "All checks passed."
