//! Continuous monitoring and nearest-neighbor queries — the §6 extensions.
//!
//! A control room installs a standing query ("alert me on any hot & dry
//! reading"); sensors keep reporting; each matching reading is pushed to
//! the sink the moment it is stored. Afterwards the operator asks for the
//! reading closest to a reference condition.
//!
//! Run: `cargo run --example continuous_monitoring --release`

use pool_dcs::core::{Event, PoolConfig, PoolSystem, RangeQuery};
use pool_dcs::netsim::{Deployment, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deployment = Deployment::paper_setting(400, 40.0, 20.0, 21)?;
    let topology = Topology::build(deployment.nodes(), 40.0)?;
    let mut pool = PoolSystem::build(topology, deployment.field(), PoolConfig::paper())?;

    // The control room (sink) registers: temperature ≥ 0.8 AND humidity ≤ 0.2.
    let sink = NodeId(0);
    let alert = RangeQuery::from_bounds(vec![Some((0.8, 1.0)), Some((0.0, 0.2)), None])?;
    let install = pool.install_monitor(sink, alert.clone())?;
    let monitor_id = install.id;
    println!(
        "installed standing query {alert} as {monitor_id:?} ({} messages, watching {}/{} cells)",
        install.cost.total(),
        install.completeness.cells_reached,
        install.completeness.cells_relevant
    );

    // 300 readings stream in; matching ones are pushed to the sink.
    let mut rng = StdRng::seed_from_u64(3);
    let mut alerts = 0usize;
    let mut alert_messages = 0u64;
    for i in 0..300 {
        let event = Event::new(vec![rng.gen(), rng.gen(), rng.gen()])?;
        let receipt = pool.insert_from(NodeId(i % 400), event)?;
        for n in &receipt.notifications {
            alerts += 1;
            alert_messages += n.messages;
        }
    }
    println!("{alerts} alerts pushed to the control room ({alert_messages} notification messages)");
    let ground_truth = pool.brute_force_query(&alert).len();
    assert_eq!(alerts, ground_truth, "every matching reading must alert exactly once");

    // Nearest-neighbor: which stored reading is closest to the reference
    // condition <0.85, 0.1, 0.5>?
    let probe = [0.85, 0.1, 0.5];
    let (nearest, cost) = pool.nearest(sink, &probe)?;
    let (event, distance) = nearest.expect("events were stored");
    println!(
        "nearest reading to <0.85, 0.10, 0.50>: {event} at distance {distance:.4} \
         ({} messages)",
        cost.total()
    );

    // Top-3 via the same machinery.
    let top3 = pool.k_nearest(sink, &probe, 3)?;
    println!("top-3 nearest ({} of 300 cells visited):", top3.cells_visited);
    for (event, d) in &top3.neighbors {
        println!("  {event}  (distance {d:.4})");
    }

    pool.remove_monitor(monitor_id)?;
    println!("standing query removed; {} monitors remain", pool.monitors().len());
    Ok(())
}
