//! Environment monitoring: the paper's motivating scenario.
//!
//! Modern sensor boards report several environment parameters at once
//! (temperature, humidity, light, barometric pressure — §1 cites the
//! Crossbow MEP hardware). This example runs a 4-dimensional deployment
//! through all four query types of §2 plus in-network aggregation.
//!
//! Run: `cargo run --example environment_monitoring`

use pool_dcs::core::{AggregateOp, PoolConfig, PoolSystem, QueryType, RangeQuery};
use pool_dcs::netsim::{Deployment, NodeId, Topology};
use pool_dcs::workloads::events::{EventDistribution, EventGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIMS: usize = 4; // temperature, humidity, light, pressure

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deployment = Deployment::paper_setting(600, 40.0, 20.0, 99)?;
    let topology = Topology::build(deployment.nodes(), 40.0)?;
    let config = PoolConfig::paper().with_dims(DIMS).with_seed(99);
    let mut pool = PoolSystem::build(topology, deployment.field(), config)?;

    // Every sensor takes three readings. Values are normalized: e.g.
    // temperature 0.0 = -20 C, 1.0 = +60 C.
    let mut rng = StdRng::seed_from_u64(1);
    let mut generator = EventGenerator::new(DIMS, EventDistribution::Uniform);
    let n = pool.topology().len() as u32;
    for node in 0..n {
        for _ in 0..3 {
            let event = generator.generate(&mut rng);
            pool.insert_from(NodeId(node), event)?;
        }
    }
    println!("{} readings stored in-network", pool.store().len());

    let sink = NodeId(rng.gen_range(0..n));

    // Type 3 — exact-match range query: a full specification of all four
    // parameters ("warm, humid, bright, low-pressure corners of the lab").
    let q3 = RangeQuery::exact(vec![(0.7, 0.9), (0.6, 0.8), (0.5, 1.0), (0.0, 0.4)])?;
    assert_eq!(q3.query_type(), QueryType::ExactMatchRange);
    report(&mut pool, sink, &q3, "Type 3 exact-match range")?;

    // Type 4 — partial-match range query: only temperature and humidity
    // matter. The paper calls this the most common and most expensive type.
    let q4 = RangeQuery::from_bounds(vec![Some((0.7, 0.9)), Some((0.6, 0.8)), None, None])?;
    assert_eq!(q4.query_type(), QueryType::PartialMatchRange);
    report(&mut pool, sink, &q4, "Type 4 partial-match range")?;

    // Type 1 — exact-match point query: re-find one specific reading.
    let probe = pool.brute_force_query(&q3).into_iter().next();
    if let Some(event) = probe {
        let q1 = RangeQuery::point(event.values().to_vec())?;
        assert_eq!(q1.query_type(), QueryType::ExactMatchPoint);
        report(&mut pool, sink, &q1, "Type 1 exact-match point")?;
    }

    // Type 2 — partial-match point query: "exactly this temperature,
    // anything else".
    let q2 = RangeQuery::from_bounds(vec![Some((0.5, 0.5)), None, None, None])?;
    assert_eq!(q2.query_type(), QueryType::PartialMatchPoint);
    report(&mut pool, sink, &q2, "Type 2 partial-match point")?;

    // In-network aggregation (§3.2.3): the splitters compute the answer,
    // so only a scalar travels back.
    let hot = RangeQuery::from_bounds(vec![Some((0.8, 1.0)), None, None, None])?;
    let count = pool.aggregate_from(sink, &hot, AggregateOp::Count)?;
    let avg_rh = pool.aggregate_from(sink, &hot, AggregateOp::Avg(1))?;
    assert!(count.completeness.is_complete(), "loss-free radio: the aggregate is authoritative");
    println!(
        "\naggregates over hot readings (T >= 0.8): COUNT = {}, AVG(humidity) = {:.3} \
         ({} messages for the count)",
        count.value.unwrap_or(0.0),
        avg_rh.value.unwrap_or(f64::NAN),
        count.cost.total()
    );
    Ok(())
}

fn report(
    pool: &mut PoolSystem,
    sink: NodeId,
    query: &RangeQuery,
    label: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let result = pool.query_from(sink, query)?;
    let truth = pool.brute_force_query(query);
    assert_eq!(result.events.len(), truth.len(), "network answer must match ground truth");
    println!(
        "{label}: {} -> {} events, {} messages ({} relevant cells, {} pools)",
        query,
        result.events.len(),
        result.cost.total(),
        result.relevant_cells,
        result.pools_visited
    );
    Ok(())
}
