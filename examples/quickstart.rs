//! Quickstart: deploy Pool on a simulated sensor network, store events,
//! and answer multi-dimensional range queries.
//!
//! Run: `cargo run --example quickstart`

use pool_dcs::core::{Event, PoolConfig, PoolSystem, RangeQuery};
use pool_dcs::netsim::{Deployment, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Deploy 300 sensors at the paper's density: 40 m radio range with
    //    ~20 neighbors each, uniformly placed in a square field.
    let deployment = Deployment::paper_setting(300, 40.0, 20.0, 7)?;
    let field = deployment.field();
    let topology = Topology::build(deployment.nodes(), 40.0)?;
    println!(
        "deployed {} sensors in a {:.0} m x {:.0} m field (mean degree {:.1})",
        topology.len(),
        field.width(),
        field.height(),
        topology.mean_degree()
    );

    // 2. Build the Pool storage system: α = 5 m grid cells, three 10x10
    //    pools (one per event dimension).
    let mut pool = PoolSystem::build(topology, field, PoolConfig::paper())?;
    for (i, spec) in pool.layout().pools().iter().enumerate() {
        println!("pool P{} pivot at {}", i + 1, spec.pivot);
    }

    // 3. Sensors detect 3-dimensional events <temperature, humidity, light>
    //    (values normalized to [0, 1]) and store them in-network.
    let readings = [
        [0.71, 0.33, 0.20],
        [0.55, 0.62, 0.10],
        [0.90, 0.88, 0.95],
        [0.12, 0.44, 0.31],
        [0.74, 0.31, 0.25],
    ];
    for (i, values) in readings.iter().enumerate() {
        let source = pool.topology().nodes()[i * 37].id;
        let receipt = pool.insert_from(source, Event::new(values.to_vec())?)?;
        println!(
            "event <{:.2}, {:.2}, {:.2}> stored in {} of P{} ({} messages)",
            values[0],
            values[1],
            values[2],
            receipt.placement.cell,
            receipt.placement.pool_dim + 1,
            receipt.messages
        );
    }

    // 4. An exact-match range query: "temperature in [0.7, 0.8], humidity
    //    in [0.3, 0.4], any light below 0.5".
    let sink = pool.topology().nodes()[250].id;
    let query = RangeQuery::exact(vec![(0.7, 0.8), (0.3, 0.4), (0.0, 0.5)])?;
    let result = pool.query_from(sink, &query)?;
    println!(
        "\nexact-match {query} -> {} events, {} messages ({} cells relevant)",
        result.events.len(),
        result.cost.total(),
        result.relevant_cells
    );
    for event in &result.events {
        println!("  {event}");
    }

    // 5. A partial-match query: only temperature is constrained.
    let partial = RangeQuery::from_bounds(vec![Some((0.7, 0.8)), None, None])?;
    let result = pool.query_from(sink, &partial)?;
    println!(
        "partial-match {partial} -> {} events, {} messages",
        result.events.len(),
        result.cost.total()
    );
    Ok(())
}
