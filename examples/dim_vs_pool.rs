//! Head-to-head: Pool vs the DIM baseline on one shared network.
//!
//! A compact version of the paper's §5 evaluation: identical deployment,
//! identical events, identical queries — then compare per-query message
//! costs for exact-match and partial-match workloads.
//!
//! Run: `cargo run --example dim_vs_pool --release`

use pool_dcs::core::{Event, PoolConfig, PoolSystem, RangeQuery};
use pool_dcs::dim::DimSystem;
use pool_dcs::netsim::{Deployment, NodeId, Topology};
use pool_dcs::workloads::events::{EventDistribution, EventGenerator};
use pool_dcs::workloads::queries::{exact_query, partial_query, RangeSizeDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 600usize;
    let deployment = Deployment::paper_setting(n, 40.0, 20.0, 12345)?;
    let topology = Topology::build(deployment.nodes(), 40.0)?;
    let field = deployment.field();

    let mut pool = PoolSystem::build(topology.clone(), field, PoolConfig::paper())?;
    let mut dim = DimSystem::build(topology, field, 3)?;

    // Load the same 3 events per node into both systems.
    let mut rng = StdRng::seed_from_u64(6);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
    for node in 0..n as u32 {
        for _ in 0..3 {
            let event: Event = generator.generate(&mut rng);
            pool.insert_from(NodeId(node), event.clone())?;
            dim.insert_from(NodeId(node), event)?;
        }
    }
    println!("{} events stored in each system ({n} nodes)\n", pool.store().len());

    let mut run = |label: &str, queries: Vec<RangeQuery>, rng: &mut StdRng| {
        let mut pool_total = 0u64;
        let mut dim_total = 0u64;
        let count = queries.len() as f64;
        for q in queries {
            let sink = NodeId(rng.gen_range(0..n as u32));
            let p = pool.query_from(sink, &q).expect("pool query");
            let d = dim.query_from(sink, &q).expect("dim query");
            assert_eq!(p.events.len(), d.events.len(), "systems must agree on {q}");
            pool_total += p.cost.total();
            dim_total += d.cost.total();
        }
        println!(
            "{label:32} pool {:7.1} msgs | dim {:7.1} msgs | dim/pool {:.2}x",
            pool_total as f64 / count,
            dim_total as f64 / count,
            dim_total as f64 / pool_total as f64
        );
    };

    let trials = 40;
    let mut qrng = StdRng::seed_from_u64(8);

    let qs = (0..trials)
        .map(|_| exact_query(&mut qrng, 3, RangeSizeDistribution::Exponential { mean: 0.1 }))
        .collect();
    run("exact match (small ranges)", qs, &mut qrng);

    let qs =
        (0..trials).map(|_| exact_query(&mut qrng, 3, RangeSizeDistribution::Uniform)).collect();
    run("exact match (uniform ranges)", qs, &mut qrng);

    let qs = (0..trials).map(|_| partial_query(&mut qrng, 3, 1)).collect();
    run("1-partial match", qs, &mut qrng);

    let qs = (0..trials).map(|_| partial_query(&mut qrng, 3, 2)).collect();
    run("2-partial match", qs, &mut qrng);

    Ok(())
}
