//! Renders a deployment as ASCII art: the field, the three pools, a GPSR
//! route, and an insertion's path — a terminal Figure 2.
//!
//! Run: `cargo run --example network_map --release`

use pool_dcs::core::{Event, PoolConfig, PoolSystem};
use pool_dcs::gpsr::{Gpsr, Planarization};
use pool_dcs::netsim::render::Canvas;
use pool_dcs::netsim::{Deployment, NodeId, Point, Rect, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deployment = Deployment::paper_setting(300, 40.0, 20.0, 17)?;
    let field = deployment.field();
    let topology = Topology::build(deployment.nodes(), 40.0)?;
    let mut pool = PoolSystem::build(topology.clone(), field, PoolConfig::paper())?;

    // Background: the k pools as numbered regions.
    let mut canvas = Canvas::terminal(field);
    let alpha = pool.grid().alpha();
    for spec in pool.layout().pools().to_vec() {
        let lo = pool.grid().center(spec.pivot);
        let hi = pool.grid().center(spec.cell_at(spec.side - 1, spec.side - 1));
        let region = Rect::new(
            Point::new(lo.x - alpha / 2.0, lo.y - alpha / 2.0),
            Point::new(hi.x + alpha / 2.0, hi.y + alpha / 2.0),
        );
        let glyph = char::from_digit(spec.dim as u32 + 1, 10).unwrap();
        canvas.fill_region(region, glyph);
    }
    // Mid layer: the sensors.
    canvas.draw_nodes(&topology, '.');
    // Foreground: one insertion's route from the detecting node to the
    // index node of its Theorem 3.1 cell.
    let source = NodeId(0);
    let event = Event::new(vec![0.72, 0.35, 0.18])?;
    let receipt = pool.insert_from(source, event)?;
    let gpsr = Gpsr::new(&topology, Planarization::Gabriel);
    let index_node = pool.index_node_of(receipt.placement.cell).unwrap();
    let route = gpsr.route_to_node(&topology, source, index_node)?;
    canvas.draw_route(&topology, &route.path, '*');

    println!(
        "{} sensors in a {:.0} m field; pools 1-3 shown as digits;",
        topology.len(),
        field.width()
    );
    println!(
        "route S->D: inserting <0.72, 0.35, 0.18> into {} of P{} ({} hops)\n",
        receipt.placement.cell,
        receipt.placement.pool_dim + 1,
        route.hops()
    );
    print!("{}", canvas.render());
    Ok(())
}
