//! Hotspots under skewed data, and Pool's workload-sharing cure (§4.2).
//!
//! A wildfire-style scenario: once the fire starts, almost every reading is
//! "very hot, very dry" — so in any value-partitioned store they all hash
//! to the same place. Without countermeasures the index node for that value
//! region absorbs the whole burst (and dies first). With workload sharing,
//! overloaded index nodes chain overflow storage to nearby nodes.
//!
//! Run: `cargo run --example hotspot_skew`

use pool_dcs::core::{Event, PoolConfig, PoolSystem, RangeQuery, SharingPolicy};
use pool_dcs::netsim::energy::{EnergyLedger, EnergyModel};
use pool_dcs::netsim::{Deployment, NodeId, Topology};
use pool_dcs::workloads::events::{EventDistribution, EventGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deployment = Deployment::paper_setting(600, 40.0, 20.0, 5)?;
    let topology = Topology::build(deployment.nodes(), 40.0)?;

    // The fire signature: temperature ~0.9, humidity ~0.1, light ~0.8.
    let fire = EventDistribution::Hotspot { center: vec![0.9, 0.1, 0.8], std_dev: 0.03 };
    let burst = 900usize;

    for (label, sharing) in [("without sharing", None), ("with sharing (cap 25)", Some(25))] {
        let mut config = PoolConfig::paper().with_seed(5);
        if let Some(cap) = sharing {
            config = config.with_sharing(SharingPolicy::new(cap));
        }
        let mut pool = PoolSystem::build(topology.clone(), deployment.field(), config)?;

        let mut rng = StdRng::seed_from_u64(11);
        let mut generator = EventGenerator::new(3, fire.clone());
        for i in 0..burst {
            let event: Event = generator.generate(&mut rng);
            pool.insert_from(NodeId((i % 600) as u32), event)?;
        }

        // Estimate the energy picture from the traffic ledger.
        let mut ledger = EnergyLedger::new(pool.topology().len(), 1.0, EnergyModel::default());
        ledger.charge_traffic(pool.traffic());

        println!("--- {label} ---");
        println!("  events stored            : {}", pool.store().len());
        println!("  max events on one node   : {}", pool.store().max_node_load());
        println!("  nodes holding events     : {}", pool.store().loaded_nodes());
        println!("  total insert messages    : {}", pool.traffic().total_messages());
        println!("  busiest node sent        : {} messages", pool.traffic().max_load());
        println!(
            "  min remaining battery    : {:.4} (fraction of capacity)",
            ledger.min_remaining_fraction()
        );

        // Storage stays fully queryable either way.
        let q = RangeQuery::exact(vec![(0.8, 1.0), (0.0, 0.25), (0.6, 1.0)])?;
        let found = pool.query_from(NodeId(3), &q)?.events.len();
        let truth = pool.brute_force_query(&q).len();
        assert_eq!(found, truth);
        println!("  fire-region query found  : {found} events (ground truth {truth})\n");
    }
    Ok(())
}
