//! # pool-dcs — Supporting Multi-Dimensional Range Query for Sensor Networks
//!
//! A complete, from-scratch Rust reproduction of the **Pool** data-centric
//! storage scheme (Chung, Su & Lee, ICDCS 2007), including every substrate
//! the paper builds on and the DIM baseline it evaluates against.
//!
//! ## Crates (re-exported here)
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`netsim`] | `pool-netsim` | deployment, unit-disk topology, discrete-event queue, message/energy accounting |
//! | [`gpsr`] | `pool-gpsr` | GPSR routing: greedy + GG/RNG planarization + perimeter mode |
//! | [`transport`] | `pool-transport` | pluggable routing substrate: `Transport` trait, memoizing route cache, per-layer traffic ledger |
//! | [`ght`] | `pool-ght` | geographic hash table (key → location, home nodes) |
//! | [`dim`] | `pool-dim` | the DIM baseline (zone tree, codes, range queries) |
//! | [`core`] | `pool-core` | **the paper's contribution**: pools, Theorem 3.1 insertion, Theorem 3.2 resolving, splitter forwarding, workload sharing |
//! | [`service`] | `pool-service` | sharded concurrent front end: `Sync` service handle, admission windows, query coalescing |
//! | [`workloads`] | `pool-workloads` | §5.1 event & query generators |
//!
//! ## Quickstart
//!
//! ```
//! use pool_dcs::core::{Event, PoolConfig, PoolSystem, RangeQuery};
//! use pool_dcs::netsim::{Deployment, Topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 300-node network at the paper's density.
//! let deployment = Deployment::paper_setting(300, 40.0, 20.0, 7)?;
//! let topology = Topology::build(deployment.nodes(), 40.0)?;
//! let mut pool = PoolSystem::build(topology, deployment.field(), PoolConfig::paper())?;
//!
//! // A sensor detects a 3-dimensional event and stores it in-network.
//! let sensor = pool.topology().nodes()[12].id;
//! pool.insert_from(sensor, Event::new(vec![0.71, 0.33, 0.20])?)?;
//!
//! // Any node can issue a partial-match range query.
//! let sink = pool.topology().nodes()[250].id;
//! let query = RangeQuery::from_bounds(vec![Some((0.7, 0.8)), None, None])?;
//! let result = pool.query_from(sink, &query)?;
//! assert_eq!(result.events.len(), 1);
//! println!("answered with {} messages", result.cost.total());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use pool_core as core;
pub use pool_dim as dim;
pub use pool_ght as ght;
pub use pool_gpsr as gpsr;
pub use pool_netsim as netsim;
pub use pool_service as service;
pub use pool_transport as transport;
pub use pool_workloads as workloads;
