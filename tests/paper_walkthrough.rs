//! The paper's §3–§4 narrative as one executable walkthrough: every worked
//! example runs against a *deployed* system (real routing, real message
//! accounting), not just the pure math.

use pool_dcs::core::grid::CellCoord;
use pool_dcs::core::{Event, PoolConfig, PoolSystem, RangeQuery};
use pool_dcs::netsim::{Deployment, NodeId, Placement, Rect, Topology};

/// A dense 100 m network hosting exactly Figure 2's pool layout
/// (l = 5, pivots C(1,2), C(2,10), C(7,3)).
fn figure2_system() -> PoolSystem {
    let mut seed = 7u64;
    loop {
        let dep = Deployment::new(Rect::square(100.0), 250, Placement::Uniform, seed);
        let topo = Topology::build(dep.nodes(), 30.0).unwrap();
        if topo.is_connected() {
            let config = PoolConfig::paper().with_pool_side(5).with_pivots(vec![
                CellCoord::new(1, 2),
                CellCoord::new(2, 10),
                CellCoord::new(7, 3),
            ]);
            return PoolSystem::build(topo, Rect::square(100.0), config).unwrap();
        }
        seed += 1;
    }
}

#[test]
fn section_3_and_4_walkthrough() {
    let mut pool = figure2_system();
    let sink = NodeId(42);

    // --- §3.1.2: inserting E = <0.4, 0.3, 0.1> ---------------------------
    // "the est value 0.4 falls within [0.4, 0.6) ... the second est
    //  value 0.3 falls within [0.24, 0.36) of the cell at the third column
    //  and third row (i.e. C(3,4)) of P1. Thus, E is stored in C(3,4)."
    let receipt = pool.insert_from(NodeId(3), Event::new(vec![0.4, 0.3, 0.1]).unwrap()).unwrap();
    assert_eq!(receipt.placement.pool_dim, 0, "E goes to P1");
    assert_eq!(receipt.placement.cell, CellCoord::new(3, 4));

    // --- Example 3.1 / Figure 4: exact-match resolving -------------------
    // Q = <[0.2,0.3], [0.25,0.35], [0.21,0.24]> touches exactly C(2,5) in
    // P1, C(3,12) and C(3,13) in P2, and nothing in P3.
    let q31 = RangeQuery::exact(vec![(0.2, 0.3), (0.25, 0.35), (0.21, 0.24)]).unwrap();
    let plan = pool.explain(sink, &q31).unwrap();
    let cells: Vec<(usize, CellCoord)> =
        plan.pools.iter().flat_map(|p| p.cells.iter().map(move |c| (p.dim, c.cell))).collect();
    assert_eq!(
        cells,
        vec![(0, CellCoord::new(2, 5)), (1, CellCoord::new(3, 12)), (1, CellCoord::new(3, 13)),]
    );
    assert!(plan.pools[2].pruned, "no cell of P3 is relevant (Figure 4c)");

    // Running the query over the network finds nothing yet — our stored
    // event <0.4, 0.3, 0.1> does not satisfy Q (V1 = 0.4 > 0.3).
    let result = pool.query_from(sink, &q31).unwrap();
    assert!(result.events.is_empty());
    assert_eq!(result.relevant_cells, 3);
    assert_eq!(result.pools_visited, 2, "P3 is never contacted");

    // Store a qualifying event and ask again: <0.28, 0.34, 0.22> is the
    // kind of event the theorem's R_H = [0.25, 0.35] (not the example
    // prose's [0.25, 0.3]) exists to catch — stored in P2 by its greatest
    // value 0.34.
    let witness = Event::new(vec![0.28, 0.34, 0.22]).unwrap();
    let receipt = pool.insert_from(NodeId(9), witness.clone()).unwrap();
    assert_eq!(receipt.placement.pool_dim, 1);
    let result = pool.query_from(sink, &q31).unwrap();
    assert_eq!(result.events, vec![witness]);

    // --- Example 3.2 / Figure 5: partial-match resolving ------------------
    // Q = <*, *, [0.8, 0.84]> resolves to C(5,6) in P1, C(6,14) in P2, and
    // the column C(11,3)..C(11,7) in P3.
    let q32 = RangeQuery::from_bounds(vec![None, None, Some((0.8, 0.84))]).unwrap();
    let plan = pool.explain(sink, &q32).unwrap();
    let mut cells: Vec<(usize, CellCoord)> =
        plan.pools.iter().flat_map(|p| p.cells.iter().map(move |c| (p.dim, c.cell))).collect();
    cells.sort();
    assert_eq!(
        cells,
        vec![
            (0, CellCoord::new(5, 6)),
            (1, CellCoord::new(6, 14)),
            (2, CellCoord::new(11, 3)),
            (2, CellCoord::new(11, 4)),
            (2, CellCoord::new(11, 5)),
            (2, CellCoord::new(11, 6)),
            (2, CellCoord::new(11, 7)),
        ]
    );
    // The §2 rewrite makes this partial query flow through the same
    // mechanism: 7 of 75 cells — "a large number of cells can be screened".
    assert!(plan.pruned_fraction() > 0.9);

    // --- §4.1: multiple greatest values -----------------------------------
    // E = <0.4, 0.4, 0.2> has candidates in P1 and P2; exactly one copy is
    // stored (at the candidate closest to the detection point), and the
    // query mechanism still retrieves it without extra forwarding.
    let tied = Event::new(vec![0.4, 0.4, 0.2]).unwrap();
    let before = pool.store().len();
    let receipt = pool.insert_from(NodeId(100), tied.clone()).unwrap();
    assert_eq!(pool.store().len(), before + 1, "one copy only");
    assert!(receipt.placement.pool_dim <= 1);
    let q41 = RangeQuery::exact(vec![(0.35, 0.45), (0.35, 0.45), (0.1, 0.3)]).unwrap();
    let result = pool.query_from(sink, &q41).unwrap();
    assert_eq!(result.events, vec![tied]);

    // --- Final integrity audit --------------------------------------------
    let audit = pool.audit();
    assert!(audit.is_healthy(), "{:?}", audit.violations);
}
