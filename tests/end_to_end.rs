//! Cross-crate integration tests: Pool and DIM deployed over identical
//! networks and workloads must agree with each other and with brute-force
//! ground truth on every query type, at multiple scales.

use pool_dcs::core::{Event, PoolConfig, PoolSystem, RangeQuery};
use pool_dcs::dim::DimSystem;
use pool_dcs::netsim::{Deployment, NodeId, Topology};
use pool_dcs::workloads::events::{EventDistribution, EventGenerator};
use pool_dcs::workloads::queries::{
    exact_query, partial_query, partial_query_at, RangeSizeDistribution,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_pair(n: usize, seed: u64, events: usize) -> (PoolSystem, DimSystem) {
    let mut s = seed;
    let (topology, field) = loop {
        let dep = Deployment::paper_setting(n, 40.0, 20.0, s).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            break (topo, dep.field());
        }
        s += 4096;
    };
    let mut pool =
        PoolSystem::build(topology.clone(), field, PoolConfig::paper().with_seed(seed)).unwrap();
    let mut dim = DimSystem::build(topology, field, 3).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
    for i in 0..events {
        let event: Event = generator.generate(&mut rng);
        let src = NodeId((i % n) as u32);
        pool.insert_from(src, event.clone()).unwrap();
        dim.insert_from(src, event).unwrap();
    }
    (pool, dim)
}

fn canon(mut events: Vec<Event>) -> Vec<Vec<i64>> {
    let mut keys: Vec<Vec<i64>> =
        events.drain(..).map(|e| e.values().iter().map(|v| (v * 1e12) as i64).collect()).collect();
    keys.sort();
    keys
}

#[test]
fn pool_and_dim_agree_with_ground_truth_at_multiple_scales() {
    for (n, seed) in [(200usize, 1u64), (400, 2)] {
        let (mut pool, mut dim) = build_pair(n, seed, n * 2);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for trial in 0..25 {
            let q = match trial % 4 {
                0 => exact_query(&mut rng, 3, RangeSizeDistribution::Uniform),
                1 => exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.1 }),
                2 => partial_query(&mut rng, 3, 1),
                _ => partial_query(&mut rng, 3, 2),
            };
            let sink = NodeId(rng.gen_range(0..n as u32));
            let p = pool.query_from(sink, &q).unwrap();
            let d = dim.query_from(sink, &q).unwrap();
            let truth = canon(pool.brute_force_query(&q));
            assert_eq!(canon(p.events), truth, "n={n} trial {trial}: pool wrong on {q}");
            assert_eq!(canon(d.events), truth, "n={n} trial {trial}: dim wrong on {q}");
        }
    }
}

#[test]
fn point_queries_find_every_stored_event() {
    let (mut pool, mut dim) = build_pair(250, 3, 120);
    // Re-query every stored event by exact point.
    let all = pool
        .brute_force_query(&RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap());
    assert_eq!(all.len(), 120);
    for (i, event) in all.iter().enumerate().step_by(7) {
        let q = RangeQuery::point(event.values().to_vec()).unwrap();
        let sink = NodeId((i % 250) as u32);
        let p = pool.query_from(sink, &q).unwrap();
        assert!(
            p.events.iter().any(|e| e == event),
            "pool lost event {event} (found {})",
            p.events.len()
        );
        let d = dim.query_from(sink, &q).unwrap();
        assert!(d.events.iter().any(|e| e == event), "dim lost event {event}");
    }
}

#[test]
fn runs_are_deterministic_in_the_seed() {
    let run = || {
        let (mut pool, mut dim) = build_pair(200, 11, 200);
        let mut rng = StdRng::seed_from_u64(77);
        let mut costs = Vec::new();
        for _ in 0..10 {
            let q = exact_query(&mut rng, 3, RangeSizeDistribution::Uniform);
            let sink = NodeId(rng.gen_range(0..200));
            costs.push((
                pool.query_from(sink, &q).unwrap().cost.total(),
                dim.query_from(sink, &q).unwrap().cost.total(),
            ));
        }
        costs
    };
    assert_eq!(run(), run());
}

#[test]
fn one_at_n_partial_queries_are_correct_for_every_dimension() {
    let (mut pool, mut dim) = build_pair(300, 5, 600);
    let mut rng = StdRng::seed_from_u64(13);
    for dim_idx in 0..3 {
        for _ in 0..5 {
            let q = partial_query_at(&mut rng, 3, dim_idx);
            let sink = NodeId(rng.gen_range(0..300));
            let p = pool.query_from(sink, &q).unwrap();
            let d = dim.query_from(sink, &q).unwrap();
            let truth = canon(pool.brute_force_query(&q));
            assert_eq!(canon(p.events), truth, "pool wrong on {q}");
            assert_eq!(canon(d.events), truth, "dim wrong on {q}");
        }
    }
}

#[test]
fn narrow_queries_cost_less_than_wide_ones() {
    let (mut pool, mut dim) = build_pair(300, 7, 900);
    let narrow = RangeQuery::exact(vec![(0.5, 0.55), (0.5, 0.55), (0.5, 0.55)]).unwrap();
    let wide = RangeQuery::exact(vec![(0.05, 0.95), (0.05, 0.95), (0.05, 0.95)]).unwrap();
    let sink = NodeId(42);
    let pn = pool.query_from(sink, &narrow).unwrap().cost.total();
    let pw = pool.query_from(sink, &wide).unwrap().cost.total();
    assert!(pn < pw, "pool: narrow {pn} >= wide {pw}");
    let dn = dim.query_from(sink, &narrow).unwrap().cost.total();
    let dw = dim.query_from(sink, &wide).unwrap().cost.total();
    assert!(dn < dw, "dim: narrow {dn} >= wide {dw}");
}

#[test]
fn tied_events_are_never_duplicated_or_lost() {
    let (mut pool, mut dim) = build_pair(200, 9, 0);
    // Hand-crafted ties: equal greatest values in various dimension pairs.
    let tied = [
        vec![0.7, 0.7, 0.2],
        vec![0.5, 0.5, 0.5],
        vec![0.3, 0.9, 0.9],
        vec![1.0, 1.0, 0.0],
        vec![0.25, 0.25, 0.25],
    ];
    for (i, values) in tied.iter().enumerate() {
        let e = Event::new(values.clone()).unwrap();
        pool.insert_from(NodeId(i as u32 * 13), e.clone()).unwrap();
        dim.insert_from(NodeId(i as u32 * 13), e).unwrap();
    }
    assert_eq!(pool.store().len(), tied.len(), "exactly one copy per event (§4.1)");
    let q = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
    let p = pool.query_from(NodeId(0), &q).unwrap();
    assert_eq!(p.events.len(), tied.len());
    let d = dim.query_from(NodeId(0), &q).unwrap();
    assert_eq!(d.events.len(), tied.len());
}

#[test]
fn boundary_events_survive_the_roundtrip() {
    let (mut pool, _) = build_pair(200, 15, 0);
    let corners = [
        vec![0.0, 0.0, 0.0],
        vec![1.0, 1.0, 1.0],
        vec![1.0, 0.0, 0.0],
        vec![0.0, 1.0, 0.0],
        vec![0.0, 0.0, 1.0],
        vec![1.0, 1.0, 0.0],
    ];
    for (i, values) in corners.iter().enumerate() {
        pool.insert_from(NodeId(i as u32), Event::new(values.clone()).unwrap()).unwrap();
    }
    let q = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
    let got = pool.query_from(NodeId(100), &q).unwrap();
    assert_eq!(got.events.len(), corners.len(), "boundary values 0.0/1.0 must be retrievable");
}
