//! The routing-substrate contract: the memoizing [`CachedTransport`] must
//! be observationally equivalent to the reference [`GpsrTransport`] on
//! everything the paper measures — per-query message costs and the whole
//! traffic ledger — on a fig6-style seeded workload.
//!
//! [`CachedTransport`]: pool_dcs::transport::CachedTransport
//! [`GpsrTransport`]: pool_dcs::transport::GpsrTransport

use pool_dcs::core::{Event, PoolConfig, PoolSystem, RangeQuery};
use pool_dcs::dim::DimSystem;
use pool_dcs::netsim::{Deployment, NodeId, Rect, Topology};
use pool_dcs::transport::{TrafficLayer, TransportKind};
use pool_dcs::workloads::events::{EventDistribution, EventGenerator};
use pool_dcs::workloads::queries::{exact_query, RangeSizeDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 400;
const EVENTS: usize = 800;
const QUERIES: usize = 60;

fn connected(mut seed: u64) -> (Topology, Rect) {
    loop {
        let dep = Deployment::paper_setting(NODES, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            return (topo, dep.field());
        }
        seed += 4096;
    }
}

type Placements = Vec<(NodeId, Event)>;
type SinkQueries = Vec<(NodeId, RangeQuery)>;

/// The fig6-style workload, deterministic in `seed`: uniform events from
/// random sources, then exponential-range exact-match queries from random
/// sinks.
fn workload(seed: u64) -> (Placements, SinkQueries) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
    let events: Vec<(NodeId, Event)> = (0..EVENTS)
        .map(|_| {
            let src = NodeId(rng.gen_range(0..NODES as u32));
            (src, generator.generate(&mut rng))
        })
        .collect();
    let queries: Vec<(NodeId, RangeQuery)> = (0..QUERIES)
        .map(|_| {
            let sink = NodeId(rng.gen_range(0..NODES as u32));
            (sink, exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.1 }))
        })
        .collect();
    (events, queries)
}

#[test]
fn pool_costs_identical_across_substrates() {
    let (topo, field) = connected(21);
    let (events, queries) = workload(22);

    let build = |kind| {
        let config = PoolConfig::paper().with_seed(21).with_transport(kind);
        let mut pool = PoolSystem::build(topo.clone(), field, config).unwrap();
        for (src, e) in &events {
            pool.insert_from(*src, e.clone()).unwrap();
        }
        pool
    };
    let mut gpsr = build(TransportKind::Gpsr);
    let mut cached = build(TransportKind::Cached);

    // Insertion traffic already matches, layer by layer.
    assert_eq!(gpsr.ledger(), cached.ledger(), "insert traffic diverges");

    // Every query costs exactly the same number of messages on both
    // substrates, and returns the same events. Queries repeat below so the
    // cache actually serves hits while being measured.
    for _round in 0..2 {
        for (sink, query) in &queries {
            let a = gpsr.query_from(*sink, query).unwrap();
            let b = cached.query_from(*sink, query).unwrap();
            assert_eq!(a.cost, b.cost, "QueryCost diverges on {query}");
            assert_eq!(a.events.len(), b.events.len(), "result sets diverge on {query}");
        }
    }

    assert_eq!(gpsr.traffic().total_messages(), cached.traffic().total_messages());
    assert_eq!(gpsr.traffic().per_node(), cached.traffic().per_node());
    for layer in TrafficLayer::ALL {
        assert_eq!(
            gpsr.ledger().layer_total(layer),
            cached.ledger().layer_total(layer),
            "layer {layer:?} diverges"
        );
    }
}

#[test]
fn dim_costs_identical_across_substrates() {
    let (topo, field) = connected(23);
    let (events, queries) = workload(24);

    let build = |kind| {
        let mut dim = DimSystem::build_with_transport(topo.clone(), field, 3, kind).unwrap();
        for (src, e) in &events {
            dim.insert_from(*src, e.clone()).unwrap();
        }
        dim
    };
    let mut gpsr = build(TransportKind::Gpsr);
    let mut cached = build(TransportKind::Cached);

    for _round in 0..2 {
        for (sink, query) in &queries {
            let a = gpsr.query_from(*sink, query).unwrap();
            let b = cached.query_from(*sink, query).unwrap();
            assert_eq!(a.cost, b.cost, "QueryCost diverges on {query}");
        }
    }
    assert_eq!(gpsr.ledger(), cached.ledger());
}
