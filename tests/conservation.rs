//! The message-conservation audit (DESIGN.md §7): every cost a public
//! operation reports must equal the traffic ledger's growth over exactly
//! the layers that operation is allowed to touch — no phantom messages the
//! radio never sent, no silent charges the caller never sees.
//!
//! * Deterministic sweeps check the identity op by op for Pool (insert,
//!   query, batch, k-nearest, monitors, failure repair) over the gpsr,
//!   cached, and lossy transports, and for DIM over gpsr and lossy.
//! * A property test re-checks the identity across random link qualities.
//! * Regressions pin the chain-reply fix: delegation-chain replies are now
//!   real `deliver_reverse` legs (delegates show Reply-layer load in the
//!   per-node ledger), and a chain reply that dies demotes its cell in the
//!   completeness report instead of silently clipping the answer.
//! * The `aggregate_from` / `install_monitor` receipts now surface
//!   completeness; their reports must stay arithmetically accurate.

use pool_dcs::core::config::SharingPolicy;
use pool_dcs::core::insert::InsertError;
use pool_dcs::core::{AggregateOp, Event, PoolConfig, PoolSystem, RangeQuery};
use pool_dcs::dim::DimSystem;
use pool_dcs::netsim::radio::PrrModel;
use pool_dcs::netsim::{Deployment, NodeId, Rect, Topology};
use pool_dcs::transport::trace::{SpanOutcome, TraceOp};
use pool_dcs::transport::{LedgerSnapshot, LossyConfig, NodeRole, TrafficLayer, TransportKind};
use pool_dcs::workloads::events::{EventDistribution, EventGenerator};
use pool_dcs::workloads::queries::{exact_query, RangeSizeDistribution};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 300;

fn connected(mut seed: u64) -> (Topology, Rect) {
    loop {
        let dep = Deployment::paper_setting(NODES, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            return (topo, dep.field());
        }
        seed += 4096;
    }
}

/// Drives one Pool system through every operation family, asserting after
/// each op that its reported cost equals the ledger growth layer by layer
/// and that no other layer was charged.
fn audit_pool(mut pool: PoolSystem, label: &str) {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);

    // A standing query first, so insertions also exercise the Monitor
    // (notification) layer.
    let watch = RangeQuery::from_bounds(vec![Some((0.0, 0.4)), None, None]).unwrap();
    let before = LedgerSnapshot::of(pool.ledger());
    let install = pool.install_monitor(NodeId(5), watch).unwrap();
    assert_eq!(
        install.cost.forward_messages,
        before.layer_delta(pool.ledger(), TrafficLayer::Monitor),
        "{label}: install_monitor vs Monitor layer"
    );
    assert_eq!(
        install.cost.retransmit_messages,
        before.layer_delta(pool.ledger(), TrafficLayer::Retransmit),
        "{label}: install_monitor vs Retransmit layer"
    );
    assert_eq!(install.cost.total(), before.total_delta(pool.ledger()), "{label}: install total");

    // Insertions: flat receipt count == Insert + Monitor + Replication +
    // Retransmit growth. Undeliverable insertions still charge what the
    // radio actually sent.
    for _ in 0..250 {
        let src = NodeId(rng.gen_range(0..NODES as u32));
        let event = generator.generate(&mut rng);
        let before = LedgerSnapshot::of(pool.ledger());
        let spent = match pool.insert_from(src, event) {
            Ok(receipt) => receipt.messages,
            Err(InsertError::Undeliverable { transmissions, .. }) => transmissions,
            Err(e) => panic!("{label}: unexpected insert failure: {e}"),
        };
        let delta: u64 = [
            TrafficLayer::Insert,
            TrafficLayer::Monitor,
            TrafficLayer::Replication,
            TrafficLayer::Retransmit,
        ]
        .iter()
        .map(|&l| before.layer_delta(pool.ledger(), l))
        .sum();
        assert_eq!(spent, delta, "{label}: insert cost vs ledger");
        assert_eq!(spent, before.total_delta(pool.ledger()), "{label}: insert charged elsewhere");
    }

    // One-shot queries: the cost struct partitions the ledger growth.
    for _ in 0..25 {
        let sink = NodeId(rng.gen_range(0..NODES as u32));
        let q = exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.1 });
        let before = LedgerSnapshot::of(pool.ledger());
        let result = pool.query_from(sink, &q).unwrap();
        assert_eq!(
            result.cost.forward_messages,
            before.layer_delta(pool.ledger(), TrafficLayer::Forward),
            "{label}: query forward vs ledger"
        );
        assert_eq!(
            result.cost.reply_messages,
            before.layer_delta(pool.ledger(), TrafficLayer::Reply),
            "{label}: query reply vs ledger"
        );
        assert_eq!(
            result.cost.retransmit_messages,
            before.layer_delta(pool.ledger(), TrafficLayer::Retransmit),
            "{label}: query retransmissions vs ledger"
        );
        assert_eq!(
            result.cost.total(),
            before.total_delta(pool.ledger()),
            "{label}: query charged a foreign layer"
        );
    }

    // Aggregates ride the same path and now report completeness.
    let q = RangeQuery::from_bounds(vec![Some((0.2, 0.6)), None, None]).unwrap();
    let before = LedgerSnapshot::of(pool.ledger());
    let agg = pool.aggregate_from(NodeId(9), &q, AggregateOp::Count).unwrap();
    assert_eq!(agg.cost.total(), before.total_delta(pool.ledger()), "{label}: aggregate total");
    assert_eq!(
        agg.completeness.cells_reached + agg.completeness.unreached_cells.len(),
        agg.completeness.cells_relevant,
        "{label}: aggregate completeness arithmetic"
    );

    // Batched queries.
    let batch_queries = vec![
        RangeQuery::exact(vec![(0.2, 0.5), (0.0, 0.6), (0.0, 1.0)]).unwrap(),
        RangeQuery::from_bounds(vec![None, Some((0.7, 0.9)), None]).unwrap(),
    ];
    let before = LedgerSnapshot::of(pool.ledger());
    match pool.query_batch(NodeId(3), &batch_queries) {
        Ok(batch) => {
            assert_eq!(
                batch.cost.total(),
                before.total_delta(pool.ledger()),
                "{label}: batch total"
            );
        }
        // On a lossy radio a batch leg may exhaust ARQ; the charge already
        // made must still be visible in the ledger (nothing to compare the
        // partial cost against, the op aborted).
        Err(e) => assert!(
            matches!(e, pool_dcs::core::PoolError::Undeliverable { .. }),
            "{label}: unexpected batch failure: {e}"
        ),
    }

    // Nearest-neighbor search.
    let before = LedgerSnapshot::of(pool.ledger());
    match pool.k_nearest(NodeId(7), &[0.4, 0.5, 0.6], 3) {
        Ok(nn) => {
            assert_eq!(
                nn.cost.total(),
                before.total_delta(pool.ledger()),
                "{label}: k_nearest total"
            );
        }
        Err(e) => assert!(
            matches!(e, pool_dcs::core::PoolError::Undeliverable { .. }),
            "{label}: unexpected k_nearest failure: {e}"
        ),
    }

    // Monitor removal uses the same dissemination tree.
    let before = LedgerSnapshot::of(pool.ledger());
    let removal = pool.remove_monitor(install.id).unwrap().expect("monitor was installed");
    assert_eq!(removal.total(), before.total_delta(pool.ledger()), "{label}: removal total");

    // Failure repair: the report's repair_messages must equal the Repair +
    // Replication + Retransmit growth.
    let victims: Vec<NodeId> =
        (0..NODES as u32).map(NodeId).filter(|&n| pool.store().count_at(n) > 0).take(3).collect();
    let before = LedgerSnapshot::of(pool.ledger());
    let report = pool.fail_nodes(&victims).unwrap();
    let delta: u64 = [TrafficLayer::Repair, TrafficLayer::Replication, TrafficLayer::Retransmit]
        .iter()
        .map(|&l| before.layer_delta(pool.ledger(), l))
        .sum();
    assert_eq!(report.repair_messages, delta, "{label}: repair cost vs ledger");
    assert_eq!(
        report.repair_messages,
        before.total_delta(pool.ledger()),
        "{label}: repair charged a foreign layer"
    );
}

/// A Pool configuration that exercises every layer: workload sharing (so
/// delegation chains form), replication, and a standing query.
fn full_config(seed: u64) -> PoolConfig {
    PoolConfig::paper().with_seed(seed).with_sharing(SharingPolicy::new(8)).with_replication()
}

#[test]
fn pool_conserves_messages_on_gpsr() {
    let (topo, field) = connected(51);
    audit_pool(PoolSystem::build(topo, field, full_config(51)).unwrap(), "gpsr");
}

#[test]
fn pool_conserves_messages_on_cached() {
    let (topo, field) = connected(52);
    let config = full_config(52).with_transport(TransportKind::Cached);
    audit_pool(PoolSystem::build(topo, field, config).unwrap(), "cached");
}

#[test]
fn pool_conserves_messages_on_lossy() {
    let (topo, field) = connected(53);
    let config = full_config(53).with_lossy(LossyConfig::fixed(0.85, 5353));
    audit_pool(PoolSystem::build(topo, field, config).unwrap(), "lossy");
}

/// A fault plan that keeps the campaign interesting for the whole audit:
/// one mid-run crash, one healing partition-era burst channel.
fn audit_fault_plan() -> pool_dcs::transport::FaultPlan {
    use pool_dcs::transport::{Fault, FaultPlan, GilbertElliott};
    FaultPlan::new().with(Fault::Crash { node: NodeId(123), at: 0.5 }).with(Fault::BurstLoss {
        channel: GilbertElliott { p_gb: 0.1, p_bg: 0.3, good_prr: 1.0, bad_prr: 0.3 },
        from: 0.25,
        until: f64::INFINITY,
    })
}

/// The same conservation identity under structured faults with the full
/// recovery stack (EWMA backoff ARQ, failure detector, detour rerouting,
/// operation-level retry): every attempt — retries, detours, exhausted
/// budgets — lands in the ledger the cost structs report.
#[test]
fn pool_conserves_messages_under_faults_and_recovery() {
    use pool_dcs::transport::{OpRetryPolicy, RecoveryConfig};
    let (topo, field) = connected(54);
    let config = full_config(54)
        .with_transport(TransportKind::Cached)
        .with_lossy(LossyConfig::fixed(0.9, 5454))
        .with_faults(audit_fault_plan())
        .with_recovery(RecoveryConfig::default())
        .with_op_retry(OpRetryPolicy::detouring(2));
    audit_pool(PoolSystem::build(topo, field, config).unwrap(), "faulty+recovery");
}

/// DIM's insert and query obey the same identity, loss-free and lossy.
fn audit_dim(mut dim: DimSystem, label: &str) {
    let mut rng = StdRng::seed_from_u64(1717);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
    for _ in 0..200 {
        let src = NodeId(rng.gen_range(0..NODES as u32));
        let before = LedgerSnapshot::of(dim.ledger());
        let spent = match dim.insert_from(src, generator.generate(&mut rng)) {
            Ok(receipt) => receipt.messages,
            Err(InsertError::Undeliverable { transmissions, .. }) => transmissions,
            Err(e) => panic!("{label}: unexpected DIM insert failure: {e}"),
        };
        let delta = before.layer_delta(dim.ledger(), TrafficLayer::Insert)
            + before.layer_delta(dim.ledger(), TrafficLayer::Retransmit);
        assert_eq!(spent, delta, "{label}: DIM insert vs ledger");
        assert_eq!(spent, before.total_delta(dim.ledger()), "{label}: DIM insert elsewhere");
    }
    for _ in 0..20 {
        let sink = NodeId(rng.gen_range(0..NODES as u32));
        let q = exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.1 });
        let before = LedgerSnapshot::of(dim.ledger());
        let result = dim.query_from(sink, &q).unwrap();
        assert_eq!(
            result.cost.forward_messages,
            before.layer_delta(dim.ledger(), TrafficLayer::Forward),
            "{label}: DIM query forward vs ledger"
        );
        assert_eq!(
            result.cost.reply_messages,
            before.layer_delta(dim.ledger(), TrafficLayer::Reply),
            "{label}: DIM query reply vs ledger"
        );
        assert_eq!(
            result.cost.total(),
            before.total_delta(dim.ledger()),
            "{label}: DIM query charged a foreign layer"
        );
    }
}

#[test]
fn dim_conserves_messages_on_gpsr_and_lossy() {
    let (topo, field) = connected(61);
    audit_dim(
        DimSystem::build_with_transport(topo.clone(), field, 3, TransportKind::Gpsr).unwrap(),
        "gpsr",
    );
    audit_dim(
        DimSystem::build_with_substrate(
            topo,
            field,
            3,
            TransportKind::Gpsr,
            Some(LossyConfig::fixed(0.85, 6161)),
        )
        .unwrap(),
        "lossy",
    );
}

/// Builds a sharing-enabled Pool and hammers one attribute-space hotspot so
/// the target cell overflows into a delegation chain.
fn hotspot_pool(seed: u64, capacity: usize, lossy: Option<LossyConfig>) -> PoolSystem {
    let (topo, field) = connected(seed);
    let mut config = PoolConfig::paper().with_seed(seed).with_sharing(SharingPolicy::new(capacity));
    if let Some(lossy) = lossy {
        config = config.with_lossy(lossy);
    }
    let mut pool = PoolSystem::build(topo, field, config).unwrap();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31) + 7);
    for i in 0..60u32 {
        let jitter = 0.0004 * f64::from(i % 40);
        let event = Event::new(vec![0.951 + jitter, 0.052, 0.013]).unwrap();
        let src = NodeId(rng.gen_range(0..NODES as u32));
        let _ = pool.insert_from(src, event);
    }
    pool
}

/// The cells that actually overflowed into delegation chains.
fn delegated_cells(pool: &PoolSystem) -> Vec<(usize, pool_dcs::core::grid::CellCoord)> {
    let mut out = Vec::new();
    for spec in pool.layout().pools().to_vec() {
        for cell in spec.cells() {
            if !pool.delegates_of(cell).is_empty() {
                out.push((spec.dim, cell));
            }
        }
    }
    out
}

/// Regression (headline bugfix): delegation-chain replies are real
/// transport legs. The delegates show up as Reply-layer senders in the
/// per-node ledger, and the query's reply cost still equals the Reply
/// layer's growth exactly — the old code charged `chain.len() * copies`
/// phantom messages the ledger never saw, so this identity failed on every
/// delegated cell.
#[test]
fn chain_replies_are_ledgered_per_delegate() {
    let mut pool = hotspot_pool(71, 4, None);
    let delegated = delegated_cells(&pool);
    assert!(!delegated.is_empty(), "hotspot workload must overflow into delegation");

    let hot = RangeQuery::exact(vec![(0.94, 0.98), (0.0, 0.1), (0.0, 0.1)]).unwrap();
    let before = LedgerSnapshot::of(pool.ledger());
    let result = pool.query_from(NodeId(200), &hot).unwrap();
    assert!(result.events.len() >= 50, "the hotspot events must answer");
    assert!(result.completeness.is_complete());

    assert_eq!(
        result.cost.reply_messages,
        before.layer_delta(pool.ledger(), TrafficLayer::Reply),
        "reply cost must equal the Reply-layer ledger growth (no phantom chain messages)"
    );
    assert_eq!(result.cost.total(), before.total_delta(pool.ledger()));

    // The chain members themselves sent the reply traffic: every delegated
    // cell's chain shows nonzero Reply-layer load at the chain links.
    let mut delegate_reply = 0u64;
    for &(_, cell) in &delegated {
        for &node in pool.delegates_of(cell) {
            delegate_reply += pool.ledger().node_layer_load(node, TrafficLayer::Reply);
        }
    }
    assert!(delegate_reply > 0, "delegates must appear as Reply-layer senders");

    // The load report sees the same thing through the role tags.
    let report = pool.load_report();
    assert!(report.role_layer_total(NodeRole::Delegate, TrafficLayer::Reply) > 0);
}

/// Regression (headline bugfix, failure half): a chain reply that dies on
/// a lossy link demotes its cell in the completeness report — the answer
/// is never silently partial.
#[test]
fn dead_chain_reply_demotes_the_cell() {
    let hot = RangeQuery::exact(vec![(0.94, 0.98), (0.0, 0.1), (0.0, 0.1)]).unwrap();
    let mut observed_chain_reply_death = false;
    'seeds: for seed in 0..120u64 {
        let mut pool =
            hotspot_pool(81, 4, Some(LossyConfig::fixed(0.8, 9000 + seed).with_retry_budget(1)));
        let delegated = delegated_cells(&pool);
        if delegated.is_empty() {
            continue;
        }
        // Chain tail → index node endpoints identify the chain-reply leg's
        // trace span for each delegated cell.
        let chain_endpoints: Vec<(NodeId, NodeId, (usize, pool_dcs::core::grid::CellCoord))> =
            delegated
                .iter()
                .map(|&key| {
                    let chain = pool.delegates_of(key.1);
                    let index = pool.index_node_of(key.1).unwrap();
                    (*chain.last().unwrap(), index, key)
                })
                .collect();
        pool.tracer_mut().clear();
        let result = pool.query_from(NodeId(200), &hot).unwrap();
        for span in pool.tracer().spans() {
            if span.op != TraceOp::Query || span.layer != TrafficLayer::Reply {
                continue;
            }
            if let SpanOutcome::PartialCopies { .. } = span.outcome {
                for &(tail, index, key) in &chain_endpoints {
                    if span.origin == tail && span.destination == index && tail != index {
                        observed_chain_reply_death = true;
                        assert!(
                            result.completeness.unreached_cells.contains(&key),
                            "seed {seed}: chain reply died for {key:?} but the cell \
                             was not demoted: {:?}",
                            result.completeness
                        );
                        break 'seeds;
                    }
                }
            }
        }
    }
    assert!(observed_chain_reply_death, "no seed produced a dead chain reply; weaken the radio");
}

/// Regression: `aggregate_from` surfaces completeness. On a loss-free
/// radio the aggregate is authoritative; under a harsh radio at least one
/// aggregate must admit it is partial instead of posing as complete.
#[test]
fn aggregates_surface_partial_answers() {
    let (topo, field) = connected(91);
    let mut perfect =
        PoolSystem::build(topo.clone(), field, PoolConfig::paper().with_seed(91)).unwrap();
    let harsh_config = PoolConfig::paper()
        .with_seed(91)
        .with_lossy(LossyConfig::model(PrrModel::new(15.0, 42.0), 9191));
    let mut harsh = PoolSystem::build(topo, field, harsh_config).unwrap();

    let mut rng = StdRng::seed_from_u64(919);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
    for _ in 0..400 {
        let src = NodeId(rng.gen_range(0..NODES as u32));
        let event = generator.generate(&mut rng);
        perfect.insert_from(src, event.clone()).unwrap();
        let _ = harsh.insert_from(src, event);
    }

    let mut saw_partial = false;
    for _ in 0..30 {
        let sink = NodeId(rng.gen_range(0..NODES as u32));
        let q = exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.15 });
        let clean = perfect.aggregate_from(sink, &q, AggregateOp::Count).unwrap();
        assert!(clean.completeness.is_complete(), "loss-free aggregates are authoritative");
        assert_eq!(clean.value, Some(perfect.brute_force_query(&q).len() as f64));

        let noisy = harsh.aggregate_from(sink, &q, AggregateOp::Count).unwrap();
        assert_eq!(
            noisy.completeness.cells_reached + noisy.completeness.unreached_cells.len(),
            noisy.completeness.cells_relevant
        );
        saw_partial |= !noisy.completeness.is_complete();
    }
    assert!(saw_partial, "the harsh radio should leave some aggregate partial");
}

/// Regression: `install_monitor` surfaces installed-cell completeness.
/// After a partitioning failure, an installation from the main component
/// reports exactly the cells that are actually watching.
#[test]
fn monitor_install_reports_its_coverage() {
    let (topo, field) = connected(95);
    let mut pool = PoolSystem::build(topo, field, PoolConfig::paper().with_seed(95)).unwrap();

    // Loss-free, fully connected: installation covers every relevant cell.
    let all = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
    let install = pool.install_monitor(NodeId(2), all.clone()).unwrap();
    assert!(install.completeness.is_complete());
    assert_eq!(
        pool.monitors().cells_of(install.id).len(),
        install.completeness.cells_reached,
        "the registry and the receipt must agree"
    );
    pool.remove_monitor(install.id).unwrap();

    // Cut one index node's whole radio neighborhood: a guaranteed
    // partition. A fresh installation from the main component must report
    // the unreachable cells instead of claiming full coverage.
    let isolated = pool
        .layout()
        .pools()
        .to_vec()
        .iter()
        .flat_map(|p| p.cells())
        .find_map(|c| pool.index_node_of(c))
        .expect("layout has index nodes");
    let victims: Vec<NodeId> = pool.topology().neighbors(isolated).to_vec();
    let report = pool.fail_nodes(&victims).unwrap();
    assert!(report.partitioned, "neighborhood kill must partition: {report:?}");

    let sink = pool.topology().largest_component_members()[0];
    let install = pool.install_monitor(sink, all).unwrap();
    assert!(
        !install.completeness.is_complete(),
        "a partitioned install must admit narrowed coverage: {:?}",
        install.completeness
    );
    assert_eq!(
        install.completeness.cells_reached + install.completeness.unreached_cells.len(),
        install.completeness.cells_relevant
    );
    assert_eq!(pool.monitors().cells_of(install.id).len(), install.completeness.cells_reached);
}

/// Virtual-time tolerance: elapsed times are sums of exact binary
/// fractions of the latency model, so they agree to far better than this.
const T_EPS: f64 = 1e-9;

/// The time-ledger audit, mirroring the message audit above: every cost a
/// public operation reports in *virtual time* must equal the clock's
/// advance over that operation, and the clock must come to rest at the
/// span tree's critical path — the maximum span end among the legs the
/// operation launched. No phantom waiting the radio never did, no silent
/// time the caller never sees.
fn audit_pool_time(mut pool: PoolSystem, label: &str) {
    let mut rng = StdRng::seed_from_u64(2468);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);

    // Insertions (with replication on, these fan out and overlap).
    for _ in 0..150 {
        let src = NodeId(rng.gen_range(0..NODES as u32));
        let start = pool.transport().clock().now();
        pool.tracer_mut().clear();
        match pool.insert_from(src, generator.generate(&mut rng)) {
            Ok(receipt) => {
                let end = pool.transport().clock().now();
                assert!(
                    (receipt.elapsed - (end - start)).abs() < T_EPS,
                    "{label}: insert elapsed {} vs clock advance {}",
                    receipt.elapsed,
                    end - start
                );
                // Empty-op guard: an insert that sent nothing took no time.
                if receipt.messages == 0 {
                    assert_eq!(receipt.elapsed, 0.0, "{label}: zero-message insert took time");
                }
                audit_spans(&pool, start, end, label, "insert");
            }
            Err(InsertError::Undeliverable { .. }) => {}
            Err(e) => panic!("{label}: unexpected insert failure: {e}"),
        }
    }

    // One-shot queries: elapsed is the critical path, so it is bounded by
    // the per-leg latency sums and equals the clock's advance exactly.
    for _ in 0..20 {
        let sink = NodeId(rng.gen_range(0..NODES as u32));
        let q = exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.1 });
        let start = pool.transport().clock().now();
        pool.tracer_mut().clear();
        let result = pool.query_from(sink, &q).unwrap();
        let end = pool.transport().clock().now();
        assert!(
            (result.cost.elapsed - (end - start)).abs() < T_EPS,
            "{label}: query elapsed {} vs clock advance {}",
            result.cost.elapsed,
            end - start
        );
        assert!(
            result.cost.elapsed <= result.cost.forward_latency + result.cost.reply_latency + T_EPS,
            "{label}: critical path {} exceeds per-leg latency sum {}",
            result.cost.elapsed,
            result.cost.forward_latency + result.cost.reply_latency
        );
        if result.cost.total() > 0 {
            assert!(result.cost.elapsed > 0.0, "{label}: messages moved in zero time");
        }
        audit_spans(&pool, start, end, label, "query");
    }
}

/// Asserts the span-tree identity for the operation bracketed by
/// `[start, end]`: every span lies inside the bracket, and the clock's
/// resting point is the maximum span end (or `start`, for an op that
/// launched no legs).
fn audit_spans(pool: &PoolSystem, start: f64, end: f64, label: &str, op: &str) {
    let mut max_end = start;
    for span in pool.tracer().spans() {
        assert!(
            span.start >= start - T_EPS && span.end <= end + T_EPS,
            "{label}: {op} span [{}, {}] escapes the op bracket [{start}, {end}]",
            span.start,
            span.end
        );
        assert!(span.end >= span.start - T_EPS, "{label}: {op} span runs backward");
        max_end = max_end.max(span.end);
    }
    assert!(
        (end - max_end).abs() < T_EPS,
        "{label}: {op} clock rests at {end} but the span critical path ends at {max_end}"
    );
}

#[test]
fn pool_conserves_time_on_gpsr() {
    let (topo, field) = connected(54);
    audit_pool_time(PoolSystem::build(topo, field, full_config(54)).unwrap(), "gpsr");
}

#[test]
fn pool_conserves_time_on_cached() {
    let (topo, field) = connected(55);
    let config = full_config(55).with_transport(TransportKind::Cached);
    audit_pool_time(PoolSystem::build(topo, field, config).unwrap(), "cached");
}

/// Backoff is priced on the virtual clock, so the time identity must hold
/// under faults and recovery too: an operation's `elapsed` equals the
/// clock's advance — including every exponential-backoff delay — and the
/// span tree stays inside the bracket.
#[test]
fn pool_conserves_time_under_faults_and_recovery() {
    use pool_dcs::transport::{OpRetryPolicy, RecoveryConfig};
    let (topo, field) = connected(57);
    let config = full_config(57)
        .with_transport(TransportKind::Cached)
        .with_lossy(LossyConfig::fixed(0.9, 5757))
        .with_faults(audit_fault_plan())
        .with_recovery(RecoveryConfig::default())
        .with_op_retry(OpRetryPolicy::detouring(2));
    audit_pool_time(PoolSystem::build(topo, field, config).unwrap(), "faulty+recovery");
}

#[test]
fn pool_conserves_time_on_lossy() {
    let (topo, field) = connected(56);
    let config = full_config(56).with_lossy(LossyConfig::fixed(0.85, 5656));
    audit_pool_time(PoolSystem::build(topo, field, config).unwrap(), "lossy");
}

/// DIM obeys the same clock identity: each insert's and query's reported
/// elapsed time equals the clock's advance (its walk is a serial chain, so
/// the critical path and the leg sum coincide on a loss-free radio).
#[test]
fn dim_conserves_time() {
    let (topo, field) = connected(62);
    let mut dim = DimSystem::build_with_transport(topo, field, 3, TransportKind::Gpsr).unwrap();
    let mut rng = StdRng::seed_from_u64(2727);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
    for _ in 0..150 {
        let src = NodeId(rng.gen_range(0..NODES as u32));
        let start = dim.transport().clock().now();
        let receipt = dim.insert_from(src, generator.generate(&mut rng)).unwrap();
        let end = dim.transport().clock().now();
        assert!((receipt.elapsed - (end - start)).abs() < T_EPS, "DIM insert elapsed vs clock");
    }
    for _ in 0..20 {
        let sink = NodeId(rng.gen_range(0..NODES as u32));
        let q = exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.1 });
        let start = dim.transport().clock().now();
        let result = dim.query_from(sink, &q).unwrap();
        let end = dim.transport().clock().now();
        assert!((result.cost.elapsed - (end - start)).abs() < T_EPS, "DIM query elapsed vs clock");
        assert!(
            (result.cost.elapsed - (result.cost.forward_latency + result.cost.reply_latency)).abs()
                < T_EPS,
            "DIM's serial chain: critical path must equal the leg sum"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Churn soak: random epoch interleavings of joins, deaths, moves, and
    /// mid-churn queries preserve both ledgers. Every epoch's repair spend
    /// must equal the repair-layer growth exactly and stay within the
    /// budget (strict on the loss-free radio, including budget 0 = repair
    /// paused), every loaded event must be accounted for — visible, queued
    /// for handoff, lost with its holders, or dropped as unreachable — and
    /// queries issued mid-churn never panic and keep their completeness
    /// arithmetic consistent.
    #[test]
    fn churn_soak_conserves_messages_and_events(seed in 0u64..1000, budget in 0u64..300) {
        use pool_dcs::core::dynamics::{ChurnConfig, ChurnPlanner, RepairQueue};

        let (topo, field) = connected(107);
        let mut pool = PoolSystem::build(topo, field, full_config(107)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
        const LOADED: usize = 90;
        for _ in 0..LOADED {
            let src = NodeId(rng.gen_range(0..NODES as u32));
            pool.insert_from(src, generator.generate(&mut rng)).unwrap();
        }

        let mut planner = ChurnPlanner::new(ChurnConfig::new(seed).with_rates(2, 3, 2));
        let mut queue = RepairQueue::default();
        let mut lost = 0usize;
        let mut unreachable = 0usize;
        for _ in 0..5 {
            let plan = planner.plan(pool.topology(), pool.field());
            let before = LedgerSnapshot::of(pool.ledger());
            let clock_before = pool.transport().clock().now();
            let report = pool.apply_epoch(&plan, &mut queue, budget).unwrap();

            // Message conservation: the report prices exactly the repair
            // layers' growth, and nothing else moved.
            let delta: u64 =
                [TrafficLayer::Repair, TrafficLayer::Replication, TrafficLayer::Retransmit]
                    .iter()
                    .map(|&l| before.layer_delta(pool.ledger(), l))
                    .sum();
            prop_assert_eq!(report.repair_messages, delta);
            prop_assert_eq!(report.repair_messages, before.total_delta(pool.ledger()));
            prop_assert!(report.repair_messages <= budget,
                "epoch spent {} > budget {budget}", report.repair_messages);
            prop_assert!(pool.transport().clock().now() >= clock_before);

            // Event conservation: visible + queued + lost + unreachable
            // always sums to what was loaded.
            lost += report.events_lost;
            unreachable += report.events_unreachable;
            prop_assert_eq!(pool.store().len() + queue.len() + lost + unreachable, LOADED);
            prop_assert_eq!(report.deferred_repairs as usize, queue.len());

            // Mid-churn queries: never a panic, always honest arithmetic.
            let members = pool.topology().largest_component_members();
            for _ in 0..2 {
                let sink = members[rng.gen_range(0..members.len())];
                let q = exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.1 });
                let result = pool.query_from(sink, &q).unwrap();
                prop_assert_eq!(
                    result.completeness.cells_reached + result.completeness.unreached_cells.len(),
                    result.completeness.cells_relevant
                );
                prop_assert!(result.events.iter().all(|e| q.matches(e)));
            }
        }
    }

    /// Conservation is not a fair-weather identity: it holds for any link
    /// quality, with sharing and replication on.
    #[test]
    fn conservation_holds_for_any_link_quality(p in 0.5f64..=1.0, seed in 0u64..1000) {
        let (topo, field) = connected(101);
        let config = PoolConfig::paper()
            .with_seed(101)
            .with_sharing(SharingPolicy::new(10))
            .with_replication()
            .with_lossy(LossyConfig::fixed(p, seed));
        let mut pool = PoolSystem::build(topo, field, config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut generator = EventGenerator::new(3, EventDistribution::Uniform);

        for _ in 0..60 {
            let src = NodeId(rng.gen_range(0..NODES as u32));
            let before = LedgerSnapshot::of(pool.ledger());
            let spent = match pool.insert_from(src, generator.generate(&mut rng)) {
                Ok(receipt) => receipt.messages,
                Err(InsertError::Undeliverable { transmissions, .. }) => transmissions,
                Err(e) => panic!("unexpected insert failure: {e}"),
            };
            prop_assert_eq!(spent, before.total_delta(pool.ledger()));
        }
        for _ in 0..8 {
            let sink = NodeId(rng.gen_range(0..NODES as u32));
            let q = exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.1 });
            let before = LedgerSnapshot::of(pool.ledger());
            let result = pool.query_from(sink, &q).unwrap();
            prop_assert_eq!(
                result.cost.forward_messages,
                before.layer_delta(pool.ledger(), TrafficLayer::Forward)
            );
            prop_assert_eq!(
                result.cost.reply_messages,
                before.layer_delta(pool.ledger(), TrafficLayer::Reply)
            );
            prop_assert_eq!(
                result.cost.retransmit_messages,
                before.layer_delta(pool.ledger(), TrafficLayer::Retransmit)
            );
            prop_assert_eq!(result.cost.total(), before.total_delta(pool.ledger()));
        }
    }
}
