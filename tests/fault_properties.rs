//! Property-based tests (proptest) of the fault-injection and adaptive
//! recovery machinery: backoff pricing, the Gilbert–Elliott burst channel,
//! and determinism of fault campaigns in their seeds.

use pool_dcs::netsim::{Deployment, NodeId, Topology};
use pool_dcs::transport::{
    BackoffPolicy, Fault, FaultPlan, FaultyTransport, GilbertElliott, LossyConfig, RecoveryConfig,
    TrafficLayer, Transport, TransportKind,
};
use pool_gpsr::Planarization;
use proptest::prelude::*;

/// A tiny connected topology: enough for single- and multi-hop deliveries
/// without dominating the proptest budget.
fn small_topology(seed: u64) -> Topology {
    let mut seed = seed;
    loop {
        let dep = Deployment::paper_setting(60, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            return topo;
        }
        seed += 4096;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Backoff delays are monotone nondecreasing in the attempt index and
    /// never exceed the cap, for arbitrary policies.
    #[test]
    fn backoff_monotone_and_capped(
        base in 1e-6f64..1.0,
        factor in 1.0f64..8.0,
        cap_mult in 1.0f64..64.0,
        budget in 0u32..24,
    ) {
        let cap = base * cap_mult;
        let policy = BackoffPolicy::new(base, factor, cap);
        let mut prev = 0.0f64;
        for k in 0..=budget {
            let d = policy.delay(k);
            prop_assert!(d >= prev, "delay({k}) = {d} < delay({}) = {prev}", k.wrapping_sub(1));
            prop_assert!(d <= cap + 1e-12, "delay({k}) = {d} exceeds cap {cap}");
            prev = d;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The Gilbert–Elliott channel's long-run delivery rate converges to
    /// its stationary mixture: P(good)·good_prr + P(bad)·bad_prr, within
    /// ±2% over a long single-hop run.
    #[test]
    fn gilbert_elliott_converges_to_stationary_rate(
        p_gb in 0.1f64..0.6,
        p_bg in 0.1f64..0.6,
        seed in 0u64..1_000,
    ) {
        let topo = small_topology(11);
        // A link that only the burst channel can disturb: perfect base
        // quality, no ARQ retries, active from t = 0 forever.
        let channel = GilbertElliott { p_gb, p_bg, good_prr: 1.0, bad_prr: 0.0 };
        let plan = FaultPlan::new().with(Fault::BurstLoss {
            channel,
            from: 0.0,
            until: f64::INFINITY,
        });
        let inner = TransportKind::Gpsr.build(&topo, Planarization::Gabriel);
        let config = LossyConfig::fixed(1.0, seed).with_retry_budget(0);
        let mut transport = FaultyTransport::wrap(inner, config, plan);

        // Any adjacent pair gives a single-hop path.
        let from = NodeId(0);
        let to = topo.neighbors(from)[0];
        let path = [from, to];
        let trials = 100_000u64;
        let mut delivered = 0u64;
        for _ in 0..trials {
            if transport.deliver(&topo, &path, TrafficLayer::Forward).delivered {
                delivered += 1;
            }
        }
        let stationary_bad = p_gb / (p_gb + p_bg);
        let expected = (1.0 - stationary_bad) * channel.good_prr + stationary_bad * channel.bad_prr;
        let got = delivered as f64 / trials as f64;
        prop_assert!(
            (got - expected).abs() < 0.02,
            "long-run delivery rate {got:.4} vs stationary {expected:.4} (p_gb={p_gb:.3}, p_bg={p_bg:.3})"
        );
    }

    /// Fault campaigns are deterministic in their seeds: the same plan and
    /// seed replay to identical outcomes and ledgers (the property that
    /// makes `BENCH_chaos.json` byte-identical at any `--jobs` count),
    /// while a different loss seed produces a different trace.
    #[test]
    fn fault_plan_campaigns_are_seed_deterministic(seed in 0u64..10_000) {
        let topo = small_topology(13);
        let victim = topo.neighbors(NodeId(3))[0];
        let plan = FaultPlan::new()
            .with(Fault::Crash { node: victim, at: 0.4 })
            .with(Fault::BurstLoss {
                channel: GilbertElliott { p_gb: 0.2, p_bg: 0.3, good_prr: 0.95, bad_prr: 0.2 },
                from: 0.1,
                until: f64::INFINITY,
            });

        let run = |loss_seed: u64| {
            let inner = TransportKind::Cached.build(&topo, Planarization::Gabriel);
            let mut transport = FaultyTransport::wrap_adaptive(
                inner,
                LossyConfig::fixed(0.9, loss_seed),
                plan.clone(),
                RecoveryConfig::default(),
            );
            let mut outcomes = Vec::new();
            for i in 0..40u32 {
                let from = NodeId(i % topo.len() as u32);
                let to = NodeId((i * 7 + 3) % topo.len() as u32);
                if from == to {
                    continue;
                }
                if let Ok(route) = transport.route_to_node(&topo, from, to) {
                    let o = transport.deliver(&topo, &route.path, TrafficLayer::Forward);
                    outcomes.push((o.delivered, o.transmissions, o.reached, o.failed_hop));
                }
            }
            (outcomes, transport.ledger().total_messages(), transport.delivery_stats())
        };

        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(&a, &b, "same seed must replay identically");
        let c = run(seed ^ 0x5EED_0001);
        prop_assert!(a.0 != c.0, "a different loss seed must perturb the trace");
    }
}
