//! Property tests generalizing the core Pool invariants to arbitrary
//! dimensionality `k ∈ [2, 6]` — the paper fixes k = 3, but the mechanism
//! is claimed (and implemented) for any k.

use pool_dcs::core::event::Event;
use pool_dcs::core::grid::Grid;
use pool_dcs::core::insert::candidate_cells;
use pool_dcs::core::layout::PoolLayout;
use pool_dcs::core::query::RangeQuery;
use pool_dcs::core::resolve::{relevant_cells, relevant_offsets, relevant_offsets_fast};
use pool_dcs::netsim::Rect;
use proptest::prelude::*;

fn unit() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => (0u32..=1_000_000).prop_map(|v| v as f64 / 1_000_000.0),
        1 => Just(0.0),
        1 => Just(1.0),
    ]
}

fn event_inside(q: &RangeQuery, fracs: &[f64]) -> Event {
    let values = q
        .rewritten()
        .iter()
        .zip(fracs)
        .map(|(&(lo, hi), &f)| (lo + f * (hi - lo)).clamp(lo, hi))
        .collect();
    Event::new(values).unwrap()
}

fn layout_for(k: usize, side: u32) -> PoolLayout {
    let grid = Grid::over(Rect::square(400.0), 5.0).unwrap();
    PoolLayout::random(&grid, k, side, (k as u64) << 8 | side as u64).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.2 soundness at every dimensionality: matching events'
    /// storage cells are always resolved.
    #[test]
    fn resolve_sound_for_any_k(
        k in 2usize..=6,
        side in 2u32..14,
        seed_input in any::<u64>(),
    ) {
        // Derive the query and interpolation fractions from the seed with
        // an LCG (proptest cannot parameterize a strategy's arity by
        // another generated variable).
        let mut x = seed_input;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut bounds: Vec<Option<(f64, f64)>> = (0..k)
            .map(|_| {
                if next() < 0.25 {
                    None
                } else {
                    let a = next();
                    let b = next();
                    Some(if a <= b { (a, b) } else { (b, a) })
                }
            })
            .collect();
        if bounds.iter().all(Option::is_none) {
            bounds[0] = Some((0.25, 0.75));
        }
        let q = RangeQuery::from_bounds(bounds).unwrap();
        let fracs: Vec<f64> = (0..k).map(|_| next()).collect();
        let layout = layout_for(k, side);
        let e = event_inside(&q, &fracs);
        prop_assert!(q.matches(&e));
        let resolved = relevant_cells(&layout, &q);
        for placement in candidate_cells(&layout, &e) {
            prop_assert!(
                resolved.contains(&(placement.pool_dim, placement.cell)),
                "k={k}: event {} missed by {}",
                e,
                q
            );
        }
    }

    /// The closed-form resolver equals the printed Algorithm 2 scan for
    /// every k, pool side, and query.
    #[test]
    fn fast_resolve_equivalent_for_any_k(
        k in 2usize..=6,
        side in 2u32..14,
        lo in unit(),
        width in unit(),
    ) {
        let layout = layout_for(k, side);
        let hi = (lo + width).min(1.0);
        // A mixed query: first dim [lo, hi], second unspecified, rest full.
        let mut bounds = vec![Some((lo, hi)), None];
        bounds.resize(k, Some((0.0, 1.0)));
        let q = RangeQuery::from_bounds(bounds).unwrap();
        let rewritten = q.rewritten();
        for pool in layout.pools() {
            prop_assert_eq!(
                relevant_offsets_fast(pool, &rewritten),
                relevant_offsets(pool, &rewritten),
                "k={}, side={}, pool {}", k, side, pool.dim
            );
        }
    }

    /// Every event has a storage cell in every layout (total placement).
    #[test]
    fn placement_total_for_any_k(k in 2usize..=6, side in 1u32..14, frac_seed in any::<u64>()) {
        let layout = layout_for(k, side.max(2));
        // Derive k values deterministically from the seed.
        let mut x = frac_seed;
        let values: Vec<f64> = (0..k)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let e = Event::new(values).unwrap();
        let cells = candidate_cells(&layout, &e);
        prop_assert!(!cells.is_empty());
        for placement in cells {
            prop_assert!(layout.pool(placement.pool_dim).contains(placement.cell));
        }
    }
}
