//! Property-based tests (proptest) of the core invariants listed in
//! DESIGN.md §8. These exercise the pure math (placement, resolving, codes)
//! over randomized inputs far beyond the hand-picked paper examples.

use pool_dcs::core::event::Event;
use pool_dcs::core::grid::{CellCoord, Grid};
use pool_dcs::core::insert::{candidate_cells, offsets_for, storage_cell};
use pool_dcs::core::interval::Interval;
use pool_dcs::core::layout::PoolLayout;
use pool_dcs::core::query::RangeQuery;
use pool_dcs::core::resolve::{derived_ranges, relevant_cells};
use pool_dcs::dim::ZoneCode;
use pool_dcs::ght::hash::hash_to_location;
use pool_dcs::netsim::Rect;
use proptest::prelude::*;

fn unit_value() -> impl Strategy<Value = f64> {
    // Mix of smooth values and exact boundaries/ties.
    prop_oneof![
        8 => (0u32..=1_000_000u32).prop_map(|v| v as f64 / 1_000_000.0),
        1 => Just(0.0),
        1 => Just(1.0),
        2 => (0u32..=10u32).prop_map(|v| v as f64 / 10.0),
    ]
}

fn event3() -> impl Strategy<Value = Event> {
    (unit_value(), unit_value(), unit_value())
        .prop_map(|(a, b, c)| Event::new(vec![a, b, c]).unwrap())
}

fn range() -> impl Strategy<Value = (f64, f64)> {
    (unit_value(), unit_value()).prop_map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
}

fn query3() -> impl Strategy<Value = RangeQuery> {
    let dim = prop_oneof![
        3 => range().prop_map(Some),
        1 => Just(None),
    ];
    (dim.clone(), dim.clone(), dim).prop_filter_map("at least one specified", |(a, b, c)| {
        RangeQuery::from_bounds(vec![a, b, c]).ok()
    })
}

/// Builds an event guaranteed to satisfy `q` by interpolating each
/// dimension's value inside its (rewritten) range with the given fraction.
fn event_inside(q: &RangeQuery, fracs: &[f64; 3]) -> Event {
    let values = q
        .rewritten()
        .iter()
        .zip(fracs)
        .map(|(&(lo, hi), &f)| (lo + f * (hi - lo)).clamp(lo, hi))
        .collect();
    Event::new(values).unwrap()
}

fn layout(side: u32) -> (Grid, PoolLayout) {
    let grid = Grid::over(Rect::square(200.0), 5.0).unwrap();
    let layout = PoolLayout::random(&grid, 3, side, 99).unwrap();
    (grid, layout)
}

proptest! {
    /// Theorem 3.1 invariant: the assigned cell's Equation-1 ranges always
    /// contain the event's deciding values.
    #[test]
    fn placement_cell_ranges_contain_deciding_values(e in event3(), side in 2u32..16) {
        let (_, layout) = layout(side);
        for placement in candidate_cells(&layout, &e) {
            let pool = layout.pool(placement.pool_dim);
            let (ho, vo) = pool.offsets_of(placement.cell).expect("cell is in its pool");
            let v_d1 = e.value(placement.pool_dim);
            let v_d2 = e.v_d2_given_d1(placement.pool_dim);
            prop_assert!(pool.range_h(ho).contains(v_d1), "V_d1 {} not in {}", v_d1, pool.range_h(ho));
            prop_assert!(pool.range_v(ho, vo).contains(v_d2), "V_d2 {} not in {}", v_d2, pool.range_v(ho, vo));
        }
    }

    /// Theorem 3.2 soundness: if an event matches the query, every cell
    /// that might store it (all tie candidates) appears in the resolved set.
    /// The event is *constructed* inside the query box so every sample is a
    /// genuine match.
    #[test]
    fn resolve_never_misses_a_matching_event(
        q in query3(),
        fracs in [unit_value(), unit_value(), unit_value()],
        side in 2u32..16,
    ) {
        let (_, layout) = layout(side);
        let e = event_inside(&q, &fracs);
        prop_assert!(q.matches(&e));
        let resolved = relevant_cells(&layout, &q);
        for placement in candidate_cells(&layout, &e) {
            prop_assert!(
                resolved.contains(&(placement.pool_dim, placement.cell)),
                "event {} at {} in P{} missed by {}",
                e, placement.cell, placement.pool_dim + 1, q
            );
        }
    }

    /// §2 rewrite equivalence: resolving a partial query equals resolving
    /// its explicit [0,1]-rewritten form.
    #[test]
    fn partial_rewrite_resolves_identically(q in query3()) {
        let (_, layout) = layout(10);
        let rewritten = RangeQuery::exact(q.rewritten()).unwrap();
        prop_assert_eq!(relevant_cells(&layout, &q), relevant_cells(&layout, &rewritten));
    }

    /// The derived ranges are bounds on (V_d1, V_d2) of matching events in
    /// the pool: direct check without going through cells.
    #[test]
    fn derived_ranges_bound_matching_events(
        q in query3(),
        fracs in [unit_value(), unit_value(), unit_value()],
    ) {
        let e = event_inside(&q, &fracs);
        prop_assert!(q.matches(&e));
        let rewritten = q.rewritten();
        for placement in candidate_cells(&layout(10).1, &e) {
            let i = placement.pool_dim;
            let r = derived_ranges(&rewritten, i);
            let v_d1 = e.value(i);
            let v_d2 = e.v_d2_given_d1(i);
            prop_assert!(r.r_h.contains(v_d1), "V_d1 {} outside R_H {}", v_d1, r.r_h);
            prop_assert!(r.r_v.contains(v_d2), "V_d2 {} outside R_V {}", v_d2, r.r_v);
        }
    }

    /// Interval intersection agrees with a dense membership sample.
    #[test]
    fn interval_intersection_matches_membership(
        a in range(), b in range(), half_a in any::<bool>(), half_b in any::<bool>()
    ) {
        let ia = if half_a { Interval::half_open(a.0, a.1) } else { Interval::closed(a.0, a.1) };
        let ib = if half_b { Interval::half_open(b.0, b.1) } else { Interval::closed(b.0, b.1) };
        let mut witnessed = false;
        for i in 0..=400 {
            let v = i as f64 / 400.0;
            if ia.contains(v) && ib.contains(v) {
                witnessed = true;
                break;
            }
        }
        // A shared sample point implies intersection (the converse can fail
        // for slivers narrower than the sampling step).
        if witnessed {
            prop_assert!(ia.intersects(ib), "{} and {} share points but 'intersect' is false", ia, ib);
        }
        prop_assert_eq!(ia.intersects(ib), ib.intersects(ia));
    }

    /// Theorem 3.1's arithmetic stays in range for any valid inputs.
    #[test]
    fn offsets_always_inside_pool(v1 in unit_value(), v2 in unit_value(), side in 1u32..64) {
        let (hi, lo) = if v1 >= v2 { (v1, v2) } else { (v2, v1) };
        let (ho, vo) = offsets_for(hi, lo, side);
        prop_assert!(ho < side && vo < side);
    }

    /// Tie handling (§4.1): exactly one candidate per tied greatest
    /// dimension, and the chosen cell is among the candidates.
    #[test]
    fn tie_candidates_match_greatest_dims(e in event3(), x in 0u32..35, y in 0u32..35) {
        let (grid, layout) = layout(8);
        let candidates = candidate_cells(&layout, &e);
        prop_assert_eq!(candidates.len(), e.greatest_dims().len());
        let chosen = storage_cell(&layout, &grid, &e, CellCoord::new(x, y));
        prop_assert!(candidates.contains(&chosen));
    }

    /// DIM: an event's zone code bits are a prefix-consistent function of
    /// its values, and the decoded attribute ranges always contain it.
    #[test]
    fn dim_event_codes_are_consistent(e in event3(), len in 1usize..20) {
        let code = ZoneCode::of_event(e.values(), len);
        prop_assert_eq!(code.len(), len);
        let shorter = ZoneCode::of_event(e.values(), len.saturating_sub(1));
        prop_assert!(shorter.is_prefix_of(&code));
        for (i, (lo, hi)) in code.attribute_ranges(3).into_iter().enumerate() {
            prop_assert!(e.value(i) >= lo && e.value(i) <= hi);
        }
    }

    /// GHT: hashing always lands inside the field and is deterministic.
    #[test]
    fn ght_hash_in_field(key in "[a-z0-9]{1,16}", w in 10.0f64..500.0, h in 10.0f64..500.0) {
        let field = Rect::new(
            pool_dcs::netsim::Point::new(0.0, 0.0),
            pool_dcs::netsim::Point::new(w, h),
        );
        let p1 = hash_to_location(key.as_bytes(), field);
        let p2 = hash_to_location(key.as_bytes(), field);
        prop_assert_eq!(p1, p2);
        prop_assert!(field.contains(p1));
    }

    /// Query classification is stable under rewriting: the rewritten form
    /// of any query matches exactly the same events.
    #[test]
    fn rewrite_preserves_semantics(e in event3(), q in query3()) {
        let rewritten = RangeQuery::exact(q.rewritten()).unwrap();
        prop_assert_eq!(q.matches(&e), rewritten.matches(&e));
    }
}
