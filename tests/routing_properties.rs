//! Property-based tests of the routing substrate: GPSR must deliver on
//! arbitrary connected unit-disk deployments, under both planarizations,
//! and its delivery points for location-addressed packets must be local
//! minima (home-node semantics).

use pool_dcs::gpsr::shortest::bfs_hops;
use pool_dcs::gpsr::{Gpsr, Planarization};
use pool_dcs::netsim::{Deployment, NodeId, Placement, Point, Rect, Topology};
use proptest::prelude::*;

/// Builds a random deployment; returns `None` when it happens to be
/// disconnected (the property is vacuous there).
fn build(n: usize, seed: u64, side: f64, range: f64) -> Option<Topology> {
    let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
    let topo = Topology::build(nodes, range).ok()?;
    topo.is_connected().then_some(topo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Node-addressed packets always arrive, under both planarizations,
    /// with every hop a radio link and within the hop budget.
    #[test]
    fn gpsr_delivers_on_random_connected_networks(
        seed in 0u64..2000,
        n in 30usize..120,
        from_sel in 0usize..1000,
        to_sel in 0usize..1000,
    ) {
        let Some(topo) = build(n, seed, 100.0, 30.0) else { return Ok(()) };
        let from = NodeId((from_sel % n) as u32);
        let to = NodeId((to_sel % n) as u32);
        for method in [Planarization::Gabriel, Planarization::RelativeNeighborhood] {
            let gpsr = Gpsr::new(&topo, method);
            let route = gpsr.route_to_node(&topo, from, to);
            prop_assert!(route.is_ok(), "{method:?} failed: {route:?}");
            let route = route.unwrap();
            prop_assert_eq!(route.delivered, to);
            for w in route.path.windows(2) {
                prop_assert!(w[0] == w[1] || topo.are_neighbors(w[0], w[1]));
            }
            prop_assert!(route.hops() <= 10 * n + 100);
            // GPSR can never beat the BFS optimum.
            let opt = bfs_hops(&topo, from, to).expect("connected");
            prop_assert!(route.hops() >= opt);
        }
    }

    /// Location-addressed packets stop at a node with no closer neighbor
    /// (the greedy local-minimum condition — GHT home-node semantics).
    #[test]
    fn location_routing_stops_at_local_minimum(
        seed in 0u64..2000,
        n in 30usize..120,
        from_sel in 0usize..1000,
        tx in 0.0f64..100.0,
        ty in 0.0f64..100.0,
    ) {
        let Some(topo) = build(n, seed, 100.0, 30.0) else { return Ok(()) };
        let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
        let from = NodeId((from_sel % n) as u32);
        let target = Point::new(tx, ty);
        let route = gpsr.route(&topo, from, target);
        prop_assert!(route.is_ok(), "{route:?}");
        let route = route.unwrap();
        let dd = topo.position(route.delivered).distance_sq(target);
        for &nb in topo.neighbors(route.delivered) {
            prop_assert!(
                topo.position(nb).distance_sq(target) >= dd - 1e-9,
                "neighbor {nb} closer to {target} than delivery node {}",
                route.delivered
            );
        }
    }

    /// Routing is deterministic: the same request produces the same path.
    #[test]
    fn routing_is_deterministic(seed in 0u64..500, n in 30usize..80) {
        let Some(topo) = build(n, seed, 90.0, 30.0) else { return Ok(()) };
        let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
        let a = gpsr.route(&topo, NodeId(0), Point::new(45.0, 45.0)).unwrap();
        let b = gpsr.route(&topo, NodeId(0), Point::new(45.0, 45.0)).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Failing any single non-articulation node leaves routing working for
    /// every surviving destination.
    #[test]
    fn single_failure_does_not_break_routing(
        seed in 0u64..500,
        n in 40usize..90,
        victim_sel in 0usize..1000,
    ) {
        let Some(topo) = build(n, seed, 90.0, 30.0) else { return Ok(()) };
        let victim = NodeId((victim_sel % n) as u32);
        let failed = topo.without_nodes(&[victim]);
        if !failed.is_connected() {
            return Ok(()); // articulation point: vacuous
        }
        let gpsr = Gpsr::new(&failed, Planarization::Gabriel);
        let from = if victim == NodeId(0) { NodeId(1) } else { NodeId(0) };
        for probe in [7u32, n as u32 / 2, n as u32 - 1] {
            let to = NodeId(probe % n as u32);
            if to == victim || to == from {
                continue;
            }
            let route = gpsr.route_to_node(&failed, from, to);
            prop_assert!(route.is_ok(), "after failing {victim}: {route:?}");
            prop_assert!(route.unwrap().path.iter().all(|&h| h != victim));
        }
    }
}
