//! Failure-injection integration tests across Pool, DIM, and the routing
//! substrate: nodes die, the systems repair themselves, and every
//! queryable guarantee is re-checked against ground truth.

use pool_dcs::core::{Event, PoolConfig, PoolSystem, RangeQuery};
use pool_dcs::dim::DimSystem;
use pool_dcs::gpsr::{Gpsr, Planarization};
use pool_dcs::netsim::{Deployment, NodeId, Topology};
use pool_dcs::transport::TransportKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn connected(n: usize, mut seed: u64) -> (Topology, pool_dcs::netsim::Rect) {
    loop {
        let dep = Deployment::paper_setting(n, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            return (topo, dep.field());
        }
        seed += 4096;
    }
}

/// Picks `count` victims whose removal keeps the network connected.
fn safe_victims(topo: &Topology, count: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let mut picked: Vec<NodeId> = Vec::new();
    let mut tries = 0;
    while picked.len() < count && tries < 2000 {
        tries += 1;
        let candidate = NodeId(rng.gen_range(0..topo.len() as u32));
        if picked.contains(&candidate) {
            continue;
        }
        let mut attempt = picked.clone();
        attempt.push(candidate);
        if topo.without_nodes(&attempt).is_connected() {
            picked.push(candidate);
        }
    }
    picked
}

#[test]
fn gpsr_still_delivers_after_failures() {
    let (topo, _) = connected(300, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let victims = safe_victims(&topo, 15, &mut rng);
    let failed = topo.without_nodes(&victims);
    let gpsr = Gpsr::new(&failed, Planarization::Gabriel);
    let survivors: Vec<NodeId> =
        failed.nodes().iter().filter(|n| failed.is_alive(n.id)).map(|n| n.id).collect();
    for i in (0..survivors.len()).step_by(11) {
        let from = survivors[i];
        let to = survivors[survivors.len() - 1 - i];
        let route = gpsr.route_to_node(&failed, from, to).unwrap();
        assert_eq!(route.delivered, to);
        // The route never crosses a dead node.
        for hop in &route.path {
            assert!(failed.is_alive(*hop));
        }
    }
}

#[test]
fn replicated_pool_answers_match_pre_failure_truth() {
    let (topo, field) = connected(400, 3);
    let mut pool =
        PoolSystem::build(topo.clone(), field, PoolConfig::paper().with_seed(3).with_replication())
            .unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let mut inserted = Vec::new();
    for _ in 0..500 {
        let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
        pool.insert_from(NodeId(rng.gen_range(0..400)), e.clone()).unwrap();
        inserted.push(e);
    }
    let victims = safe_victims(pool.topology(), 10, &mut rng);
    let report = pool.fail_nodes(&victims).unwrap();
    assert_eq!(report.events_lost, 0);

    // Every pre-failure event is still retrievable by point query.
    for e in inserted.iter().step_by(23) {
        let q = RangeQuery::point(e.values().to_vec()).unwrap();
        let mut sink = NodeId(rng.gen_range(0..400));
        while !pool.topology().is_alive(sink) {
            sink = NodeId(rng.gen_range(0..400));
        }
        let got = pool.query_from(sink, &q).unwrap();
        assert!(got.events.contains(e), "lost {e} after failures");
    }
}

#[test]
fn unreplicated_loss_is_exactly_the_dead_holders_inventory() {
    let (topo, field) = connected(350, 5);
    let mut pool =
        PoolSystem::build(topo.clone(), field, PoolConfig::paper().with_seed(5)).unwrap();
    let mut dim = DimSystem::build(topo, field, 3).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..400 {
        let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
        let src = NodeId(rng.gen_range(0..350));
        pool.insert_from(src, e.clone()).unwrap();
        dim.insert_from(src, e).unwrap();
    }
    let victims = safe_victims(pool.topology(), 8, &mut rng);
    let pool_at_risk: usize = victims.iter().map(|&v| pool.store().count_at(v)).sum();
    let report = pool.fail_nodes(&victims).unwrap();
    assert_eq!(report.events_lost, pool_at_risk);
    assert_eq!(report.events_recovered, 0, "no replication, nothing to recover");

    let dim_before = dim.stored_events();
    let dim_report = dim.fail_nodes(&victims).unwrap();
    assert_eq!(dim.stored_events(), dim_before - dim_report.events_lost);

    // Both systems remain internally consistent: network answers equal
    // their own surviving ground truth.
    let full = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
    let sink = pool.topology().nodes().iter().find(|n| pool.topology().is_alive(n.id)).unwrap().id;
    assert_eq!(pool.query_from(sink, &full).unwrap().events.len(), pool.store().len());
    assert_eq!(dim.query_from(sink, &full).unwrap().events.len(), dim.stored_events());
}

#[test]
fn cached_routes_never_cross_dead_nodes_after_failures() {
    let (topo, field) = connected(300, 11);
    let mut pool = PoolSystem::build(
        topo,
        field,
        PoolConfig::paper().with_seed(11).with_transport(TransportKind::Cached),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(12);

    // Warm the route memo: inserts and queries populate it with paths over
    // the intact topology.
    for _ in 0..200 {
        let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
        pool.insert_from(NodeId(rng.gen_range(0..300)), e).unwrap();
    }
    for _ in 0..20 {
        let q = RangeQuery::exact(vec![(0.2, 0.4), (0.1, 0.6), (0.3, 0.5)]).unwrap();
        pool.query_from(NodeId(rng.gen_range(0..300)), &q).unwrap();
    }

    let generation_before = pool.transport().generation();
    let victims = safe_victims(pool.topology(), 12, &mut rng);
    pool.fail_nodes(&victims).unwrap();

    // The repair rebuilt the substrate: stale pre-failure routes are gone.
    assert_eq!(pool.transport().generation(), generation_before + 1);

    // Every route served after the failure stays on living nodes.
    let survivors: Vec<NodeId> = pool
        .topology()
        .nodes()
        .iter()
        .filter(|n| pool.topology().is_alive(n.id))
        .map(|n| n.id)
        .collect();
    let topo = pool.topology().clone();
    for i in (0..survivors.len()).step_by(7) {
        let from = survivors[i];
        let to = survivors[survivors.len() - 1 - i];
        let route = pool.transport_mut().route_to_node(&topo, from, to).unwrap();
        assert_eq!(route.delivered, to);
        for hop in &route.path {
            assert!(topo.is_alive(*hop), "cached route crosses dead node {hop:?}");
        }
    }
}

#[test]
fn nearest_neighbor_still_exact_after_failures() {
    let (topo, field) = connected(300, 7);
    let mut pool =
        PoolSystem::build(topo, field, PoolConfig::paper().with_seed(7).with_replication())
            .unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..200 {
        let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
        pool.insert_from(NodeId(rng.gen_range(0..300)), e).unwrap();
    }
    let victims = safe_victims(pool.topology(), 6, &mut rng);
    pool.fail_nodes(&victims).unwrap();

    let full = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
    let survivors = pool.brute_force_query(&full);
    for _ in 0..10 {
        let probe = [rng.gen(), rng.gen(), rng.gen()];
        let mut sink = NodeId(rng.gen_range(0..300));
        while !pool.topology().is_alive(sink) {
            sink = NodeId(rng.gen_range(0..300));
        }
        let (got, _) = pool.nearest(sink, &probe).unwrap();
        let want = survivors
            .iter()
            .map(|e| pool_dcs::core::nn::event_distance(&probe, e))
            .fold(f64::INFINITY, f64::min);
        assert!((got.unwrap().1 - want).abs() < 1e-12);
    }
}

/// Folded in from the PR 7 scratch review: with a repair budget of zero,
/// Backup tasks queued by a churn epoch must neither duplicate nor drain
/// across idle repair-only epochs — the queue length is exactly constant.
#[test]
fn zero_budget_repair_queue_stays_constant_across_idle_epochs() {
    use pool_dcs::core::config::SharingPolicy;
    use pool_dcs::core::dynamics::{ChurnConfig, ChurnPlanner, EpochPlan, RepairQueue};
    use pool_dcs::workloads::events::{EventDistribution, EventGenerator};

    let (topo, field) = connected(300, 107);
    let config =
        PoolConfig::paper().with_seed(107).with_sharing(SharingPolicy::new(8)).with_replication();
    let mut pool = PoolSystem::build(topo, field, config).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
    for _ in 0..90 {
        let src = NodeId(rng.gen_range(0..300));
        pool.insert_from(src, generator.generate(&mut rng)).unwrap();
    }
    // One churn epoch with budget 0 so Backup tasks queue instead of running.
    let mut planner = ChurnPlanner::new(ChurnConfig::new(0).with_rates(2, 3, 2));
    let mut queue = RepairQueue::default();
    let plan = planner.plan(pool.topology(), pool.field());
    pool.apply_epoch(&plan, &mut queue, 0).unwrap();
    let queued = queue.len();
    assert!(queued > 0, "churn with dead nodes must queue repair work");
    // Repair-only epochs, still budget 0: the queue must stay constant.
    for _ in 0..4 {
        pool.apply_epoch(&EpochPlan::empty(), &mut queue, 0).unwrap();
        assert_eq!(queue.len(), queued, "idle zero-budget epoch changed the repair queue");
    }
}

/// Regression for stale cached routes: once a failed delivery proves a node
/// dead and the passive detector suspects it, detoured deliveries put zero
/// further traffic on that node — the memoized routes crossing it were
/// evicted on `failed_hop`, not at the next generation bump.
#[test]
fn suspected_dead_node_takes_no_further_traffic() {
    use pool_dcs::transport::{
        Fault, FaultPlan, FaultyTransport, LossyConfig, RecoveryConfig, TrafficLayer, Transport,
        TransportKind,
    };

    let (topo, _) = connected(300, 21);
    let mut inner = TransportKind::Cached.build(&topo, Planarization::Gabriel);

    // Find an endpoint pair whose route has an interior relay.
    let mut rng = StdRng::seed_from_u64(42);
    let (from, to, relay) = loop {
        let a = NodeId(rng.gen_range(0..300));
        let b = NodeId(rng.gen_range(0..300));
        if a == b {
            continue;
        }
        if let Ok(route) = inner.route_to_node(&topo, a, b) {
            if route.path.len() >= 4 {
                break (a, b, route.path[route.path.len() / 2]);
            }
        }
    };

    let recovery = RecoveryConfig::default();
    let mut transport = FaultyTransport::wrap_adaptive(
        inner,
        LossyConfig::fixed(1.0, 9),
        FaultPlan::new().with(Fault::Crash { node: relay, at: 0.0 }),
        recovery,
    );

    // Enough failed deliveries for the detector's k consecutive exhausted
    // budgets on the hop into the dead relay.
    for _ in 0..recovery.suspect_after {
        let route = transport.route_to_node(&topo, from, to).unwrap();
        let outcome = transport.deliver(&topo, &route.path, TrafficLayer::Forward);
        assert!(!outcome.delivered, "delivery through a crashed relay must fail");
        assert_eq!(outcome.failed_hop.map(|(_, t)| t), Some(relay));
    }
    assert!(
        transport.adaptive().unwrap().is_suspect(relay),
        "the detector must suspect the crashed relay"
    );

    // From here on the dead node's ledger line is frozen: detoured
    // deliveries route around it and charge it nothing.
    let dead_load = transport.ledger().node_load(relay);
    for _ in 0..5 {
        let route = transport.route_to_node_avoiding(&topo, from, to, &[]).unwrap();
        assert!(!route.path.contains(&relay), "detour route still crosses the suspect");
        let outcome = transport.deliver(&topo, &route.path, TrafficLayer::Forward);
        assert!(outcome.delivered, "detoured delivery must succeed on a perfect link");
    }
    assert_eq!(
        transport.ledger().node_load(relay),
        dead_load,
        "post-failure traffic charged through the dead node"
    );
    assert!(transport.delivery_stats().detour_routes >= 1);
}
