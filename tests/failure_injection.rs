//! Failure-injection integration tests across Pool, DIM, and the routing
//! substrate: nodes die, the systems repair themselves, and every
//! queryable guarantee is re-checked against ground truth.

use pool_dcs::core::{Event, PoolConfig, PoolSystem, RangeQuery};
use pool_dcs::dim::DimSystem;
use pool_dcs::gpsr::{Gpsr, Planarization};
use pool_dcs::netsim::{Deployment, NodeId, Topology};
use pool_dcs::transport::TransportKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn connected(n: usize, mut seed: u64) -> (Topology, pool_dcs::netsim::Rect) {
    loop {
        let dep = Deployment::paper_setting(n, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            return (topo, dep.field());
        }
        seed += 4096;
    }
}

/// Picks `count` victims whose removal keeps the network connected.
fn safe_victims(topo: &Topology, count: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let mut picked: Vec<NodeId> = Vec::new();
    let mut tries = 0;
    while picked.len() < count && tries < 2000 {
        tries += 1;
        let candidate = NodeId(rng.gen_range(0..topo.len() as u32));
        if picked.contains(&candidate) {
            continue;
        }
        let mut attempt = picked.clone();
        attempt.push(candidate);
        if topo.without_nodes(&attempt).is_connected() {
            picked.push(candidate);
        }
    }
    picked
}

#[test]
fn gpsr_still_delivers_after_failures() {
    let (topo, _) = connected(300, 1);
    let mut rng = StdRng::seed_from_u64(2);
    let victims = safe_victims(&topo, 15, &mut rng);
    let failed = topo.without_nodes(&victims);
    let gpsr = Gpsr::new(&failed, Planarization::Gabriel);
    let survivors: Vec<NodeId> =
        failed.nodes().iter().filter(|n| failed.is_alive(n.id)).map(|n| n.id).collect();
    for i in (0..survivors.len()).step_by(11) {
        let from = survivors[i];
        let to = survivors[survivors.len() - 1 - i];
        let route = gpsr.route_to_node(&failed, from, to).unwrap();
        assert_eq!(route.delivered, to);
        // The route never crosses a dead node.
        for hop in &route.path {
            assert!(failed.is_alive(*hop));
        }
    }
}

#[test]
fn replicated_pool_answers_match_pre_failure_truth() {
    let (topo, field) = connected(400, 3);
    let mut pool =
        PoolSystem::build(topo.clone(), field, PoolConfig::paper().with_seed(3).with_replication())
            .unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let mut inserted = Vec::new();
    for _ in 0..500 {
        let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
        pool.insert_from(NodeId(rng.gen_range(0..400)), e.clone()).unwrap();
        inserted.push(e);
    }
    let victims = safe_victims(pool.topology(), 10, &mut rng);
    let report = pool.fail_nodes(&victims).unwrap();
    assert_eq!(report.events_lost, 0);

    // Every pre-failure event is still retrievable by point query.
    for e in inserted.iter().step_by(23) {
        let q = RangeQuery::point(e.values().to_vec()).unwrap();
        let mut sink = NodeId(rng.gen_range(0..400));
        while !pool.topology().is_alive(sink) {
            sink = NodeId(rng.gen_range(0..400));
        }
        let got = pool.query_from(sink, &q).unwrap();
        assert!(got.events.contains(e), "lost {e} after failures");
    }
}

#[test]
fn unreplicated_loss_is_exactly_the_dead_holders_inventory() {
    let (topo, field) = connected(350, 5);
    let mut pool =
        PoolSystem::build(topo.clone(), field, PoolConfig::paper().with_seed(5)).unwrap();
    let mut dim = DimSystem::build(topo, field, 3).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..400 {
        let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
        let src = NodeId(rng.gen_range(0..350));
        pool.insert_from(src, e.clone()).unwrap();
        dim.insert_from(src, e).unwrap();
    }
    let victims = safe_victims(pool.topology(), 8, &mut rng);
    let pool_at_risk: usize = victims.iter().map(|&v| pool.store().count_at(v)).sum();
    let report = pool.fail_nodes(&victims).unwrap();
    assert_eq!(report.events_lost, pool_at_risk);
    assert_eq!(report.events_recovered, 0, "no replication, nothing to recover");

    let dim_before = dim.stored_events();
    let dim_report = dim.fail_nodes(&victims).unwrap();
    assert_eq!(dim.stored_events(), dim_before - dim_report.events_lost);

    // Both systems remain internally consistent: network answers equal
    // their own surviving ground truth.
    let full = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
    let sink = pool.topology().nodes().iter().find(|n| pool.topology().is_alive(n.id)).unwrap().id;
    assert_eq!(pool.query_from(sink, &full).unwrap().events.len(), pool.store().len());
    assert_eq!(dim.query_from(sink, &full).unwrap().events.len(), dim.stored_events());
}

#[test]
fn cached_routes_never_cross_dead_nodes_after_failures() {
    let (topo, field) = connected(300, 11);
    let mut pool = PoolSystem::build(
        topo,
        field,
        PoolConfig::paper().with_seed(11).with_transport(TransportKind::Cached),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(12);

    // Warm the route memo: inserts and queries populate it with paths over
    // the intact topology.
    for _ in 0..200 {
        let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
        pool.insert_from(NodeId(rng.gen_range(0..300)), e).unwrap();
    }
    for _ in 0..20 {
        let q = RangeQuery::exact(vec![(0.2, 0.4), (0.1, 0.6), (0.3, 0.5)]).unwrap();
        pool.query_from(NodeId(rng.gen_range(0..300)), &q).unwrap();
    }

    let generation_before = pool.transport().generation();
    let victims = safe_victims(pool.topology(), 12, &mut rng);
    pool.fail_nodes(&victims).unwrap();

    // The repair rebuilt the substrate: stale pre-failure routes are gone.
    assert_eq!(pool.transport().generation(), generation_before + 1);

    // Every route served after the failure stays on living nodes.
    let survivors: Vec<NodeId> = pool
        .topology()
        .nodes()
        .iter()
        .filter(|n| pool.topology().is_alive(n.id))
        .map(|n| n.id)
        .collect();
    let topo = pool.topology().clone();
    for i in (0..survivors.len()).step_by(7) {
        let from = survivors[i];
        let to = survivors[survivors.len() - 1 - i];
        let route = pool.transport_mut().route_to_node(&topo, from, to).unwrap();
        assert_eq!(route.delivered, to);
        for hop in &route.path {
            assert!(topo.is_alive(*hop), "cached route crosses dead node {hop:?}");
        }
    }
}

#[test]
fn nearest_neighbor_still_exact_after_failures() {
    let (topo, field) = connected(300, 7);
    let mut pool =
        PoolSystem::build(topo, field, PoolConfig::paper().with_seed(7).with_replication())
            .unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..200 {
        let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
        pool.insert_from(NodeId(rng.gen_range(0..300)), e).unwrap();
    }
    let victims = safe_victims(pool.topology(), 6, &mut rng);
    pool.fail_nodes(&victims).unwrap();

    let full = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
    let survivors = pool.brute_force_query(&full);
    for _ in 0..10 {
        let probe = [rng.gen(), rng.gen(), rng.gen()];
        let mut sink = NodeId(rng.gen_range(0..300));
        while !pool.topology().is_alive(sink) {
            sink = NodeId(rng.gen_range(0..300));
        }
        let (got, _) = pool.nearest(sink, &probe).unwrap();
        let want = survivors
            .iter()
            .map(|e| pool_dcs::core::nn::event_distance(&probe, e))
            .fold(f64::INFINITY, f64::min);
        assert!((got.unwrap().1 - want).abs() < 1e-12);
    }
}
