//! The lossy-delivery contract (DESIGN.md §6): a perfect link must be
//! invisible, loss must degrade results instead of aborting them, and the
//! completeness report must tell the truth.
//!
//! * With `prr = 1.0` the [`LossyTransport`] decorator reproduces the
//!   loss-free substrate byte for byte — same query costs, same traffic
//!   ledger, zero retransmissions — the same equivalence bar as
//!   `transport_equivalence.rs` holds across the link layer.
//! * Under the harsh 15/42 m radio, exact-match queries return partial
//!   results whose [`Completeness`] report is *accurate*: every cell the
//!   result claims to have reached contributed all of its matching stored
//!   events, and every missing cell is listed.
//! * A node failure that partitions the network degrades into unreachable
//!   counts and partial queries instead of a routing error.
//! * Property: bounded ARQ on a fixed-`p` link spends `≈ 1/p` transmissions
//!   per delivered hop (the ETX identity the accounting is built on).
//!
//! [`LossyTransport`]: pool_dcs::transport::LossyTransport
//! [`Completeness`]: pool_dcs::core::system::Completeness

use pool_dcs::core::insert::InsertError;
use pool_dcs::core::resolve::relevant_cells;
use pool_dcs::core::{Event, PoolConfig, PoolSystem, RangeQuery};
use pool_dcs::dim::DimSystem;
use pool_dcs::gpsr::Planarization;
use pool_dcs::netsim::radio::PrrModel;
use pool_dcs::netsim::{Deployment, NodeId, Rect, Topology};
use pool_dcs::transport::{
    LinkQuality, LossyConfig, LossyTransport, TrafficLayer, Transport, TransportKind,
};
use pool_dcs::workloads::events::{EventDistribution, EventGenerator};
use pool_dcs::workloads::queries::{exact_query, RangeSizeDistribution};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 400;
const EVENTS: usize = 800;
const QUERIES: usize = 60;

fn connected(mut seed: u64) -> (Topology, Rect) {
    loop {
        let dep = Deployment::paper_setting(NODES, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            return (topo, dep.field());
        }
        seed += 4096;
    }
}

type Placements = Vec<(NodeId, Event)>;
type SinkQueries = Vec<(NodeId, RangeQuery)>;

/// The same fig6-style deterministic workload as `transport_equivalence.rs`.
fn workload(seed: u64) -> (Placements, SinkQueries) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
    let events: Vec<(NodeId, Event)> = (0..EVENTS)
        .map(|_| {
            let src = NodeId(rng.gen_range(0..NODES as u32));
            (src, generator.generate(&mut rng))
        })
        .collect();
    let queries: Vec<(NodeId, RangeQuery)> = (0..QUERIES)
        .map(|_| {
            let sink = NodeId(rng.gen_range(0..NODES as u32));
            (sink, exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.1 }))
        })
        .collect();
    (events, queries)
}

/// (a) A perfect lossy link is observationally identical to no link layer
/// at all, for Pool: same receipts, same query costs and results, same
/// ledger layer by layer — and nothing charged to `Retransmit`.
#[test]
fn perfect_link_reproduces_loss_free_pool_exactly() {
    let (topo, field) = connected(21);
    let (events, queries) = workload(22);

    let mut plain = {
        let config = PoolConfig::paper().with_seed(21);
        PoolSystem::build(topo.clone(), field, config).unwrap()
    };
    let mut lossy = {
        let config = PoolConfig::paper().with_seed(21).with_lossy(LossyConfig::fixed(1.0, 777));
        PoolSystem::build(topo.clone(), field, config).unwrap()
    };

    for (src, e) in &events {
        let a = plain.insert_from(*src, e.clone()).unwrap();
        let b = lossy.insert_from(*src, e.clone()).unwrap();
        assert_eq!(a, b, "insert receipt diverges under a perfect link");
    }
    assert_eq!(plain.ledger(), lossy.ledger(), "insert traffic diverges");

    for (sink, query) in &queries {
        let a = plain.query_from(*sink, query).unwrap();
        let b = lossy.query_from(*sink, query).unwrap();
        assert_eq!(a.cost, b.cost, "QueryCost diverges on {query}");
        assert_eq!(a.events.len(), b.events.len(), "result sets diverge on {query}");
        assert!(b.completeness.is_complete(), "perfect link left {query} incomplete");
        assert_eq!(b.cost.retransmit_messages, 0);
    }

    for layer in TrafficLayer::ALL {
        assert_eq!(
            plain.ledger().layer_total(layer),
            lossy.ledger().layer_total(layer),
            "layer {layer:?} diverges"
        );
    }
    assert_eq!(lossy.ledger().layer_total(TrafficLayer::Retransmit), 0);
    let stats = lossy.transport().delivery_stats();
    assert_eq!(stats.deliveries_failed, 0);
    assert_eq!(stats.retransmissions, 0);
}

/// (a) The same perfect-link equivalence for the DIM baseline.
#[test]
fn perfect_link_reproduces_loss_free_dim_exactly() {
    let (topo, field) = connected(23);
    let (events, queries) = workload(24);

    let mut plain =
        DimSystem::build_with_transport(topo.clone(), field, 3, TransportKind::Gpsr).unwrap();
    let mut lossy = DimSystem::build_with_substrate(
        topo.clone(),
        field,
        3,
        TransportKind::Gpsr,
        Some(LossyConfig::fixed(1.0, 778)),
    )
    .unwrap();

    for (src, e) in &events {
        let a = plain.insert_from(*src, e.clone()).unwrap();
        let b = lossy.insert_from(*src, e.clone()).unwrap();
        assert_eq!(a, b, "DIM insert receipt diverges under a perfect link");
    }
    for (sink, query) in &queries {
        let a = plain.query_from(*sink, query).unwrap();
        let b = lossy.query_from(*sink, query).unwrap();
        assert_eq!(a.cost, b.cost, "DIM QueryCost diverges on {query}");
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(b.zones_reached, b.zones_visited, "perfect link left zones unreached");
    }
    assert_eq!(plain.ledger(), lossy.ledger());
    assert_eq!(lossy.ledger().layer_total(TrafficLayer::Retransmit), 0);
}

/// (b) Harsh loss: queries keep answering with partial results, and the
/// completeness report is accurate — reached cells contributed *all* their
/// matching stored events, unreached cells are all listed, nothing is
/// fabricated.
#[test]
fn harsh_loss_degrades_queries_with_accurate_completeness() {
    let (topo, field) = connected(31);
    let (events, queries) = workload(32);

    let config = PoolConfig::paper()
        .with_seed(31)
        .with_lossy(LossyConfig::model(PrrModel::new(15.0, 42.0), 4242));
    let mut pool = PoolSystem::build(topo, field, config).unwrap();

    let mut drops = 0usize;
    for (src, e) in &events {
        match pool.insert_from(*src, e.clone()) {
            Ok(_) => {}
            Err(InsertError::Undeliverable { .. }) => drops += 1,
            Err(e) => panic!("unexpected insert failure: {e}"),
        }
    }
    assert!(drops > 0, "the harsh radio should drop some insertions");
    assert!(pool.store().len() + drops == EVENTS, "drops and stored events must partition");

    let mut partial = 0usize;
    for (sink, query) in &queries {
        let got = pool.query_from(*sink, query).expect("lossy queries must not error");
        let c = &got.completeness;

        // The report's arithmetic is consistent and matches the resolver.
        let relevant = relevant_cells(pool.layout(), query);
        assert_eq!(c.cells_relevant, relevant.len());
        assert_eq!(c.cells_reached + c.unreached_cells.len(), c.cells_relevant);
        for missing in &c.unreached_cells {
            assert!(relevant.contains(missing), "phantom unreached cell {missing:?}");
        }

        // Every claimed-reached cell's matching stored events are in the
        // result — the report never overstates coverage.
        for rc in relevant.iter().filter(|rc| !c.unreached_cells.contains(rc)) {
            for stored in pool.store().events_in(rc.1) {
                if query.matches(&stored.event) {
                    assert!(
                        got.events.contains(&stored.event),
                        "cell {rc:?} claimed reached but event {:?} is missing",
                        stored.event
                    );
                }
            }
        }
        // And nothing is fabricated: every returned event is a stored match.
        let truth = pool.brute_force_query(query);
        for e in &got.events {
            assert!(truth.contains(e), "fabricated event {e:?}");
        }

        partial += usize::from(!c.is_complete());
    }
    assert!(partial > 0, "the harsh radio should leave some queries partial");
}

/// (c) A failure wave that partitions the network degrades — unreachable
/// nodes/cells are counted, later queries report missing cells — instead
/// of returning `PoolError::Routing`.
#[test]
fn partitioning_failure_degrades_instead_of_erroring() {
    let (topo, field) = connected(41);
    let (events, _) = workload(42);
    let mut pool = PoolSystem::build(topo, field, PoolConfig::paper().with_seed(41)).unwrap();
    for (src, e) in &events {
        pool.insert_from(*src, e.clone()).unwrap();
    }

    // Cut one index node off from the rest of the network by killing its
    // entire radio neighborhood — a guaranteed partition regardless of
    // where this deployment's random pivots put the pool cells.
    let isolated = pool
        .layout()
        .pools()
        .to_vec()
        .iter()
        .flat_map(|p| p.cells())
        .find_map(|c| pool.index_node_of(c))
        .expect("layout has index nodes");
    let victims: Vec<NodeId> = pool.topology().neighbors(isolated).to_vec();
    let report = pool.fail_nodes(&victims).expect("partition must degrade, not abort");
    assert!(report.partitioned, "stripe failure must partition: {report:?}");
    assert!(report.nodes_unreachable > 0);
    assert!(report.cells_unreachable > 0);

    // The main component still answers, listing what it cannot see.
    let sink = pool.topology().largest_component_members()[0];
    let all = RangeQuery::from_bounds(vec![Some((0.0, 1.0)), Some((0.0, 1.0)), Some((0.0, 1.0))])
        .unwrap();
    let got = pool.query_from(sink, &all).unwrap();
    assert!(!got.completeness.is_complete(), "{:?}", got.completeness);
    assert_eq!(
        got.completeness.cells_reached + got.completeness.unreached_cells.len(),
        got.completeness.cells_relevant
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (d) The ETX identity: with per-hop reception probability `p` and a
    /// deep retry budget, bounded ARQ spends `1/p` transmissions per
    /// delivered hop on average.
    #[test]
    fn arq_cost_converges_to_inverse_prr(p in 0.3f64..=1.0) {
        let dep = Deployment::paper_setting(150, 40.0, 20.0, 9).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        let inner = TransportKind::Gpsr.build(&topo, Planarization::Gabriel);
        let config = LossyConfig {
            quality: LinkQuality::Fixed(p),
            ..LossyConfig::fixed(1.0, 1234)
        }
        .with_retry_budget(64);
        let mut lossy = LossyTransport::wrap(inner, config);

        let mut rng = StdRng::seed_from_u64(99);
        let n = topo.len() as u32;
        for _ in 0..300 {
            let from = NodeId(rng.gen_range(0..n));
            let to = NodeId(rng.gen_range(0..n));
            if from == to {
                continue;
            }
            let route = lossy.route_to_node(&topo, from, to).unwrap();
            let path = route.path.clone();
            lossy.deliver(&topo, &path, TrafficLayer::Forward);
        }

        let stats = lossy.delivery_stats();
        prop_assert!(stats.hop_attempts > 1_000, "workload too small: {stats:?}");
        // Budget 64 makes a hop failure astronomically unlikely at p >= 0.3.
        prop_assert_eq!(stats.hops_failed, 0);
        let per_hop = stats.transmissions as f64 / stats.hop_attempts as f64;
        let etx = 1.0 / p;
        prop_assert!(
            (per_hop - etx).abs() < 0.15 * etx,
            "mean transmissions per hop {per_hop:.3} vs ETX {etx:.3}"
        );
    }
}
