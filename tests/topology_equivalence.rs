//! The flat-arena contract: the CSR topology — through any interleaving of
//! in-place mutation, overlay patching, and compaction — must be
//! observationally identical to the persistent clone-per-change
//! representation it replaced. Neighbor tables, GPSR routes, and whole
//! traffic ledgers are all pinned here, because every message count in the
//! checked-in artifacts rides on them.

use pool_dcs::core::{PoolConfig, PoolSystem};
use pool_dcs::gpsr::{Gpsr, Planarization};
use pool_dcs::netsim::geometry::Point;
use pool_dcs::netsim::{Deployment, NodeId, Rect, Topology};
use pool_dcs::workloads::events::{EventDistribution, EventGenerator};
use pool_dcs::workloads::queries::{exact_query, RangeSizeDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 350;

fn connected(mut seed: u64) -> (Topology, Rect) {
    loop {
        let dep = Deployment::paper_setting(NODES, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            return (topo, dep.field());
        }
        seed += 4096;
    }
}

/// Neighbor rows, liveness flags, and position bit patterns per node.
type Observation = (Vec<Vec<NodeId>>, Vec<bool>, Vec<(u64, u64)>);

/// Every observable of the adjacency structure, gathered through the
/// public API only.
fn observe(topo: &Topology) -> Observation {
    let neighbors: Vec<Vec<NodeId>> =
        (0..topo.len()).map(|i| topo.neighbors(NodeId(i as u32)).to_vec()).collect();
    let alive: Vec<bool> = (0..topo.len()).map(|i| topo.is_alive(NodeId(i as u32))).collect();
    let positions: Vec<(u64, u64)> = (0..topo.len())
        .map(|i| {
            let p = topo.position(NodeId(i as u32));
            (p.x.to_bits(), p.y.to_bits())
        })
        .collect();
    (neighbors, alive, positions)
}

/// An interleaved churn script: deaths, a join, moves, more deaths —
/// exercising overlay-on-overlay patching before any compaction.
fn churn_script(topo_len: usize) -> (Vec<NodeId>, Point, NodeId, Point, Vec<NodeId>) {
    let first_deaths = vec![NodeId(3), NodeId(17), NodeId((topo_len - 2) as u32)];
    let join_at = Point::new(55.0, 47.0);
    let mover = NodeId(40);
    let move_to = Point::new(12.0, 93.0);
    let second_deaths = vec![NodeId(8), NodeId(41)];
    (first_deaths, join_at, mover, move_to, second_deaths)
}

/// Applies the script with the in-place mutators; compacts iff `compact`.
fn churn_in_place(base: &Topology, compact: bool) -> Topology {
    let mut topo = base.clone();
    let (first, join_at, mover, move_to, second) = churn_script(base.len());
    topo.fail_nodes(&first);
    let joined = topo.add_node(join_at);
    topo.move_node(mover, move_to);
    topo.move_node(joined, Point::new(56.0, 48.5));
    topo.fail_nodes(&second);
    if compact {
        topo.compact();
        assert_eq!(topo.patched_rows(), 0, "compaction must retire the overlay");
    }
    topo
}

/// Applies the same script with the persistent clone-per-change methods.
fn churn_persistent(base: &Topology) -> Topology {
    let (first, join_at, mover, move_to, second) = churn_script(base.len());
    let topo = base.without_nodes(&first);
    let (topo, joined) = topo.with_node(join_at);
    let topo = topo.with_moved_node(mover, move_to);
    let topo = topo.with_moved_node(joined, Point::new(56.0, 48.5));
    topo.without_nodes(&second)
}

#[test]
fn neighbor_tables_match_brute_force_after_churn() {
    let (base, _) = connected(31);
    for topo in [churn_in_place(&base, false), churn_in_place(&base, true)] {
        let range = topo.radio_range();
        for i in 0..topo.len() {
            let a = NodeId(i as u32);
            let row = topo.neighbors(a);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {a} not sorted/deduped");
            for j in 0..topo.len() {
                let b = NodeId(j as u32);
                let expected = i != j
                    && topo.is_alive(a)
                    && topo.is_alive(b)
                    && topo.position(a).distance(topo.position(b)) <= range;
                assert_eq!(
                    row.contains(&b),
                    expected,
                    "adjacency({a}, {b}) diverges from the unit-disk rule"
                );
            }
        }
    }
}

#[test]
fn in_place_and_persistent_churn_are_observationally_identical() {
    let (base, _) = connected(33);
    let persistent = churn_persistent(&base);
    for (label, topo) in
        [("patched", churn_in_place(&base, false)), ("compacted", churn_in_place(&base, true))]
    {
        assert_eq!(observe(&topo), observe(&persistent), "{label} arena diverges");
        assert_eq!(topo.alive_count(), persistent.alive_count());
        assert_eq!(topo.bounds(), persistent.bounds());
        assert_eq!(topo.largest_component(), persistent.largest_component());
    }
}

#[test]
fn gpsr_routes_survive_overlay_and_compaction_unchanged() {
    let (base, _) = connected(35);
    let patched = churn_in_place(&base, false);
    let compacted = churn_in_place(&base, true);
    let reference = churn_persistent(&base);
    for planarization in [Planarization::Gabriel, Planarization::RelativeNeighborhood] {
        let gpsr_ref = Gpsr::new(&reference, planarization);
        let gpsr_patched = Gpsr::new(&patched, planarization);
        let gpsr_compacted = Gpsr::new(&compacted, planarization);
        let members = reference.largest_component_members();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..60 {
            let from = members[rng.gen_range(0..members.len())];
            let to = members[rng.gen_range(0..members.len())];
            let want = gpsr_ref.route_to_node(&reference, from, to);
            let got_patched = gpsr_patched.route_to_node(&patched, from, to);
            let got_compacted = gpsr_compacted.route_to_node(&compacted, from, to);
            match (&want, &got_patched, &got_compacted) {
                (Ok(w), Ok(p), Ok(c)) => {
                    assert_eq!(w.path, p.path, "{planarization:?}: patched route diverges");
                    assert_eq!(w.path, c.path, "{planarization:?}: compacted route diverges");
                }
                (Err(w), Err(p), Err(c)) => {
                    assert_eq!(w, p);
                    assert_eq!(w, c);
                }
                other => panic!("{planarization:?}: route outcomes diverge: {other:?}"),
            }
        }
    }
}

/// End to end: a fig6-style workload over a churned-then-compacted arena
/// charges the exact same ledger as the same workload over the persistent
/// representation — message accounting cannot see the arena rewrite.
#[test]
fn ledger_totals_identical_across_representations() {
    let (base, field) = connected(37);
    let compacted = churn_in_place(&base, true);
    let reference = churn_persistent(&base);

    let run = |topo: Topology| {
        let config = PoolConfig::paper().with_dims(3).with_seed(5);
        let mut pool = PoolSystem::build(topo, field, config).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
        let members = pool.topology().largest_component_members();
        for _ in 0..300 {
            let src = members[rng.gen_range(0..members.len())];
            let event = generator.generate(&mut rng);
            pool.insert_from(src, event).unwrap();
        }
        let mut results = Vec::new();
        for _ in 0..40 {
            let sink = members[rng.gen_range(0..members.len())];
            let query = exact_query(&mut rng, 3, RangeSizeDistribution::Exponential { mean: 0.1 });
            let r = pool.query_from(sink, &query).unwrap();
            results.push((r.events.len(), r.cost.forward_messages, r.cost.reply_messages));
        }
        (results, pool.transport().ledger().clone())
    };

    let (results_a, ledger_a) = run(compacted);
    let (results_b, ledger_b) = run(reference);
    assert_eq!(results_a, results_b, "query outcomes diverge across representations");
    assert_eq!(ledger_a, ledger_b, "ledgers diverge across representations");
}
