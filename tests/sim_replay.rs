//! Ground-truth validation of the latency ledger: GPSR routes are replayed
//! through the transport's delivery path, and both ledgers — the message
//! ledger and the virtual clock — must agree with analytically computed
//! per-hop expectations. This replaces the old callback-simulator replay:
//! the [`pool_dcs::netsim::schedule::EventQueue`]-backed clock is now the
//! clock of record, so the analytic cross-check targets it directly.

use pool_dcs::gpsr::{Gpsr, Planarization};
use pool_dcs::netsim::{Deployment, NodeId, Topology};
use pool_dcs::transport::{
    LatencyModel, LossyConfig, LossyTransport, TrafficLayer, Transport, TransportKind,
};
use std::collections::HashMap;

fn connected_topology(n: usize, mut seed: u64) -> Topology {
    loop {
        let dep = Deployment::paper_setting(n, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            return topo;
        }
        seed += 1;
    }
}

/// Per-hop cost of one serial delivery: every hop pays the sender's
/// service time plus the link propagation latency.
fn serial_leg_seconds(hops: usize, model: LatencyModel) -> f64 {
    hops as f64 * (model.service_time + model.hop_latency)
}

#[test]
fn gpsr_paths_replay_exactly_through_the_transport() {
    let topo = connected_topology(300, 42);
    let gpsr = Gpsr::new(&topo, Planarization::Gabriel);

    // Compute 40 routes analytically.
    let mut routes = Vec::new();
    for i in 0..40u32 {
        let from = NodeId(i * 7 % 300);
        let to = NodeId((i * 31 + 5) % 300);
        routes.push(gpsr.route_to_node(&topo, from, to).unwrap());
    }
    let expected_hops: u64 = routes.iter().map(|r| r.hops() as u64).sum();

    // Replay them through the transport's delivery path. Deliveries are
    // serial, so each one must cost exactly hops * (service + latency) of
    // virtual time and charge exactly one message per hop.
    let mut transport = TransportKind::Gpsr.build(&topo, Planarization::Gabriel);
    let model = transport.clock().model();
    for route in &routes {
        let before = transport.clock().now();
        let outcome = transport.deliver(&topo, &route.path, TrafficLayer::Forward);
        assert!(outcome.delivered, "loss-free transport delivers every packet");
        assert_eq!(outcome.reached, route.delivered);
        assert_eq!(outcome.transmissions, route.hops() as u64);
        let expected = serial_leg_seconds(route.hops(), model);
        assert!(
            (outcome.latency - expected).abs() < 1e-9,
            "latency {} vs analytic {expected} for a {}-hop route",
            outcome.latency,
            route.hops()
        );
        assert!(
            (transport.clock().now() - before - outcome.latency).abs() < 1e-9,
            "the clock of record must advance by exactly the reported latency"
        );
    }

    assert_eq!(
        transport.ledger().total_messages(),
        expected_hops,
        "message ledger must equal the analytic hop count"
    );
    let clock_tx: u64 = transport.clock().tx_counts().iter().sum();
    assert_eq!(clock_tx, expected_hops, "clock transmission counts must match the ledger");
}

#[test]
fn per_node_loads_match_between_ledgers() {
    let topo = connected_topology(200, 9);
    let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
    let mut analytic: HashMap<NodeId, u64> = HashMap::new();
    let mut routes = Vec::new();
    for i in 0..25u32 {
        let route = gpsr.route_to_node(&topo, NodeId(i), NodeId(199 - i)).unwrap();
        for w in route.path.windows(2) {
            if w[0] != w[1] {
                *analytic.entry(w[0]).or_insert(0) += 1;
            }
        }
        routes.push(route);
    }
    let mut transport = TransportKind::Gpsr.build(&topo, Planarization::Gabriel);
    for route in &routes {
        transport.deliver(&topo, &route.path, TrafficLayer::Forward);
    }
    // Sender-side loads must agree across three independent books: the
    // analytic count, the message ledger, and the clock's per-node
    // transmit/busy-time accounting.
    let service = transport.clock().model().service_time;
    for (node, &count) in &analytic {
        assert_eq!(transport.ledger().node_load(*node), count, "ledger mismatch at {node}");
        assert_eq!(
            transport.clock().tx_counts()[node.index()],
            count,
            "clock tx mismatch at {node}"
        );
        let busy = transport.clock().busy_time(*node);
        assert!(
            (busy - count as f64 * service).abs() < 1e-9,
            "busy time {busy} at {node} vs {count} transmissions"
        );
    }
}

#[test]
fn reply_fanout_makespan_matches_the_pipeline_formula() {
    let topo = connected_topology(300, 42);
    let mut transport = TransportKind::Gpsr.build(&topo, Planarization::Gabriel);
    let route = transport.route_to_node(&topo, NodeId(3), NodeId(250)).unwrap();
    let hops = route.path.len() - 1;
    assert!(hops >= 2, "need a multi-hop route for the pipeline to matter");

    // All copies retrace the same reversed path, so every sender is shared:
    // the fan-out pipelines, and the makespan is one full leg plus one
    // service slot per extra copy — strictly less than the serial sum.
    let copies = 5u64;
    let model = transport.clock().model();
    let before = transport.clock().now();
    let rev = transport.deliver_reverse(&topo, &route.path, copies, TrafficLayer::Reply);
    assert_eq!(rev.delivered_copies, copies);
    assert_eq!(rev.transmissions, copies * hops as u64);
    let expected = serial_leg_seconds(hops, model) + (copies - 1) as f64 * model.service_time;
    assert!(
        (rev.latency - expected).abs() < 1e-9,
        "fan-out makespan {} vs pipeline formula {expected}",
        rev.latency
    );
    assert!(rev.latency < copies as f64 * serial_leg_seconds(hops, model));
    assert!((transport.clock().now() - before - rev.latency).abs() < 1e-9);
}

#[test]
fn lossy_retransmissions_pay_virtual_time_and_stay_conserved() {
    let topo = connected_topology(250, 7);
    let inner = TransportKind::Gpsr.build(&topo, Planarization::Gabriel);
    let mut transport = LossyTransport::wrap(inner, LossyConfig::fixed(0.7, 99));
    let model = transport.clock().model();

    let mut loss_free = 0.0;
    for i in 0..30u32 {
        let route = transport.route_to_node(&topo, NodeId(i * 5 % 250), NodeId(249 - i)).unwrap();
        let path = route.path.clone();
        let before = transport.clock().now();
        let outcome = transport.deliver(&topo, &path, TrafficLayer::Forward);
        assert!(
            (transport.clock().now() - before - outcome.latency).abs() < 1e-9,
            "clock advance must equal the reported latency even under ARQ"
        );
        if outcome.delivered {
            let floor = serial_leg_seconds(path.len() - 1, model);
            assert!(
                outcome.latency >= floor - 1e-9,
                "a delivered packet cannot beat the loss-free time"
            );
            if outcome.retransmissions > 0 {
                assert!(outcome.latency > floor, "retransmissions must cost extra time");
            }
        }
        loss_free += serial_leg_seconds(path.len() - 1, model);
    }

    let stats = transport.delivery_stats();
    assert!(stats.retransmissions > 0, "p=0.7 over 30 multi-hop routes must drop something");
    assert!(
        transport.clock().now() > loss_free,
        "total virtual time must exceed the loss-free floor once ARQ kicks in"
    );
    // Conservation: every transmission the clock timed is in the message
    // ledger, and every second of busy time maps to a timed transmission.
    let clock_tx: u64 = transport.clock().tx_counts().iter().sum();
    assert_eq!(clock_tx, transport.ledger().total_messages());
    let busy: f64 = transport.clock().busy_times().iter().sum();
    assert!((busy - clock_tx as f64 * model.service_time).abs() < 1e-6);
}
