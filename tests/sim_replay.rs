//! Ground-truth validation of the analytic cost accounting: GPSR routes
//! are replayed hop by hop inside the discrete-event simulator, whose
//! strict radio model (neighbors-only sends) and independent traffic
//! ledger must agree with the analytically computed paths.

use pool_dcs::gpsr::{Gpsr, Planarization};
use pool_dcs::netsim::sim::{Context, Protocol, Simulator};
use pool_dcs::netsim::{Deployment, NodeId, Topology};
use std::collections::HashMap;

/// A source-routing protocol: each packet carries the precomputed GPSR
/// path and every node forwards to the next hop listed.
struct SourceRouted {
    delivered: Vec<(usize, NodeId, usize)>,
}

#[derive(Clone)]
struct Packet {
    id: usize,
    path: Vec<NodeId>,
    cursor: usize,
}

impl Protocol for SourceRouted {
    type Message = Packet;
    fn on_message(&mut self, ctx: &mut Context<Packet>, at: NodeId, mut msg: Packet) {
        assert_eq!(msg.path[msg.cursor], at, "packet at the wrong node");
        if msg.cursor + 1 == msg.path.len() {
            self.delivered.push((msg.id, at, msg.cursor));
            return;
        }
        let next = msg.path[msg.cursor + 1];
        msg.cursor += 1;
        ctx.send(at, next, msg);
    }
}

fn connected_topology(n: usize, mut seed: u64) -> Topology {
    loop {
        let dep = Deployment::paper_setting(n, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            return topo;
        }
        seed += 1;
    }
}

#[test]
fn gpsr_paths_replay_exactly_in_the_simulator() {
    let topo = connected_topology(300, 42);
    let gpsr = Gpsr::new(&topo, Planarization::Gabriel);

    // Compute 40 routes analytically.
    let mut routes = Vec::new();
    for i in 0..40u32 {
        let from = NodeId(i * 7 % 300);
        let to = NodeId((i * 31 + 5) % 300);
        routes.push(gpsr.route_to_node(&topo, from, to).unwrap());
    }
    let expected_hops: u64 = routes.iter().map(|r| r.hops() as u64).sum();

    // Replay them through the strict discrete-event radio model.
    let mut sim = Simulator::new(topo, SourceRouted { delivered: Vec::new() });
    for (id, route) in routes.iter().enumerate() {
        let start = route.path[0];
        sim.inject(start, Packet { id, path: route.path.clone(), cursor: 0 });
    }
    sim.run().expect("all sends are between radio neighbors");

    assert_eq!(sim.protocol().delivered.len(), routes.len(), "every packet delivered");
    assert_eq!(
        sim.traffic().total_messages(),
        expected_hops,
        "simulator ledger must equal analytic hop count"
    );
    // Deliveries complete in time order, not injection order: match by id.
    for &(id, at, hops) in &sim.protocol().delivered {
        assert_eq!(at, routes[id].delivered);
        assert_eq!(hops, routes[id].hops());
    }
}

#[test]
fn per_node_loads_match_between_ledgers() {
    let topo = connected_topology(200, 9);
    let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
    let mut analytic: HashMap<NodeId, u64> = HashMap::new();
    let mut routes = Vec::new();
    for i in 0..25u32 {
        let route = gpsr.route_to_node(&topo, NodeId(i), NodeId(199 - i)).unwrap();
        for w in route.path.windows(2) {
            if w[0] != w[1] {
                *analytic.entry(w[0]).or_insert(0) += 1;
            }
        }
        routes.push(route);
    }
    let mut sim = Simulator::new(topo, SourceRouted { delivered: Vec::new() });
    for (id, route) in routes.iter().enumerate() {
        sim.inject(route.path[0], Packet { id, path: route.path.clone(), cursor: 0 });
    }
    sim.run().unwrap();
    for (node, &count) in &analytic {
        assert_eq!(sim.traffic().load(*node), count, "load mismatch at {node}");
    }
}
