//! Scratch test for review — delete me.
use pool_dcs::core::config::SharingPolicy;
use pool_dcs::core::dynamics::{ChurnConfig, ChurnPlanner, EpochPlan, RepairQueue};
use pool_dcs::core::{PoolConfig, PoolSystem};
use pool_dcs::netsim::{Deployment, NodeId, Rect, Topology};
use pool_dcs::workloads::events::{EventDistribution, EventGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 300;

fn connected(mut seed: u64) -> (Topology, Rect) {
    loop {
        let dep = Deployment::paper_setting(NODES, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            return (topo, dep.field());
        }
        seed += 4096;
    }
}

fn full_config(seed: u64) -> PoolConfig {
    PoolConfig::paper().with_seed(seed).with_sharing(SharingPolicy::new(8)).with_replication()
}

#[test]
fn backup_task_duplication() {
    let (topo, field) = connected(107);
    let mut pool = PoolSystem::build(topo, field, full_config(107)).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
    for _ in 0..90 {
        let src = NodeId(rng.gen_range(0..NODES as u32));
        pool.insert_from(src, generator.generate(&mut rng)).unwrap();
    }
    // One churn epoch, budget 0 so Backup tasks queue.
    let mut planner = ChurnPlanner::new(ChurnConfig::new(0).with_rates(2, 3, 2));
    let mut queue = RepairQueue::default();
    let plan = planner.plan(pool.topology(), pool.field());
    pool.apply_epoch(&plan, &mut queue, 0).unwrap();
    println!("after churn epoch: queue={}", queue.len());
    // Now repair-only epochs, still budget 0: queue must stay constant.
    for i in 0..4 {
        pool.apply_epoch(&EpochPlan::empty(), &mut queue, 0).unwrap();
        println!("idle epoch {i}: queue={}", queue.len());
    }
}
