//! The geographic hash table: put/get of keyed values at home nodes.
//!
//! The home node of a key is the node where a GPSR packet addressed to the
//! key's hashed location is delivered. `Put` routes the value there and the
//! home node stores it; `Get` routes a request there and the stored values
//! travel back along the reverse path. All routing, charging, and virtual
//! timing goes through a caller-provided [`Transport`], so experiments can
//! compare GHT's per-layer costs and latencies with Pool's and DIM's on
//! the same ledger and clock. Operations travel as real deliveries: on a
//! lossy radio a put whose packet dies stores nothing, and every ARQ
//! retransmission pays its own virtual time.

use crate::hash::hash_to_location;
use pool_gpsr::router::RouteError;
use pool_gpsr::Route;
use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use pool_transport::{DeliveryOutcome, OpRetryPolicy, TrafficLayer, Transport};
use std::collections::HashMap;
use std::sync::Arc;

/// Receipt for one GHT operation (put or get).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GhtReceipt {
    /// The home node the operation targeted.
    pub home: NodeId,
    /// Radio messages charged (first attempts + ARQ retransmissions).
    pub messages: u64,
    /// Virtual time the operation took, in seconds.
    pub elapsed: f64,
    /// Whether every leg of the operation fully delivered (always `true`
    /// on a loss-free radio).
    pub delivered: bool,
}

/// A geographic hash table over one deployed network.
///
/// The table owns the per-node key→values storage; routing and message
/// accounting are delegated to a caller-provided [`Transport`] over the
/// same topology.
///
/// # Examples
///
/// ```
/// use pool_ght::GhtTable;
/// use pool_gpsr::Planarization;
/// use pool_netsim::deployment::Deployment;
/// use pool_netsim::topology::Topology;
/// use pool_transport::TransportKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let deployment = Deployment::paper_setting(300, 40.0, 20.0, 9)?;
/// let topology = Topology::build(deployment.nodes(), 40.0)?;
/// let mut transport = TransportKind::Gpsr.build(&topology, Planarization::Gabriel);
/// let mut ght = GhtTable::new(&topology);
/// let sensor = topology.nodes()[5].id;
///
/// let put = ght.put(&topology, transport.as_mut(), sensor, "fire-alarm", 451.0)?;
/// assert!(put.delivered && put.elapsed > 0.0);
/// let (values, _receipt) = ght.get(&topology, transport.as_mut(), sensor, "fire-alarm")?;
/// assert_eq!(values, vec![451.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GhtTable<V> {
    /// Per-node storage: node index → key → values.
    pub(crate) storage: Vec<HashMap<String, Vec<V>>>,
}

impl<V: Clone> GhtTable<V> {
    /// Creates an empty table sized for `topology`.
    pub fn new(topology: &Topology) -> Self {
        GhtTable { storage: vec![HashMap::new(); topology.len()] }
    }

    /// The home node of `key`: where a packet addressed to the key's hashed
    /// location is delivered from `from`.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn home_node(
        &self,
        topology: &Topology,
        transport: &mut dyn Transport,
        from: NodeId,
        key: &str,
    ) -> Result<NodeId, RouteError> {
        let loc = self.key_location(topology, key);
        Ok(transport.route_to_location(topology, from, loc)?.delivered)
    }

    /// The hashed location of `key` in this network's field.
    pub fn key_location(&self, topology: &Topology, key: &str) -> Point {
        hash_to_location(key.as_bytes(), topology.bounds())
    }

    /// Stores `value` under `key`, routing from the detecting node `from`
    /// to the key's home node as a real delivery charged under
    /// [`TrafficLayer::Insert`]. On a lossy radio a put whose packet dies
    /// en route stores nothing (the transmissions stay charged — the radio
    /// sent them); the receipt's [`GhtReceipt::delivered`] says which.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn put(
        &mut self,
        topology: &Topology,
        transport: &mut dyn Transport,
        from: NodeId,
        key: &str,
        value: V,
    ) -> Result<GhtReceipt, RouteError> {
        let loc = self.key_location(topology, key);
        let route = transport.route_to_location(topology, from, loc)?;
        let outcome = transport.deliver(topology, &route.path, TrafficLayer::Insert);
        if outcome.delivered {
            self.storage[route.delivered.index()].entry(key.to_owned()).or_default().push(value);
        }
        Ok(GhtReceipt {
            home: route.delivered,
            messages: outcome.transmissions,
            elapsed: outcome.latency,
            delivered: outcome.delivered,
        })
    }

    /// Retrieves all values stored under `key`, issuing the request from
    /// `from`. Returns the values and a receipt (request charged under
    /// [`TrafficLayer::Forward`], response along the reverse path under
    /// [`TrafficLayer::Reply`]). On a lossy radio a dead request leg
    /// returns nothing, and a dead reply leg loses the answer in flight.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn get(
        &mut self,
        topology: &Topology,
        transport: &mut dyn Transport,
        from: NodeId,
        key: &str,
    ) -> Result<(Vec<V>, GhtReceipt), RouteError> {
        let loc = self.key_location(topology, key);
        let route = transport.route_to_location(topology, from, loc)?;
        let fwd = transport.deliver(topology, &route.path, TrafficLayer::Forward);
        let mut receipt = GhtReceipt {
            home: route.delivered,
            messages: fwd.transmissions,
            elapsed: fwd.latency,
            delivered: fwd.delivered,
        };
        if !fwd.delivered {
            return Ok((Vec::new(), receipt));
        }
        let values = self.storage[route.delivered.index()].get(key).cloned().unwrap_or_default();
        if values.is_empty() {
            return Ok((values, receipt));
        }
        // The response retraces the query path back to the sink.
        let rev = transport.deliver_reverse(topology, &route.path, 1, TrafficLayer::Reply);
        receipt.messages += rev.transmissions;
        receipt.elapsed += rev.latency;
        receipt.delivered = rev.delivered_copies == 1;
        if receipt.delivered {
            Ok((values, receipt))
        } else {
            Ok((Vec::new(), receipt))
        }
    }

    /// [`GhtTable::put`] with bounded idempotent retry: when the packet
    /// dies en route, the operation re-routes to the *same* home node (the
    /// key's home is pinned by the first routing decision, so retries stay
    /// idempotent), detouring around the hop that just failed plus the
    /// transport's standing suspects when the policy allows. Every attempt
    /// is charged normally; the value is stored at most once.
    ///
    /// # Errors
    ///
    /// Propagates routing failures of the initial attempt.
    pub fn put_with_retry(
        &mut self,
        topology: &Topology,
        transport: &mut dyn Transport,
        from: NodeId,
        key: &str,
        value: V,
        policy: OpRetryPolicy,
    ) -> Result<GhtReceipt, RouteError> {
        let loc = self.key_location(topology, key);
        let route = transport.route_to_location(topology, from, loc)?;
        let home = route.delivered;
        let outcome = transport.deliver(topology, &route.path, TrafficLayer::Insert);
        let (outcome, _) = retry_delivery(
            topology,
            transport,
            outcome,
            route,
            from,
            home,
            TrafficLayer::Insert,
            policy,
        );
        if outcome.delivered {
            self.storage[home.index()].entry(key.to_owned()).or_default().push(value);
        }
        Ok(GhtReceipt {
            home,
            messages: outcome.transmissions,
            elapsed: outcome.latency,
            delivered: outcome.delivered,
        })
    }

    /// [`GhtTable::get`] with bounded idempotent retry: the request leg
    /// re-routes to the key's pinned home node around failed hops (when the
    /// policy detours), and a lost reply is re-sent along the request path
    /// the packet actually travelled. Reads are idempotent, so retries can
    /// only turn a missing answer into a delivered one.
    ///
    /// # Errors
    ///
    /// Propagates routing failures of the initial attempt.
    pub fn get_with_retry(
        &mut self,
        topology: &Topology,
        transport: &mut dyn Transport,
        from: NodeId,
        key: &str,
        policy: OpRetryPolicy,
    ) -> Result<(Vec<V>, GhtReceipt), RouteError> {
        let loc = self.key_location(topology, key);
        let route = transport.route_to_location(topology, from, loc)?;
        let home = route.delivered;
        let fwd = transport.deliver(topology, &route.path, TrafficLayer::Forward);
        let (fwd, used) = retry_delivery(
            topology,
            transport,
            fwd,
            route,
            from,
            home,
            TrafficLayer::Forward,
            policy,
        );
        let mut receipt = GhtReceipt {
            home,
            messages: fwd.transmissions,
            elapsed: fwd.latency,
            delivered: fwd.delivered,
        };
        if !fwd.delivered {
            return Ok((Vec::new(), receipt));
        }
        let values = self.storage[home.index()].get(key).cloned().unwrap_or_default();
        if values.is_empty() {
            return Ok((values, receipt));
        }
        // The response retraces the request path the packet actually
        // travelled (which already avoids any detoured-around node),
        // re-sending the single aggregated reply until it lands or the
        // budget runs out.
        let mut delivered = false;
        for _ in 0..=policy.attempts {
            let rev = transport.deliver_reverse(topology, &used.path, 1, TrafficLayer::Reply);
            receipt.messages += rev.transmissions;
            receipt.elapsed += rev.latency;
            if rev.delivered_copies == 1 {
                delivered = true;
                break;
            }
        }
        receipt.delivered = delivered;
        if delivered {
            Ok((values, receipt))
        } else {
            Ok((Vec::new(), receipt))
        }
    }

    /// Values stored at a specific node (diagnostics / load inspection).
    pub fn stored_at(&self, node: NodeId) -> usize {
        self.storage[node.index()].values().map(Vec::len).sum()
    }

    /// Total values stored in the whole network.
    pub fn total_stored(&self) -> usize {
        (0..self.storage.len()).map(|i| self.stored_at(NodeId(i as u32))).sum()
    }
}

/// Shared retry loop for GHT forward legs: re-delivers toward the pinned
/// `home` node up to `policy.attempts` extra times, recomputing a detour
/// route around the hop that just failed (plus the transport's standing
/// suspects) when the policy allows, or re-walking the same path otherwise.
/// Returns the aggregated outcome and the route last travelled.
#[allow(clippy::too_many_arguments)]
fn retry_delivery(
    topology: &Topology,
    transport: &mut dyn Transport,
    mut total: DeliveryOutcome,
    route: Arc<Route>,
    from: NodeId,
    home: NodeId,
    layer: TrafficLayer,
    policy: OpRetryPolicy,
) -> (DeliveryOutcome, Arc<Route>) {
    let mut used = route;
    let mut excluded: Vec<NodeId> = Vec::new();
    for _ in 0..policy.attempts {
        if total.delivered {
            break;
        }
        let Some((_, suspect)) = total.failed_hop else { break };
        let attempt_route = if policy.detour {
            if suspect != home && !excluded.contains(&suspect) {
                excluded.push(suspect);
            }
            match transport.route_to_node_avoiding(topology, from, home, &excluded) {
                Ok(r) => r,
                Err(_) => break,
            }
        } else {
            Arc::clone(&used)
        };
        let on_detour = policy.detour && !excluded.is_empty();
        let retry = transport.deliver(topology, &attempt_route.path, layer);
        total.transmissions += retry.transmissions;
        total.retransmissions += retry.retransmissions;
        total.latency += retry.latency;
        total.delivered = retry.delivered;
        total.reached = retry.reached;
        total.failed_hop = retry.failed_hop;
        total.detour = on_detour;
        used = attempt_route;
    }
    (total, used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_gpsr::Planarization;
    use pool_netsim::deployment::Deployment;
    use pool_transport::TransportKind;

    fn setup(seed: u64) -> (Topology, Box<dyn Transport>) {
        let dep = Deployment::paper_setting(200, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        assert!(topo.is_connected(), "seed {seed} produced a disconnected network");
        let transport = TransportKind::Gpsr.build(&topo, Planarization::Gabriel);
        (topo, transport)
    }

    #[test]
    fn put_then_get_roundtrips() {
        let (topo, mut t) = setup(100);
        let mut ght: GhtTable<u32> = GhtTable::new(&topo);
        ght.put(&topo, t.as_mut(), NodeId(0), "k", 1).unwrap();
        ght.put(&topo, t.as_mut(), NodeId(50), "k", 2).unwrap();
        let (values, _) = ght.get(&topo, t.as_mut(), NodeId(100), "k").unwrap();
        assert_eq!(values, vec![1, 2]);
    }

    #[test]
    fn different_sources_agree_on_home_node() {
        let (topo, mut t) = setup(101);
        let ght: GhtTable<u32> = GhtTable::new(&topo);
        let homes: Vec<NodeId> = [0u32, 17, 99, 150]
            .iter()
            .map(|&s| ght.home_node(&topo, t.as_mut(), NodeId(s), "shared-key").unwrap())
            .collect();
        assert!(homes.windows(2).all(|w| w[0] == w[1]), "homes differ: {homes:?}");
    }

    #[test]
    fn get_of_missing_key_is_empty_and_cheap() {
        let (topo, mut t) = setup(102);
        let mut ght: GhtTable<u32> = GhtTable::new(&topo);
        let before = t.ledger().total_messages();
        let (values, receipt) = ght.get(&topo, t.as_mut(), NodeId(3), "nothing-here").unwrap();
        assert!(values.is_empty());
        // Only the request path is charged when there is nothing to return.
        assert_eq!(t.ledger().total_messages() - before, receipt.messages);
        assert_eq!(t.ledger().layer_total(TrafficLayer::Reply), 0);
    }

    #[test]
    fn storage_lands_on_single_home_per_key() {
        let (topo, mut t) = setup(103);
        let mut ght: GhtTable<u8> = GhtTable::new(&topo);
        for src in 0..20u32 {
            ght.put(&topo, t.as_mut(), NodeId(src), "one-key", 0).unwrap();
        }
        assert_eq!(ght.total_stored(), 20);
        let loaded: Vec<usize> =
            (0..topo.len()).map(|i| ght.stored_at(NodeId(i as u32))).filter(|&c| c > 0).collect();
        assert_eq!(loaded, vec![20], "all copies must share one home node");
    }

    #[test]
    fn keys_spread_over_many_homes() {
        let (topo, mut t) = setup(104);
        let mut ght: GhtTable<u8> = GhtTable::new(&topo);
        for i in 0..60u32 {
            ght.put(&topo, t.as_mut(), NodeId(0), &format!("key-{i}"), 0).unwrap();
        }
        let homes = (0..topo.len()).filter(|&i| ght.stored_at(NodeId(i as u32)) > 0).count();
        assert!(homes > 30, "only {homes} distinct home nodes for 60 keys");
    }

    #[test]
    fn traffic_accumulates_hops() {
        let (topo, mut t) = setup(105);
        let mut ght: GhtTable<u8> = GhtTable::new(&topo);
        let receipt = ght.put(&topo, t.as_mut(), NodeId(0), "k", 9).unwrap();
        assert_eq!(t.ledger().total_messages(), receipt.messages);
        assert_eq!(t.ledger().layer_total(TrafficLayer::Insert), receipt.messages);
    }

    #[test]
    fn put_and_get_accrue_virtual_time() {
        let (topo, mut t) = setup(107);
        let mut ght: GhtTable<u8> = GhtTable::new(&topo);
        let put = ght.put(&topo, t.as_mut(), NodeId(0), "k", 9).unwrap();
        assert!(put.delivered);
        assert!(put.elapsed > 0.0, "a routed put takes virtual time");
        let before = t.clock().now();
        let (values, get) = ght.get(&topo, t.as_mut(), NodeId(120), "k").unwrap();
        assert_eq!(values, vec![9]);
        // Request plus reply both accrue; the clock advanced by exactly the
        // receipt's elapsed time (get legs are serial: ask, then answer).
        assert!((t.clock().now() - before - get.elapsed).abs() < 1e-12);
        assert!(get.elapsed > 0.0);
        assert!(t.ledger().layer_total(TrafficLayer::Reply) > 0, "the reply leg was charged");
    }

    #[test]
    fn cached_transport_preserves_ght_costs() {
        let (topo, mut plain) = setup(106);
        let mut cached = TransportKind::Cached.build(&topo, Planarization::Gabriel);
        let mut a: GhtTable<u8> = GhtTable::new(&topo);
        let mut b: GhtTable<u8> = GhtTable::new(&topo);
        for i in 0..10u32 {
            let key = format!("k{}", i % 3); // repeated keys exercise the memo
            let ra = a.put(&topo, plain.as_mut(), NodeId(i), &key, 1).unwrap();
            let rb = b.put(&topo, cached.as_mut(), NodeId(i), &key, 1).unwrap();
            assert_eq!(ra, rb, "cache hit must charge and time identically");
        }
        assert_eq!(plain.ledger(), cached.ledger());
    }
}
