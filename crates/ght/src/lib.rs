//! # pool-ght — Geographic Hash Table
//!
//! A from-scratch implementation of GHT (Ratnasamy et al., MONET 2003), the
//! data-centric storage scheme Pool uses to locate pool pivot cells ("Get
//! the pivot cell of `P_d1` through a distributed hash table", Algorithm 1)
//! and the classic baseline for point queries.
//!
//! * [`hash`] — deterministic key → location hashing (FNV-1a based).
//! * [`table`] — put/get at home nodes over a pluggable
//!   [`pool_transport::Transport`], with per-layer message accounting.
//! * [`churn`] — epoch-stepped joins/deaths/moves with budgeted re-homing
//!   of keys whose home node changed (pool-core-free by design).
//!
//! # Examples
//!
//! ```
//! use pool_ght::hash::hash_to_location;
//! use pool_netsim::geometry::Rect;
//!
//! let field = Rect::square(500.0);
//! let home = hash_to_location(b"pool-pivot-1", field);
//! assert!(field.contains(home));
//! ```

#![warn(missing_docs)]

pub mod churn;
pub mod hash;
pub mod replication;
pub mod table;

pub use churn::{GhtChurnReport, GhtRepairQueue};
pub use replication::{ReplicatedGht, ReplicatedReceipt};
pub use table::{GhtReceipt, GhtTable};
