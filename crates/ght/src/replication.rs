//! Structured replication (GHT §4.3 / Ratnasamy et al.): store copies of a
//! key at `2^d` deterministic mirror locations so hot keys spread load and
//! survive home-node failures.
//!
//! Replica `r` of key `K` lives at `hash(K ‖ r)`; a `get` can consult any
//! subset of mirrors. Readers that need *all* values must query every
//! mirror; readers that need *any* value stop at the first non-empty one.

use crate::hash::hash_to_replica_location;
use crate::table::GhtTable;
use pool_gpsr::router::{Gpsr, RouteError};
use pool_netsim::node::NodeId;
use pool_netsim::stats::TrafficStats;
use pool_netsim::topology::Topology;
use std::collections::HashMap;

/// A geographic hash table with structured replication.
///
/// # Examples
///
/// ```
/// use pool_ght::replication::ReplicatedGht;
/// use pool_gpsr::{Gpsr, Planarization};
/// use pool_netsim::deployment::Deployment;
/// use pool_netsim::topology::Topology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let deployment = Deployment::paper_setting(300, 40.0, 20.0, 31)?;
/// let topology = Topology::build(deployment.nodes(), 40.0)?;
/// let gpsr = Gpsr::new(&topology, Planarization::Gabriel);
/// let mut ght = ReplicatedGht::new(&topology, 2); // 2 mirrors per key
/// let node = topology.nodes()[7].id;
/// ght.put(&topology, &gpsr, node, "alarm", 1u32)?;
/// let (values, _) = ght.get_any(&topology, &gpsr, node, "alarm")?;
/// assert_eq!(values, vec![1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedGht<V> {
    replicas: u32,
    storage: Vec<HashMap<String, Vec<V>>>,
    traffic: TrafficStats,
}

impl<V: Clone> ReplicatedGht<V> {
    /// Creates a table storing each key at `replicas` mirror locations.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn new(topology: &Topology, replicas: u32) -> Self {
        assert!(replicas > 0, "need at least one replica");
        ReplicatedGht {
            replicas,
            storage: vec![HashMap::new(); topology.len()],
            traffic: TrafficStats::new(topology.len()),
        }
    }

    /// Number of mirrors per key.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// The home node of replica `r` of `key`, routed from `from`.
    fn replica_home(
        &self,
        topology: &Topology,
        gpsr: &Gpsr,
        from: NodeId,
        key: &str,
        r: u32,
    ) -> Result<(NodeId, usize), RouteError> {
        let loc = hash_to_replica_location(key.as_bytes(), r, topology.bounds());
        let route = gpsr.route(topology, from, loc)?;
        Ok((route.delivered, route.hops()))
    }

    /// Stores `value` at *every* mirror of `key` (full write fan-out).
    /// Returns the total hops charged.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn put(
        &mut self,
        topology: &Topology,
        gpsr: &Gpsr,
        from: NodeId,
        key: &str,
        value: V,
    ) -> Result<usize, RouteError> {
        let mut hops = 0;
        for r in 0..self.replicas {
            let loc = hash_to_replica_location(key.as_bytes(), r, topology.bounds());
            let route = gpsr.route(topology, from, loc)?;
            self.traffic.record_path(&route.path);
            hops += route.hops();
            self.storage[route.delivered.index()]
                .entry(key.to_owned())
                .or_default()
                .push(value.clone());
        }
        Ok(hops)
    }

    /// Reads the *nearest responsive* mirror: mirrors are tried in replica
    /// order and the first holding any value answers. Returns the values
    /// and total hops (request legs plus the answering mirror's reply).
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn get_any(
        &mut self,
        topology: &Topology,
        gpsr: &Gpsr,
        from: NodeId,
        key: &str,
    ) -> Result<(Vec<V>, usize), RouteError> {
        let mut hops = 0;
        for r in 0..self.replicas {
            let (home, leg) = self.replica_home(topology, gpsr, from, key, r)?;
            hops += leg;
            let values = self.storage[home.index()].get(key).cloned().unwrap_or_default();
            // Request leg is always charged.
            let loc = hash_to_replica_location(key.as_bytes(), r, topology.bounds());
            let route = gpsr.route(topology, from, loc)?;
            self.traffic.record_path(&route.path);
            if !values.is_empty() {
                let mut back = route.path.clone();
                back.reverse();
                self.traffic.record_path(&back);
                hops += back.len() - 1;
                return Ok((values, hops));
            }
        }
        Ok((Vec::new(), hops))
    }

    /// Values held at `node` (load inspection).
    pub fn stored_at(&self, node: NodeId) -> usize {
        self.storage[node.index()].values().map(Vec::len).sum()
    }

    /// The traffic ledger.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }
}

/// Convenience: promotes a plain [`GhtTable`] comparison — how many extra
/// messages replication costs per put at this network size.
pub fn replication_overhead<V: Clone>(
    topology: &Topology,
    gpsr: &Gpsr,
    from: NodeId,
    key: &str,
    value: V,
    replicas: u32,
) -> Result<(usize, usize), RouteError> {
    let mut plain: GhtTable<V> = GhtTable::new(topology);
    let plain_hops = plain.put(topology, gpsr, from, key, value.clone())?;
    let mut replicated: ReplicatedGht<V> = ReplicatedGht::new(topology, replicas);
    let replicated_hops = replicated.put(topology, gpsr, from, key, value)?;
    Ok((plain_hops, replicated_hops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_gpsr::Planarization;
    use pool_netsim::deployment::Deployment;

    fn setup(seed: u64) -> (Topology, Gpsr) {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(250, 40.0, 20.0, s).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
                return (topo, gpsr);
            }
            s += 1;
        }
    }

    #[test]
    fn put_reaches_all_mirrors() {
        let (topo, gpsr) = setup(1);
        let mut ght: ReplicatedGht<u8> = ReplicatedGht::new(&topo, 4);
        ght.put(&topo, &gpsr, NodeId(0), "k", 7).unwrap();
        let holders = (0..topo.len())
            .filter(|&i| ght.stored_at(NodeId(i as u32)) > 0)
            .count();
        // Mirrors land at distinct locations; occasionally two may share a
        // home node, but most must be distinct.
        assert!(holders >= 3, "only {holders} distinct mirror homes");
    }

    #[test]
    fn get_any_finds_a_value() {
        let (topo, gpsr) = setup(2);
        let mut ght: ReplicatedGht<u8> = ReplicatedGht::new(&topo, 3);
        ght.put(&topo, &gpsr, NodeId(5), "sensor-type", 9).unwrap();
        let (values, hops) = ght.get_any(&topo, &gpsr, NodeId(200), "sensor-type").unwrap();
        assert_eq!(values, vec![9]);
        assert!(hops > 0);
    }

    #[test]
    fn missing_key_returns_empty_after_trying_all_mirrors() {
        let (topo, gpsr) = setup(3);
        let mut ght: ReplicatedGht<u8> = ReplicatedGht::new(&topo, 3);
        let (values, hops) = ght.get_any(&topo, &gpsr, NodeId(10), "nope").unwrap();
        assert!(values.is_empty());
        assert!(hops > 0, "all three mirrors were consulted");
    }

    #[test]
    fn replication_costs_scale_with_mirror_count() {
        let (topo, gpsr) = setup(4);
        let (plain, replicated) =
            replication_overhead(&topo, &gpsr, NodeId(0), "hot-key", 1u8, 4).unwrap();
        assert!(replicated > plain, "4 mirrors ({replicated}) vs 1 home ({plain})");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let (topo, _) = setup(5);
        let _: ReplicatedGht<u8> = ReplicatedGht::new(&topo, 0);
    }
}
