//! Structured replication (GHT §4.3 / Ratnasamy et al.): store copies of a
//! key at `2^d` deterministic mirror locations so hot keys spread load and
//! survive home-node failures.
//!
//! Replica `r` of key `K` lives at `hash(K ‖ r)`; a `get` can consult any
//! subset of mirrors. Readers that need *all* values must query every
//! mirror; readers that need *any* value stop at the first non-empty one.

use crate::hash::hash_to_replica_location;
use crate::table::GhtTable;
use pool_gpsr::router::RouteError;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use pool_transport::{TrafficLayer, Transport};
use std::collections::HashMap;

/// Receipt for one replicated-GHT operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicatedReceipt {
    /// Radio messages charged across every mirror leg.
    pub messages: u64,
    /// Virtual time the operation took, in seconds. Mirror writes fan out
    /// concurrently (they serialize only on the writer's radio), so a put's
    /// elapsed time is the slowest mirror leg, not the leg sum; `get_any`
    /// probes mirrors serially, so its elapsed time is the probe sum.
    pub elapsed: f64,
    /// Mirrors whose leg fully delivered (equals the replica count for a
    /// put on a loss-free radio; for `get_any`, the probes that answered).
    pub mirrors_reached: u32,
}

/// A geographic hash table with structured replication.
///
/// # Examples
///
/// ```
/// use pool_ght::replication::ReplicatedGht;
/// use pool_gpsr::Planarization;
/// use pool_netsim::deployment::Deployment;
/// use pool_netsim::topology::Topology;
/// use pool_transport::TransportKind;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let deployment = Deployment::paper_setting(300, 40.0, 20.0, 31)?;
/// let topology = Topology::build(deployment.nodes(), 40.0)?;
/// let mut transport = TransportKind::Gpsr.build(&topology, Planarization::Gabriel);
/// let mut ght = ReplicatedGht::new(&topology, 2); // 2 mirrors per key
/// let node = topology.nodes()[7].id;
/// ght.put(&topology, transport.as_mut(), node, "alarm", 1u32)?;
/// let (values, _) = ght.get_any(&topology, transport.as_mut(), node, "alarm")?;
/// assert_eq!(values, vec![1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReplicatedGht<V> {
    replicas: u32,
    storage: Vec<HashMap<String, Vec<V>>>,
}

impl<V: Clone> ReplicatedGht<V> {
    /// Creates a table storing each key at `replicas` mirror locations.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn new(topology: &Topology, replicas: u32) -> Self {
        assert!(replicas > 0, "need at least one replica");
        ReplicatedGht { replicas, storage: vec![HashMap::new(); topology.len()] }
    }

    /// Number of mirrors per key.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// Stores `value` at *every* mirror of `key` (full write fan-out).
    /// The primary copy (replica 0) is charged under
    /// [`TrafficLayer::Insert`]; additional mirrors under
    /// [`TrafficLayer::Replication`]. The mirror writes launch together —
    /// in virtual time they overlap (serializing only on the writer's
    /// radio), so the receipt's elapsed time is the slowest mirror leg.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn put(
        &mut self,
        topology: &Topology,
        transport: &mut dyn Transport,
        from: NodeId,
        key: &str,
        value: V,
    ) -> Result<ReplicatedReceipt, RouteError> {
        let op_start = transport.clock().now();
        let mut op_end = op_start;
        let mut messages = 0;
        let mut mirrors_reached = 0;
        for r in 0..self.replicas {
            transport.clock_mut().seek(op_start);
            let loc = hash_to_replica_location(key.as_bytes(), r, topology.bounds());
            let route = transport.route_to_location(topology, from, loc)?;
            let layer = if r == 0 { TrafficLayer::Insert } else { TrafficLayer::Replication };
            let outcome = transport.deliver(topology, &route.path, layer);
            messages += outcome.transmissions;
            if outcome.delivered {
                mirrors_reached += 1;
                self.storage[route.delivered.index()]
                    .entry(key.to_owned())
                    .or_default()
                    .push(value.clone());
            }
            op_end = op_end.max(transport.clock().now());
        }
        transport.clock_mut().seek(op_end);
        Ok(ReplicatedReceipt { messages, elapsed: op_end - op_start, mirrors_reached })
    }

    /// Reads the *nearest responsive* mirror: mirrors are tried in replica
    /// order and the first holding any value answers. Returns the values
    /// and a receipt (request legs under [`TrafficLayer::Forward`], plus
    /// the answering mirror's reply under [`TrafficLayer::Reply`]). The
    /// probes are inherently serial — each launches only after the previous
    /// mirror came up empty — so the elapsed time is the probe sum.
    ///
    /// # Errors
    ///
    /// Propagates routing failures.
    pub fn get_any(
        &mut self,
        topology: &Topology,
        transport: &mut dyn Transport,
        from: NodeId,
        key: &str,
    ) -> Result<(Vec<V>, ReplicatedReceipt), RouteError> {
        let op_start = transport.clock().now();
        let mut receipt = ReplicatedReceipt { messages: 0, elapsed: 0.0, mirrors_reached: 0 };
        for r in 0..self.replicas {
            let loc = hash_to_replica_location(key.as_bytes(), r, topology.bounds());
            let route = transport.route_to_location(topology, from, loc)?;
            // Request leg is always charged.
            let fwd = transport.deliver(topology, &route.path, TrafficLayer::Forward);
            receipt.messages += fwd.transmissions;
            receipt.elapsed = transport.clock().now() - op_start;
            if !fwd.delivered {
                continue;
            }
            receipt.mirrors_reached += 1;
            let values =
                self.storage[route.delivered.index()].get(key).cloned().unwrap_or_default();
            if !values.is_empty() {
                let rev = transport.deliver_reverse(topology, &route.path, 1, TrafficLayer::Reply);
                receipt.messages += rev.transmissions;
                receipt.elapsed = transport.clock().now() - op_start;
                if rev.delivered_copies == 1 {
                    return Ok((values, receipt));
                }
            }
        }
        Ok((Vec::new(), receipt))
    }

    /// Values held at `node` (load inspection).
    pub fn stored_at(&self, node: NodeId) -> usize {
        self.storage[node.index()].values().map(Vec::len).sum()
    }
}

/// Convenience: promotes a plain [`GhtTable`] comparison — how many extra
/// messages replication costs per put at this network size.
pub fn replication_overhead<V: Clone>(
    topology: &Topology,
    transport: &mut dyn Transport,
    from: NodeId,
    key: &str,
    value: V,
    replicas: u32,
) -> Result<(u64, u64), RouteError> {
    let mut plain: GhtTable<V> = GhtTable::new(topology);
    let plain_messages = plain.put(topology, transport, from, key, value.clone())?.messages;
    let mut replicated: ReplicatedGht<V> = ReplicatedGht::new(topology, replicas);
    let replicated_messages = replicated.put(topology, transport, from, key, value)?.messages;
    Ok((plain_messages, replicated_messages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_gpsr::Planarization;
    use pool_netsim::deployment::Deployment;
    use pool_transport::TransportKind;

    fn setup(seed: u64) -> (Topology, Box<dyn Transport>) {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(250, 40.0, 20.0, s).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                let transport = TransportKind::Gpsr.build(&topo, Planarization::Gabriel);
                return (topo, transport);
            }
            s += 1;
        }
    }

    #[test]
    fn put_reaches_all_mirrors() {
        let (topo, mut t) = setup(1);
        let mut ght: ReplicatedGht<u8> = ReplicatedGht::new(&topo, 4);
        ght.put(&topo, t.as_mut(), NodeId(0), "k", 7).unwrap();
        let holders = (0..topo.len()).filter(|&i| ght.stored_at(NodeId(i as u32)) > 0).count();
        // Mirrors land at distinct locations; occasionally two may share a
        // home node, but most must be distinct.
        assert!(holders >= 3, "only {holders} distinct mirror homes");
    }

    #[test]
    fn get_any_finds_a_value() {
        let (topo, mut t) = setup(2);
        let mut ght: ReplicatedGht<u8> = ReplicatedGht::new(&topo, 3);
        ght.put(&topo, t.as_mut(), NodeId(5), "sensor-type", 9).unwrap();
        let (values, receipt) = ght.get_any(&topo, t.as_mut(), NodeId(200), "sensor-type").unwrap();
        assert_eq!(values, vec![9]);
        assert!(receipt.messages > 0);
        assert!(receipt.elapsed > 0.0);
    }

    #[test]
    fn missing_key_returns_empty_after_trying_all_mirrors() {
        let (topo, mut t) = setup(3);
        let mut ght: ReplicatedGht<u8> = ReplicatedGht::new(&topo, 3);
        let (values, receipt) = ght.get_any(&topo, t.as_mut(), NodeId(10), "nope").unwrap();
        assert!(values.is_empty());
        assert!(receipt.messages > 0, "all three mirrors were consulted");
        assert_eq!(receipt.mirrors_reached, 3);
    }

    #[test]
    fn replication_costs_scale_with_mirror_count() {
        let (topo, mut t) = setup(4);
        let (plain, replicated) =
            replication_overhead(&topo, t.as_mut(), NodeId(0), "hot-key", 1u8, 4).unwrap();
        assert!(replicated > plain, "4 mirrors ({replicated}) vs 1 home ({plain})");
    }

    #[test]
    fn mirror_writes_split_insert_and_replication_layers() {
        let (topo, mut t) = setup(6);
        let mut ght: ReplicatedGht<u8> = ReplicatedGht::new(&topo, 3);
        let receipt = ght.put(&topo, t.as_mut(), NodeId(0), "k", 1).unwrap();
        let ledger = t.ledger();
        assert_eq!(
            ledger.layer_total(TrafficLayer::Insert)
                + ledger.layer_total(TrafficLayer::Replication),
            receipt.messages
        );
        assert!(ledger.layer_total(TrafficLayer::Replication) > 0);
    }

    #[test]
    fn mirror_writes_overlap_in_virtual_time() {
        let (topo, mut t) = setup(7);
        let mut ght: ReplicatedGht<u8> = ReplicatedGht::new(&topo, 4);
        let before = t.clock().now();
        let receipt = ght.put(&topo, t.as_mut(), NodeId(0), "hot", 1).unwrap();
        assert_eq!(receipt.mirrors_reached, 4);
        assert!(receipt.elapsed > 0.0);
        assert!((t.clock().now() - before - receipt.elapsed).abs() < 1e-12);
        // Writing the same four mirrors one after another on a fresh
        // deployment costs strictly more time than the overlapped fan-out.
        let (topo2, mut t2) = setup(7);
        let mut serial_elapsed = 0.0;
        for r in 0..4 {
            let loc = crate::hash::hash_to_replica_location("hot".as_bytes(), r, topo2.bounds());
            let route = t2.route_to_location(&topo2, NodeId(0), loc).unwrap();
            let outcome = t2.deliver(&topo2, &route.path, TrafficLayer::Insert);
            serial_elapsed += outcome.latency;
        }
        assert!(
            receipt.elapsed < serial_elapsed,
            "overlapped {} vs serial {}",
            receipt.elapsed,
            serial_elapsed
        );
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let (topo, _) = setup(5);
        let _: ReplicatedGht<u8> = ReplicatedGht::new(&topo, 0);
    }
}
