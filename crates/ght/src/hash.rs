//! Deterministic key → location hashing.
//!
//! GHT hashes an event key (e.g. an event-type name, or a Pool id) to a
//! geographic location inside the deployment field. All nodes compute the
//! same location from the same key, with no communication — the defining
//! property of data-centric storage.

use pool_netsim::geometry::{Point, Rect};

/// A 64-bit FNV-1a hash of `bytes` — stable across platforms and runs,
/// unlike `std::collections` hashing.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The splitmix64 finalizer: a fast, high-quality bit mixer.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes `key` to a location inside `field`.
///
/// The high and low 32-bit halves of the 64-bit hash select the x and y
/// coordinates respectively, so nearby keys land at unrelated locations
/// (GHT wants load spreading, not locality).
///
/// # Examples
///
/// ```
/// use pool_ght::hash::hash_to_location;
/// use pool_netsim::geometry::Rect;
///
/// let field = Rect::square(100.0);
/// let a = hash_to_location(b"temperature", field);
/// let b = hash_to_location(b"temperature", field);
/// assert_eq!(a, b); // deterministic
/// assert!(field.contains(a));
/// ```
pub fn hash_to_location(key: &[u8], field: Rect) -> Point {
    // FNV-1a alone has weak avalanche in the high bits for short, similar
    // keys; a splitmix64 finalizer spreads them before splitting into
    // coordinates.
    let h = splitmix64(fnv1a(key));
    let hx = (h >> 32) as u32;
    let hy = (h & 0xffff_ffff) as u32;
    let fx = hx as f64 / u32::MAX as f64;
    let fy = hy as f64 / u32::MAX as f64;
    Point::new(field.min.x + fx * field.width(), field.min.y + fy * field.height())
}

/// Hashes `key` together with a `replica` index, for structured replication
/// (each replica of a key lives at a different deterministic location).
pub fn hash_to_replica_location(key: &[u8], replica: u32, field: Rect) -> Point {
    let mut buf = Vec::with_capacity(key.len() + 4);
    buf.extend_from_slice(key);
    buf.extend_from_slice(&replica.to_le_bytes());
    hash_to_location(&buf, field)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn locations_stay_inside_field() {
        let field = Rect::new(Point::new(10.0, 20.0), Point::new(110.0, 220.0));
        for i in 0..200u32 {
            let p = hash_to_location(&i.to_le_bytes(), field);
            assert!(field.contains(p), "key {i} mapped outside: {p}");
        }
    }

    #[test]
    fn different_keys_spread_out() {
        let field = Rect::square(100.0);
        let pts: Vec<Point> =
            (0..100u32).map(|i| hash_to_location(&i.to_le_bytes(), field)).collect();
        // At least half of the points should be pairwise farther than 5 m
        // from point 0 — a crude but effective spread check.
        let far = pts[1..].iter().filter(|p| p.distance(pts[0]) > 5.0).count();
        assert!(far > 80, "only {far} of 99 points far from the first");
    }

    #[test]
    fn replicas_land_at_distinct_locations() {
        let field = Rect::square(100.0);
        let a = hash_to_replica_location(b"k", 0, field);
        let b = hash_to_replica_location(b"k", 1, field);
        assert_ne!(a, b);
    }
}
