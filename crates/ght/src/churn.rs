//! Churn support for the geographic hash table: epoch-stepped joins,
//! deaths, and moves with budgeted incremental re-homing.
//!
//! A topology change moves key homes: the home node of a key is wherever
//! GPSR delivers a packet addressed to the key's hashed location, so a
//! death, join, or move near that location re-homes every key it served.
//! Values at dead nodes are lost (plain GHT keeps no replicas). Values
//! whose home moved while their holder survives are *re-homed* under a
//! per-epoch message budget; until the handoff lands, a `get` routes to
//! the new home and honestly misses them.
//!
//! This module is deliberately free of `pool-core` types: the caller (the
//! benchmark driver) converts whatever churn plan it uses into plain
//! `joins` / `deaths` / `moves` slices.

use crate::table::GhtTable;
use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use pool_transport::{TrafficLayer, Transport};
use std::collections::VecDeque;

/// Outcome of one GHT churn epoch (counters add across epochs via
/// [`GhtChurnReport::merge`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GhtChurnReport {
    /// Nodes newly failed this epoch.
    pub failed_nodes: usize,
    /// Values that stayed at their (unchanged) home.
    pub values_retained: usize,
    /// Values handed off to their new home this epoch.
    pub values_rehomed: usize,
    /// Values lost with their dead holders.
    pub values_lost: usize,
    /// Values whose re-homing route could not be delivered (or could never
    /// fit the budget); they are dropped.
    pub values_unreachable: usize,
    /// Radio messages spent on re-homing.
    pub repair_messages: u64,
    /// Handoffs still queued when the epoch ended.
    pub deferred_repairs: u64,
    /// Whether the surviving network is split into several components.
    pub partitioned: bool,
}

impl GhtChurnReport {
    /// Combines two epoch reports: counters add, the partition flag is
    /// sticky, and `deferred_repairs` takes the later value.
    pub fn merge(&self, other: &GhtChurnReport) -> GhtChurnReport {
        GhtChurnReport {
            failed_nodes: self.failed_nodes + other.failed_nodes,
            values_retained: self.values_retained + other.values_retained,
            values_rehomed: self.values_rehomed + other.values_rehomed,
            values_lost: self.values_lost + other.values_lost,
            values_unreachable: self.values_unreachable + other.values_unreachable,
            repair_messages: self.repair_messages + other.repair_messages,
            deferred_repairs: other.deferred_repairs,
            partitioned: self.partitioned || other.partitioned,
        }
    }
}

#[derive(Debug, Clone)]
struct GhtHandoff<V> {
    key: String,
    value: V,
    /// The surviving node still physically holding the value.
    from: NodeId,
}

/// Carry-over queue of re-homing handoffs deferred by the per-epoch
/// budget. FIFO; parked values are not visible to `get` until delivered.
#[derive(Debug, Clone)]
pub struct GhtRepairQueue<V> {
    tasks: VecDeque<GhtHandoff<V>>,
}

impl<V> Default for GhtRepairQueue<V> {
    fn default() -> Self {
        GhtRepairQueue { tasks: VecDeque::new() }
    }
}

impl<V> GhtRepairQueue<V> {
    /// Number of handoffs still waiting for budget.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no handoffs are pending.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl<V: Clone> GhtTable<V> {
    /// Grows the per-node storage to address `n` nodes (joins give the
    /// network new dense ids; existing values are untouched).
    pub fn grow_to(&mut self, n: usize) {
        if n > self.storage.len() {
            self.storage.resize(n, std::collections::HashMap::new());
        }
    }

    /// Applies one epoch of churn to the table and its network: `joins`
    /// (new nodes at the given positions), `moves` (waypoint relocations
    /// of live nodes), then `deaths` — one transport rebuild for the whole
    /// batch. Every surviving value whose key no longer homes at its
    /// holder is handed off to the new home, FIFO under `budget` radio
    /// messages (charged to [`TrafficLayer::Repair`]); the remainder waits
    /// in `queue`. A budget of 0 pauses re-homing; a handoff whose
    /// loss-free route alone exceeds the budget is dropped as unreachable.
    ///
    /// `topology` and `transport` are updated in place; values at dead
    /// nodes are lost (plain GHT keeps no replicas).
    ///
    /// # Panics
    ///
    /// Panics if `deaths` or `moves` name a node that was never deployed.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_epoch(
        &mut self,
        topology: &mut Topology,
        transport: &mut dyn Transport,
        joins: &[Point],
        deaths: &[NodeId],
        moves: &[(NodeId, Point)],
        queue: &mut GhtRepairQueue<V>,
        budget: u64,
    ) -> GhtChurnReport {
        let mut report = GhtChurnReport::default();

        // Mutate the radio network: joins, moves, then deaths — one clone
        // per epoch, in-place overlay patches per event, one compaction.
        let mut topo = topology.clone();
        for &p in joins {
            topo.add_node(p);
        }
        let nodes = topo.len();
        for &(id, dest) in moves {
            assert!(id.index() < nodes, "unknown node {id}: the deployment has {nodes} nodes");
            if topo.is_alive(id) {
                topo.move_node(id, dest);
            }
        }
        for &d in deaths {
            assert!(d.index() < nodes, "unknown node {d}: the deployment has {nodes} nodes");
        }
        let mut victims: Vec<NodeId> =
            deaths.iter().copied().filter(|&d| topo.is_alive(d)).collect();
        victims.sort_unstable();
        victims.dedup();
        report.failed_nodes = victims.len();
        topo.fail_nodes(&victims);
        topo.compact();
        report.partitioned = !topo.is_connected();
        transport.rebuild(&topo);
        *topology = topo;
        self.grow_to(topology.len());

        // Values at dead nodes are gone; carried handoffs whose holder
        // died are gone with it.
        for &v in &victims {
            let lost: usize = self.storage[v.index()].values().map(Vec::len).sum();
            report.values_lost += lost;
            self.storage[v.index()].clear();
        }
        let carried = queue.tasks.len();
        queue.tasks.retain(|t| topology.is_alive(t.from));
        report.values_lost += carried - queue.tasks.len();

        // Re-home walk: every key held by a survivor whose home moved
        // leaves the table and queues as a handoff. Keys are visited in
        // (node, key) order — HashMap iteration order is not
        // deterministic, and the drain cutoff must be.
        for i in 0..self.storage.len() {
            let holder = NodeId(i as u32);
            if !topology.is_alive(holder) || self.storage[i].is_empty() {
                continue;
            }
            let mut keys: Vec<String> = self.storage[i].keys().cloned().collect();
            keys.sort_unstable();
            for key in keys {
                let loc = self.key_location(topology, &key);
                let home = match transport.route_to_location(topology, holder, loc) {
                    Ok(route) => route.delivered,
                    // No route from here (partition): the values stay put
                    // and this key's gets will miss them — honest degraded
                    // mode, retried next epoch.
                    Err(_) => continue,
                };
                if home == holder {
                    report.values_retained += self.storage[i][&key].len();
                } else {
                    let values = self.storage[i].remove(&key).expect("key exists");
                    for value in values {
                        queue.tasks.push_back(GhtHandoff { key: key.clone(), value, from: holder });
                    }
                }
            }
        }

        self.drain_handoffs(topology, transport, queue, budget, &mut report);
        report.deferred_repairs = queue.tasks.len() as u64;
        report
    }

    /// Drains `queue` front-to-back until the next handoff would exceed
    /// `budget` messages.
    fn drain_handoffs(
        &mut self,
        topology: &Topology,
        transport: &mut dyn Transport,
        queue: &mut GhtRepairQueue<V>,
        budget: u64,
        report: &mut GhtChurnReport,
    ) {
        if budget == 0 {
            return;
        }
        let mut spent = 0u64;
        while let Some(task) = queue.tasks.front() {
            let loc = self.key_location(topology, &task.key);
            let route = match transport.route_to_location(topology, task.from, loc) {
                Ok(route) => route,
                Err(_) => {
                    queue.tasks.pop_front();
                    report.values_unreachable += 1;
                    continue;
                }
            };
            if route.delivered == task.from {
                // The home swung back to the holder while the handoff
                // waited: the value is already home, zero messages.
                let task = queue.tasks.pop_front().expect("front exists");
                self.storage[task.from.index()].entry(task.key).or_default().push(task.value);
                report.values_rehomed += 1;
                continue;
            }
            let estimate = route.path.windows(2).filter(|w| w[0] != w[1]).count() as u64;
            if estimate > budget {
                queue.tasks.pop_front();
                report.values_unreachable += 1;
                continue;
            }
            if spent + estimate > budget {
                break;
            }
            let task = queue.tasks.pop_front().expect("front exists");
            let outcome = transport.deliver(topology, &route.path, TrafficLayer::Repair);
            spent += outcome.transmissions;
            report.repair_messages += outcome.transmissions;
            if outcome.delivered {
                report.values_rehomed += 1;
                self.storage[route.delivered.index()].entry(task.key).or_default().push(task.value);
            } else {
                report.values_unreachable += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_gpsr::Planarization;
    use pool_netsim::deployment::Deployment;
    use pool_transport::TransportKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(seed: u64) -> (Topology, Box<dyn Transport>) {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(250, 40.0, 20.0, s).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                let transport = TransportKind::Gpsr.build(&topo, Planarization::Gabriel);
                return (topo, transport);
            }
            s += 1;
        }
    }

    fn load(ght: &mut GhtTable<u32>, topo: &Topology, t: &mut dyn Transport, n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = topo.len() as u32;
        for i in 0..n {
            let src = NodeId(rng.gen_range(0..count));
            ght.put(topo, t, src, &format!("key-{i}"), i as u32).unwrap();
        }
    }

    #[test]
    fn deaths_rehome_keys_and_gets_stay_honest() {
        let (mut topo, mut t) = setup(201);
        let mut ght: GhtTable<u32> = GhtTable::new(&topo);
        load(&mut ght, &topo, t.as_mut(), 80, 1);
        let before = ght.total_stored();
        let mut queue = GhtRepairQueue::default();
        // Kill the ten busiest homes.
        let mut homes: Vec<(usize, NodeId)> = (0..topo.len())
            .map(|i| (ght.stored_at(NodeId(i as u32)), NodeId(i as u32)))
            .filter(|&(c, _)| c > 0)
            .collect();
        homes.sort_unstable_by(|a, b| b.cmp(a));
        let victims: Vec<NodeId> = homes.iter().take(10).map(|&(_, n)| n).collect();
        let report =
            ght.apply_epoch(&mut topo, t.as_mut(), &[], &victims, &[], &mut queue, u64::MAX);
        assert_eq!(report.failed_nodes, 10);
        assert!(report.values_lost > 0, "dead homes lose their values: {report:?}");
        assert_eq!(
            ght.total_stored() + queue.len() + report.values_lost + report.values_unreachable,
            before
        );
        // Surviving keys are still gettable; lost keys miss honestly.
        let sink = topo.largest_component_members()[0];
        let mut found = 0;
        for i in 0..80 {
            let (values, receipt) = ght.get(&topo, t.as_mut(), sink, &format!("key-{i}")).unwrap();
            assert!(receipt.messages > 0 || values.is_empty());
            found += usize::from(!values.is_empty());
        }
        assert_eq!(found, ght.total_stored().min(80), "gets see exactly the stored values");
    }

    #[test]
    fn budget_bounds_rehoming_traffic_and_defers_the_rest() {
        let (mut topo, mut t) = setup(202);
        let mut ght: GhtTable<u32> = GhtTable::new(&topo);
        load(&mut ght, &topo, t.as_mut(), 120, 2);
        let mut queue = GhtRepairQueue::default();
        let mut rng = StdRng::seed_from_u64(9);
        let budget = 15u64;
        for _ in 0..8 {
            let victims: Vec<NodeId> = (0..topo.len() as u32)
                .map(NodeId)
                .filter(|&n| topo.is_alive(n) && rng.gen_bool(0.02))
                .collect();
            let before = t.ledger().layer_total(TrafficLayer::Repair);
            let report =
                ght.apply_epoch(&mut topo, t.as_mut(), &[], &victims, &[], &mut queue, budget);
            let after = t.ledger().layer_total(TrafficLayer::Repair);
            assert!(after - before <= budget, "epoch spent {} > {budget}", after - before);
            assert_eq!(report.repair_messages, after - before);
            assert_eq!(report.deferred_repairs as usize, queue.len());
        }
        // Calm epochs eventually drain (or drop as unreachable) the queue.
        for _ in 0..300 {
            if queue.is_empty() {
                break;
            }
            ght.apply_epoch(&mut topo, t.as_mut(), &[], &[], &[], &mut queue, budget);
        }
        assert!(queue.is_empty(), "the queue must drain when churn stops");
    }

    #[test]
    fn joins_and_moves_rehome_without_loss_under_unbounded_budget() {
        let (mut topo, mut t) = setup(203);
        let mut ght: GhtTable<u32> = GhtTable::new(&topo);
        load(&mut ght, &topo, t.as_mut(), 60, 3);
        let before = ght.total_stored();
        let mut queue = GhtRepairQueue::default();
        let joins = [Point::new(100.0, 100.0), topo.bounds().center()];
        let moves = [(NodeId(5), Point::new(20.0, 20.0)), (NodeId(9), topo.bounds().center())];
        let report =
            ght.apply_epoch(&mut topo, t.as_mut(), &joins, &[], &moves, &mut queue, u64::MAX);
        assert_eq!(report.failed_nodes, 0);
        assert_eq!(report.values_lost, 0, "nobody died: {report:?}");
        assert_eq!(
            ght.total_stored() + report.values_unreachable,
            before,
            "no loss under an unbounded budget: {report:?}"
        );
        assert_eq!(topo.len(), 252);
        // Every key now lives at its current home: a fresh walk is a no-op.
        let report = ght.apply_epoch(&mut topo, t.as_mut(), &[], &[], &[], &mut queue, u64::MAX);
        assert_eq!(report.values_rehomed, 0, "{report:?}");
        assert_eq!(report.repair_messages, 0);
    }

    #[test]
    fn merge_adds_counters_and_keeps_the_partition_flag() {
        let a = GhtChurnReport {
            failed_nodes: 2,
            values_rehomed: 5,
            repair_messages: 9,
            deferred_repairs: 3,
            partitioned: true,
            ..Default::default()
        };
        let b = GhtChurnReport {
            failed_nodes: 1,
            values_lost: 2,
            repair_messages: 4,
            deferred_repairs: 1,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.failed_nodes, 3);
        assert_eq!(m.values_rehomed, 5);
        assert_eq!(m.values_lost, 2);
        assert_eq!(m.repair_messages, 13);
        assert_eq!(m.deferred_repairs, 1, "deferred takes the latest snapshot");
        assert!(m.partitioned);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_death_panics_with_a_clear_message() {
        let (mut topo, mut t) = setup(204);
        let mut ght: GhtTable<u32> = GhtTable::new(&topo);
        let mut queue = GhtRepairQueue::default();
        ght.apply_epoch(&mut topo, t.as_mut(), &[], &[NodeId(9999)], &[], &mut queue, u64::MAX);
    }
}
