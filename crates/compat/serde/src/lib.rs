//! Offline stub of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on data types for
//! downstream consumers but never serializes anything itself, and the
//! build environment cannot reach crates.io. This stub provides the two
//! marker traits and re-exports no-op derive macros so `#[derive(...)]`
//! keeps compiling hermetically. Swap back to real serde by restoring the
//! crates.io dependency in the workspace manifest.

/// Marker for serializable types (stub — carries no methods).
pub trait Serialize {}

/// Marker for deserializable types (stub — carries no methods).
pub trait Deserialize<'de>: Sized {}

/// Marker mirroring serde's owned-deserialization helper trait.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
