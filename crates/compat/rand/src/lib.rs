//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) surface the workspace actually uses:
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`]. The generator is deterministic
//! (xoshiro256** seeded via SplitMix64), which is exactly what the
//! reproduction needs — every experiment seed maps to one stream.
//!
//! It is **not** a cryptographic or statistically audited RNG; it exists
//! so `cargo build` / `cargo test` work hermetically.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Element types [`Rng::gen_range`] can sample uniformly.
///
/// The single blanket `SampleRange` impl over this trait (mirroring
/// rand 0.8's shape) is what lets the compiler unify the output type with
/// a range literal's element type at call sites like
/// `lo + rng.gen_range(0.0..0.4)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample values of type `T` from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Uniform integer in `[0, bound)` by widening multiply (no modulo bias
/// worth caring about at these bounds).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                // Two's-complement offset arithmetic handles signed types.
                let span = (hi as u64)
                    .wrapping_sub(lo as u64)
                    .wrapping_add(inclusive as u64);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`f64` in `[0, 1)`, full-width
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&w));
            let x = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
