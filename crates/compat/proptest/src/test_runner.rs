//! Runner configuration and case-level error type.

use std::fmt;

/// Subset of proptest's config: only `cases` matters to this stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the stub trims to keep the
        // tier-1 suite fast while still exercising the properties.
        Self { cases: 64 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}
