//! Value-generating strategies (stub: no shrink trees).

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A source of random values of one type.
///
/// `generate` returns `None` when a filter rejects the case; the runner
/// retries with fresh randomness.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter_map<O, F>(self, _whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Type-erased, cheaply clonable strategy (`Rc`-shared; tests are
/// single-threaded so no `Send` requirement).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Weighted choice among same-valued strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { arms: self.arms.clone(), total: self.total }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let mut pick = rng.below(self.total as u64) as u32;
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

/// `any::<T>()` — the full-domain strategy for simple scalar types.
pub fn any<T: ArbitraryScalar>() -> Any<T> {
    Any(PhantomData)
}

#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

pub trait ArbitraryScalar: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: ArbitraryScalar> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryScalar for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryScalar for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryScalar for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

// ---- Range strategies -------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return Some(rng.next_u64() as $t);
                }
                Some(lo + rng.below(span + 1) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        Some(self.start() + rng.unit_f64() * (self.end() - self.start()))
    }
}

// ---- Tuple strategies -------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let mut out = Vec::with_capacity(N);
        for s in self {
            out.push(s.generate(rng)?);
        }
        match out.try_into() {
            Ok(arr) => Some(arr),
            Err(_) => unreachable!("length is N by construction"),
        }
    }
}

// ---- Regex-lite string strategy ---------------------------------------

/// String literals act as regex strategies in proptest. The stub supports
/// the single shape the tests use: one character class with a bounded
/// repetition, e.g. `"[a-z0-9]{1,16}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        let (alphabet, min, max) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("proptest stub: unsupported regex strategy {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        Some((0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect())
    }
}

/// Parses `[class]{min,max}` into (alphabet, min, max).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix('{')?;
    let counts = rest.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.parse().ok()?, max.parse().ok()?);
    if min > max {
        return None;
    }

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return None;
            }
            alphabet.extend(lo..=hi);
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..2000 {
            let v = (3u32..9).generate(&mut rng).unwrap();
            assert!((3..9).contains(&v));
            let w = (2usize..=6).generate(&mut rng).unwrap();
            assert!((2..=6).contains(&w));
            let f = (10.0f64..500.0).generate(&mut rng).unwrap();
            assert!((10.0..500.0).contains(&f));
        }
    }

    #[test]
    fn union_respects_zero_probability_of_missing_arms() {
        let mut rng = TestRng::new(11);
        let u = Union::new(vec![(1, Just(1u32).boxed()), (3, Just(2u32).boxed())]);
        let mut saw = [0u32; 3];
        for _ in 0..1000 {
            saw[u.generate(&mut rng).unwrap() as usize] += 1;
        }
        assert_eq!(saw[0], 0);
        assert!(saw[1] > 100 && saw[2] > saw[1]);
    }

    #[test]
    fn regex_lite_parses_class_and_counts() {
        let mut rng = TestRng::new(3);
        for _ in 0..500 {
            let s = "[a-z0-9]{1,16}".generate(&mut rng).unwrap();
            assert!((1..=16).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn filter_map_rejects_via_none() {
        let mut rng = TestRng::new(5);
        let s = (0u32..10).prop_filter_map("evens", |v| (v % 2 == 0).then_some(v));
        let mut kept = 0;
        for _ in 0..200 {
            if let Some(v) = s.generate(&mut rng) {
                assert_eq!(v % 2, 0);
                kept += 1;
            }
        }
        assert!(kept > 50);
    }
}
