//! Offline stub of `proptest`, sufficient for this workspace's property
//! tests. The build environment cannot reach crates.io, so this crate
//! re-implements the subset of the proptest API the tests use:
//!
//! - `Strategy` (value-based: `generate` from a deterministic RNG; no
//!   shrinking — a failing case panics with the generated inputs),
//! - range / tuple / `Just` / regex-lite string strategies,
//! - `prop_map`, `prop_filter_map`, `boxed`, weighted `prop_oneof!`,
//! - the `proptest!` block macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`,
//! - `prop_assert!` / `prop_assert_eq!` returning `TestCaseError`.
//!
//! Swap back to real proptest by restoring the crates.io dependency.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Deterministic RNG backing case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)` via widening multiply; `bound` must be > 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runs `name`d property `body` for `config.cases` generated cases.
///
/// Called by the `proptest!` macro expansion; public so the macro can
/// reach it from test crates.
pub fn run_property<F>(name: &str, config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<bool, test_runner::TestCaseError>,
{
    // Per-test deterministic seed so distinct properties explore
    // different streams but reruns are reproducible.
    let mut seed = 0xC0DE_F00D_u64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
    }
    let mut rng = TestRng::new(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(true) => accepted += 1,
            Ok(false) => {
                rejected += 1;
                assert!(
                    rejected < 65_536,
                    "proptest stub: {name}: too many rejected cases ({rejected})"
                );
            }
            Err(e) => panic!("proptest stub: property {name} failed after {accepted} cases: {e}"),
        }
    }
}

/// `proptest! { ... }` — runs each contained `fn` as a property test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_property(stringify!($name), &config, |rng| {
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(&($strat), rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => return ::core::result::Result::Ok(false),
                        };
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    outcome.map(|()| true)
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Fallible assertion: returns `TestCaseError` instead of panicking so the
/// runner can report the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Weighted union of strategies: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
