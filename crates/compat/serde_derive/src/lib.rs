//! No-op derive macros backing the offline `serde` stub.
//!
//! The derives accept (and ignore) `#[serde(...)]` attributes and emit no
//! code — the stub `Serialize`/`Deserialize` traits are pure markers.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
