//! Offline stub of `criterion`, covering the API surface of this
//! workspace's benches. The build environment cannot reach crates.io, so
//! this crate provides a minimal wall-clock timing harness with the same
//! macro/type surface (`criterion_group!`, `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `black_box`). It reports a simple
//! mean per iteration — no statistics, baselines, or HTML reports. Swap
//! back to real criterion by restoring the crates.io dependency.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier (stable-Rust best-effort, same as criterion's).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Stub measurement settings: iteration count per benchmark.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Enough iterations to smooth scheduler noise without making
        // `cargo bench` crawl; the stub is a smoke-timer, not a lab.
        Self { iters: 50 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.iters, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), iters: self.iters, _parent: self }
    }

    /// Called by `criterion_main!`; the stub has no pending reports.
    pub fn final_summary(&mut self) {}
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = n as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), self.iters, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&format!("{}/{}", self.name, id), self.iters, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new(name: impl fmt::Display, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Timing handle passed to the closure under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, iters: u64, mut f: F) {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    // One warmup pass, then the measured pass.
    f(&mut b);
    f(&mut b);
    let per_iter = b.elapsed.as_nanos() / u128::from(iters.max(1));
    println!("bench {id:<48} {per_iter:>12} ns/iter ({iters} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
