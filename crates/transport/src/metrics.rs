//! Per-node load metrics and ledger snapshots — the observability layer's
//! read side.
//!
//! The paper's §5 evaluation is message counting, and its sharpest claim is
//! about *distribution*: skewed workloads hotspot DIM's zone owners while
//! Pool spreads load across delegation chains (§4.2). This module turns the
//! raw [`TrafficLedger`] into the quantities those figures need:
//!
//! * [`LoadReport`] — one row per node: messages sent (total and per
//!   [`TrafficLayer`]), events held, and protocol role tags
//!   ([`NodeRole::Index`] / [`NodeRole::Splitter`] / [`NodeRole::Delegate`]).
//! * [`LoadDistribution`] — max / mean / Gini over any load sample, the
//!   standard inequality summary for hotspot analysis.
//! * [`LedgerSnapshot`] — a frozen copy of the per-layer totals, used by
//!   the conservation audit to assert that one operation's cost struct
//!   equals the ledger delta it produced, layer by layer.

use crate::ledger::{TrafficLayer, TrafficLedger};
use pool_netsim::node::NodeId;

/// A protocol role a node played during the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// Elected index node of at least one pool cell (or DIM zone owner).
    Index,
    /// Served as a pool splitter for at least one query or dissemination.
    Splitter,
    /// Recruited into at least one workload-sharing delegation chain.
    Delegate,
}

impl NodeRole {
    /// All roles, in display order.
    pub const ALL: [NodeRole; 3] = [NodeRole::Index, NodeRole::Splitter, NodeRole::Delegate];

    /// Stable lowercase name.
    pub fn label(self) -> &'static str {
        match self {
            NodeRole::Index => "index",
            NodeRole::Splitter => "splitter",
            NodeRole::Delegate => "delegate",
        }
    }

    fn bit(self) -> u8 {
        match self {
            NodeRole::Index => 1,
            NodeRole::Splitter => 2,
            NodeRole::Delegate => 4,
        }
    }
}

/// A small set of [`NodeRole`]s (a node can be index, splitter, and
/// delegate at once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoleSet(u8);

impl RoleSet {
    /// The empty set.
    pub fn empty() -> Self {
        RoleSet(0)
    }

    /// Adds a role.
    pub fn insert(&mut self, role: NodeRole) {
        self.0 |= role.bit();
    }

    /// Whether `role` is in the set.
    pub fn contains(self, role: NodeRole) -> bool {
        self.0 & role.bit() != 0
    }

    /// Whether the node played no tracked role.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The labels of the roles present, in display order.
    pub fn labels(self) -> Vec<&'static str> {
        NodeRole::ALL.iter().filter(|r| self.contains(**r)).map(|r| r.label()).collect()
    }
}

/// One node's row in a [`LoadReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLoad {
    /// The node.
    pub node: NodeId,
    /// Messages this node sent, across all layers.
    pub messages: u64,
    /// Messages sent per layer, in [`TrafficLayer::ALL`] order.
    pub by_layer: [u64; TrafficLayer::ALL.len()],
    /// Events this node currently holds (storage load).
    pub events_held: u64,
    /// Virtual time this node's radio spent transmitting, in seconds
    /// (filled in from the transport's clock by the storage scheme).
    pub busy_time: f64,
    /// Protocol roles the node played.
    pub roles: RoleSet,
}

/// Per-node load assembled from a [`TrafficLedger`], optionally annotated
/// with storage load and role tags by the storage scheme that owns the
/// ledger.
///
/// # Examples
///
/// ```
/// use pool_netsim::node::NodeId;
/// use pool_transport::metrics::{LoadReport, NodeRole};
/// use pool_transport::{TrafficLayer, TrafficLedger};
///
/// let mut ledger = TrafficLedger::new(3);
/// ledger.charge_path(&[NodeId(0), NodeId(1), NodeId(2)], TrafficLayer::Insert);
/// let mut report = LoadReport::from_ledger(&ledger);
/// report.set_events_held(NodeId(2), 5);
/// report.tag(NodeId(1), NodeRole::Delegate);
/// assert_eq!(report.message_distribution().max, 1.0);
/// // Load is sender-attributed: node 1 relayed one Insert-layer message.
/// assert_eq!(report.role_layer_total(NodeRole::Delegate, TrafficLayer::Insert), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    nodes: Vec<NodeLoad>,
    delivery: crate::DeliveryStats,
}

impl LoadReport {
    /// Builds a report with message loads filled in from `ledger`
    /// (storage loads zero, role sets empty, delivery stats zero).
    pub fn from_ledger(ledger: &TrafficLedger) -> Self {
        let nodes = (0..ledger.nodes())
            .map(|i| {
                let node = NodeId(i as u32);
                NodeLoad {
                    node,
                    messages: ledger.node_load(node),
                    by_layer: *ledger.node_layers(node),
                    events_held: 0,
                    busy_time: 0.0,
                    roles: RoleSet::empty(),
                }
            })
            .collect();
        LoadReport { nodes, delivery: crate::DeliveryStats::default() }
    }

    /// Attaches the transport's cumulative link-layer delivery statistics
    /// (attempt histogram, detour count, failure counts) so chaos runs are
    /// debuggable from the report alone.
    pub fn set_delivery_stats(&mut self, stats: crate::DeliveryStats) {
        self.delivery = stats;
    }

    /// The attached link-layer delivery statistics (all zeros for
    /// loss-free substrates or when never attached).
    pub fn delivery_stats(&self) -> crate::DeliveryStats {
        self.delivery
    }

    /// Sets the storage load of `node`.
    pub fn set_events_held(&mut self, node: NodeId, events: u64) {
        self.nodes[node.index()].events_held = events;
    }

    /// Sets the radio busy time of `node`, in seconds.
    pub fn set_busy_time(&mut self, node: NodeId, seconds: f64) {
        self.nodes[node.index()].busy_time = seconds;
    }

    /// Fills busy times for every node from a per-node slice in node order
    /// (as produced by the virtual clock).
    pub fn set_busy_times(&mut self, seconds: &[f64]) {
        for (row, &busy) in self.nodes.iter_mut().zip(seconds) {
            row.busy_time = busy;
        }
    }

    /// Tags `node` with a protocol role.
    pub fn tag(&mut self, node: NodeId, role: NodeRole) {
        self.nodes[node.index()].roles.insert(role);
    }

    /// All rows, in node order.
    pub fn nodes(&self) -> &[NodeLoad] {
        &self.nodes
    }

    /// Max/mean/Gini over per-node *message* load.
    pub fn message_distribution(&self) -> LoadDistribution {
        LoadDistribution::of(self.nodes.iter().map(|n| n.messages))
    }

    /// Max/mean/Gini over per-node *storage* load (events held).
    pub fn storage_distribution(&self) -> LoadDistribution {
        LoadDistribution::of(self.nodes.iter().map(|n| n.events_held))
    }

    /// Max/mean/Gini over per-node radio *busy time* — the utilization
    /// analogue of [`LoadReport::message_distribution`].
    pub fn busy_distribution(&self) -> LoadDistribution {
        LoadDistribution::of_f64(self.nodes.iter().map(|n| n.busy_time))
    }

    /// Max/mean/Gini over per-node load on one layer.
    pub fn layer_distribution(&self, layer: TrafficLayer) -> LoadDistribution {
        LoadDistribution::of(self.nodes.iter().map(|n| n.by_layer[layer.index()]))
    }

    /// Total messages sent on `layer` by nodes tagged with `role` — e.g.
    /// Reply-layer traffic relayed by delegation-chain members.
    pub fn role_layer_total(&self, role: NodeRole, layer: TrafficLayer) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.roles.contains(role))
            .map(|n| n.by_layer[layer.index()])
            .sum()
    }

    /// The `k` nodes with the highest message load, descending (ties by
    /// node id, ascending).
    pub fn hottest(&self, k: usize) -> Vec<&NodeLoad> {
        let mut sorted: Vec<&NodeLoad> = self.nodes.iter().collect();
        sorted.sort_by_key(|n| (std::cmp::Reverse(n.messages), n.node));
        sorted.truncate(k);
        sorted
    }
}

/// Max / mean / Gini summary of a load sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadDistribution {
    /// Largest single load.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Gini coefficient in `[0, 1]`: 0 is perfectly even, 1 is one node
    /// carrying everything. Defined as 0 for an empty or all-zero sample.
    pub gini: f64,
}

impl LoadDistribution {
    /// Summarizes a sample of integer loads.
    pub fn of(samples: impl IntoIterator<Item = u64>) -> Self {
        LoadDistribution::of_f64(samples.into_iter().map(|v| v as f64))
    }

    /// Summarizes a sample of non-negative real-valued loads (busy times,
    /// utilizations).
    pub fn of_f64(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut values: Vec<f64> = samples.into_iter().collect();
        if values.is_empty() {
            return LoadDistribution { max: 0.0, mean: 0.0, gini: 0.0 };
        }
        values.sort_unstable_by(f64::total_cmp);
        let n = values.len() as f64;
        let total: f64 = values.iter().sum();
        let max = *values.last().expect("non-empty");
        let mean = total / n;
        // Gini from the sorted sample: G = (2·Σ i·xᵢ)/(n·Σ xᵢ) − (n+1)/n,
        // with 1-based ranks i over ascending xᵢ.
        let gini = if total == 0.0 {
            0.0
        } else {
            let rank_weighted: f64 =
                values.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x).sum();
            (2.0 * rank_weighted) / (n * total) - (n + 1.0) / n
        };
        LoadDistribution { max, mean, gini }
    }

    /// Hand-rolled JSON object (the repo has no real serde).
    pub fn json(&self) -> String {
        format!(
            "{{\"max\": {:.1}, \"mean\": {:.3}, \"gini\": {:.4}}}",
            self.max, self.mean, self.gini
        )
    }
}

/// A frozen copy of a ledger's per-layer totals, for delta assertions.
///
/// The conservation audit brackets every operation with a snapshot: the
/// operation's reported cost must equal the ledger growth, layer by layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerSnapshot {
    by_layer: [u64; TrafficLayer::ALL.len()],
    total: u64,
}

impl LedgerSnapshot {
    /// Freezes the current totals of `ledger`.
    pub fn of(ledger: &TrafficLedger) -> Self {
        let mut by_layer = [0; TrafficLayer::ALL.len()];
        for layer in TrafficLayer::ALL {
            by_layer[layer.index()] = ledger.layer_total(layer);
        }
        LedgerSnapshot { by_layer, total: ledger.total_messages() }
    }

    /// Messages charged to `layer` since the snapshot.
    pub fn layer_delta(&self, ledger: &TrafficLedger, layer: TrafficLayer) -> u64 {
        ledger.layer_total(layer) - self.by_layer[layer.index()]
    }

    /// Total messages charged since the snapshot.
    pub fn total_delta(&self, ledger: &TrafficLedger) -> u64 {
        ledger.total_messages() - self.total
    }

    /// Conservation audit, exact form: each `(layer, cost)` pair reported
    /// by an operation must equal that layer's ledger delta since the
    /// snapshot. Compiled to nothing in release builds.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when a reported cost diverges from its
    /// ledger delta — the operation created or lost phantom messages.
    pub fn debug_assert_layers(
        &self,
        ledger: &TrafficLedger,
        op: &str,
        expected: &[(TrafficLayer, u64)],
    ) {
        if cfg!(debug_assertions) {
            for &(layer, cost) in expected {
                debug_assert_eq!(
                    cost,
                    self.layer_delta(ledger, layer),
                    "{op}: reported cost diverges from the {} ledger delta",
                    layer.label()
                );
            }
            let covered: u64 = expected.iter().map(|&(_, cost)| cost).sum();
            let elsewhere = self.total_delta(ledger) - covered;
            debug_assert_eq!(0, elsewhere, "{op}: charged {elsewhere} messages to foreign layers");
        }
    }

    /// Conservation audit, summed form: an operation reporting one flat
    /// message count (`total`) must have grown exactly the given `layers`
    /// by that amount, and nothing else. Compiled to nothing in release
    /// builds.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on divergence, like
    /// [`LedgerSnapshot::debug_assert_layers`].
    pub fn debug_assert_sum(
        &self,
        ledger: &TrafficLedger,
        op: &str,
        total: u64,
        layers: &[TrafficLayer],
    ) {
        if cfg!(debug_assertions) {
            let delta: u64 = layers.iter().map(|&l| self.layer_delta(ledger, l)).sum();
            debug_assert_eq!(
                total, delta,
                "{op}: reported cost diverges from the summed ledger delta"
            );
            let elsewhere = self.total_delta(ledger) - delta;
            debug_assert_eq!(0, elsewhere, "{op}: charged {elsewhere} messages to foreign layers");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_spans_even_to_concentrated() {
        let even = LoadDistribution::of([5, 5, 5, 5]);
        assert!(even.gini.abs() < 1e-12, "even load must have Gini 0, got {}", even.gini);
        assert_eq!(even.max, 5.0);
        assert_eq!(even.mean, 5.0);
        // One node carries everything: G = (n-1)/n for n samples.
        let spike = LoadDistribution::of([0, 0, 0, 100]);
        assert!((spike.gini - 0.75).abs() < 1e-12, "got {}", spike.gini);
        // Known closed form: [1, 2, 3, 4] has G = 0.25.
        let ramp = LoadDistribution::of([1, 2, 3, 4]);
        assert!((ramp.gini - 0.25).abs() < 1e-12, "got {}", ramp.gini);
    }

    #[test]
    fn degenerate_samples_are_defined() {
        let empty = LoadDistribution::of([]);
        assert_eq!(empty, LoadDistribution { max: 0.0, mean: 0.0, gini: 0.0 });
        let zeros = LoadDistribution::of([0, 0, 0]);
        assert_eq!(zeros.gini, 0.0);
    }

    #[test]
    fn role_sets_compose() {
        let mut roles = RoleSet::empty();
        assert!(roles.is_empty());
        roles.insert(NodeRole::Index);
        roles.insert(NodeRole::Delegate);
        assert!(roles.contains(NodeRole::Index));
        assert!(!roles.contains(NodeRole::Splitter));
        assert_eq!(roles.labels(), vec!["index", "delegate"]);
    }

    #[test]
    fn report_slices_by_role_and_layer() {
        let mut ledger = TrafficLedger::new(4);
        ledger.charge_path(&[NodeId(0), NodeId(1)], TrafficLayer::Forward);
        ledger.charge_path(&[NodeId(1), NodeId(2)], TrafficLayer::Reply);
        ledger.charge_path(&[NodeId(2), NodeId(3)], TrafficLayer::Reply);
        let mut report = LoadReport::from_ledger(&ledger);
        report.tag(NodeId(1), NodeRole::Delegate);
        report.tag(NodeId(2), NodeRole::Delegate);
        report.set_events_held(NodeId(3), 7);
        assert_eq!(report.role_layer_total(NodeRole::Delegate, TrafficLayer::Reply), 2);
        assert_eq!(report.role_layer_total(NodeRole::Delegate, TrafficLayer::Forward), 0);
        assert_eq!(report.storage_distribution().max, 7.0);
        let hottest = report.hottest(2);
        assert_eq!(hottest.len(), 2);
        assert!(hottest[0].messages >= hottest[1].messages);
    }

    #[test]
    fn snapshot_deltas_track_growth() {
        let mut ledger = TrafficLedger::new(3);
        ledger.charge_path(&[NodeId(0), NodeId(1)], TrafficLayer::Insert);
        let snap = LedgerSnapshot::of(&ledger);
        ledger.charge_path(&[NodeId(1), NodeId(2)], TrafficLayer::Forward);
        ledger.charge_hop(NodeId(2), NodeId(1), TrafficLayer::Retransmit);
        assert_eq!(snap.layer_delta(&ledger, TrafficLayer::Insert), 0);
        assert_eq!(snap.layer_delta(&ledger, TrafficLayer::Forward), 1);
        assert_eq!(snap.layer_delta(&ledger, TrafficLayer::Retransmit), 1);
        assert_eq!(snap.total_delta(&ledger), 2);
    }
}
