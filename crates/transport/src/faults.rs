//! Structured fault injection over any routing substrate.
//!
//! One-shot `fail_nodes` (PR 2) kills nodes between operations; the
//! interesting failures happen *during* them. [`FaultyTransport`] wraps any
//! [`Transport`] with the same per-hop lossy ARQ as
//! [`crate::LossyTransport`] plus a seeded, virtual-time-scheduled
//! [`FaultPlan`]:
//!
//! * **Crash** — a node dies at time `t` and stays dead: every hop into or
//!   out of it burns its whole retry budget.
//! * **Pause** — a node is unresponsive over a window and then resumes
//!   (reboot, duty-cycling, GC pause).
//! * **Partition** — links crossing a region boundary are dead over a
//!   window and later heal; traffic within either side is unaffected.
//! * **BurstLoss** — a [`GilbertElliott`] two-state channel overlays
//!   correlated loss over a window: bursts of bad state instead of
//!   independent drops.
//! * **AsymmetricLink** — one *direction* of a link degrades to a fixed
//!   reception probability from time `t` (the reverse stays healthy).
//!
//! Fault windows activate against the virtual clock's cursor at the moment
//! a delivery begins, so campaigns are deterministic in the seed and the
//! operation sequence — never in wall-clock or worker count.
//!
//! Determinism contract: with an empty plan (and no recovery), the
//! decorator is byte-identical to [`crate::LossyTransport`] — same RNG
//! stream, same ledger charge order, same timing. Fault-blocked attempts
//! are charged but consume **no** RNG draw, and burst channels draw from a
//! separate RNG stream, so injected faults never perturb the base loss
//! process around them.

use crate::ledger::TrafficLayer;
use crate::lossy::{
    AdaptiveState, DeliveryOutcome, DeliveryStats, LossyConfig, RecoveryConfig, ReverseDelivery,
};
use crate::{Transport, TransportKind};
use pool_gpsr::{Route, RouteError};
use pool_netsim::geometry::{Point, Rect};
use pool_netsim::node::NodeId;
use pool_netsim::schedule::SimTime;
use pool_netsim::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Seed domain separator for the burst-loss RNG stream, so Gilbert–Elliott
/// draws never perturb the base loss process.
const GE_SEED_SALT: u64 = 0x6e11_be27_6e11_be27;

/// A Gilbert–Elliott two-state burst channel: the link alternates between
/// a good and a bad state with per-attempt transition probabilities, and
/// each state has its own reception probability. Long bad sojourns model
/// correlated (bursty) loss that independent per-attempt drops cannot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Good → bad transition probability per attempt.
    pub p_gb: f64,
    /// Bad → good transition probability per attempt.
    pub p_bg: f64,
    /// Reception probability while in the good state.
    pub good_prr: f64,
    /// Reception probability while in the bad state.
    pub bad_prr: f64,
}

impl GilbertElliott {
    /// Creates a channel; panics unless every parameter is a probability
    /// and at least one transition is possible (a chain that can never
    /// leave its initial state is a fixed link, not a burst channel).
    pub fn new(p_gb: f64, p_bg: f64, good_prr: f64, bad_prr: f64) -> Self {
        for (name, p) in
            [("p_gb", p_gb), ("p_bg", p_bg), ("good_prr", good_prr), ("bad_prr", bad_prr)]
        {
            assert!((0.0..=1.0).contains(&p), "{name} must be a probability, got {p}");
        }
        assert!(p_gb + p_bg > 0.0, "the chain must be able to change state");
        GilbertElliott { p_gb, p_bg, good_prr, bad_prr }
    }

    /// Long-run fraction of attempts spent in the bad state
    /// (`p_gb / (p_gb + p_bg)`, the chain's stationary distribution).
    pub fn stationary_bad(&self) -> f64 {
        self.p_gb / (self.p_gb + self.p_bg)
    }

    /// Long-run reception probability of the channel alone.
    pub fn long_run_prr(&self) -> f64 {
        let bad = self.stationary_bad();
        self.good_prr * (1.0 - bad) + self.bad_prr * bad
    }
}

/// One scheduled fault. Times are virtual seconds on the transport's
/// [`crate::VirtualClock`]; windows are half-open `[from, until)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// `node` dies at `at` and never recovers.
    Crash {
        /// The victim.
        node: NodeId,
        /// Death time.
        at: SimTime,
    },
    /// `node` is unresponsive during the window, then resumes.
    Pause {
        /// The victim.
        node: NodeId,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive); the node answers again from here on.
        until: SimTime,
    },
    /// Links crossing `region`'s boundary are dead during the window,
    /// then heal. Links with both endpoints on the same side still work.
    Partition {
        /// The partitioned region.
        region: Rect,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive); the partition heals here.
        until: SimTime,
    },
    /// Every link is overlaid with a [`GilbertElliott`] burst channel
    /// during the window.
    BurstLoss {
        /// The burst channel.
        channel: GilbertElliott,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// The directed link `from → to` degrades to reception probability
    /// `prr` from time `at` on; the reverse direction is untouched.
    AsymmetricLink {
        /// Transmitter of the degraded direction.
        from: NodeId,
        /// Receiver of the degraded direction.
        to: NodeId,
        /// Reception probability of the degraded direction, in [0, 1].
        prr: f64,
        /// Onset time.
        at: SimTime,
    },
}

/// A deterministic schedule of [`Fault`]s, activated against virtual time.
///
/// The empty plan is the identity: a [`FaultyTransport`] with it behaves
/// byte-for-byte like a [`crate::LossyTransport`] over the same seed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds `fault` to the plan (builder form).
    pub fn with(mut self, fault: Fault) -> Self {
        self.push(fault);
        self
    }

    /// Adds `fault` to the plan.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether `node` is crashed or paused at time `now`.
    pub fn node_down(&self, node: NodeId, now: SimTime) -> bool {
        self.faults.iter().any(|f| match *f {
            Fault::Crash { node: n, at } => n == node && now >= at,
            Fault::Pause { node: n, from, until } => n == node && now >= from && now < until,
            _ => false,
        })
    }

    /// Whether a transmission between positions `a` and `b` crosses an
    /// active partition boundary at time `now`.
    pub fn link_partitioned(&self, a: Point, b: Point, now: SimTime) -> bool {
        self.faults.iter().any(|f| match *f {
            Fault::Partition { region, from, until } => {
                now >= from && now < until && (region.contains(a) != region.contains(b))
            }
            _ => false,
        })
    }
}

/// How one attempt on a link is affected by the active faults.
enum LinkState {
    /// No draw can save it: a dead endpoint or an active partition.
    Blocked,
    /// Lossy as usual with reception probability `p`, additionally gated
    /// by the burst channels in `bursts` (indices into the plan's
    /// `BurstLoss` faults).
    Lossy { p: f64, bursts: Vec<usize> },
}

/// A lossy-ARQ transport decorator that additionally injects the
/// structured faults of a [`FaultPlan`], with optional adaptive recovery
/// (the same EWMA + backoff + failure-detector machinery as
/// [`crate::LossyTransport::wrap_adaptive`]).
#[derive(Debug)]
pub struct FaultyTransport {
    inner: Box<dyn Transport>,
    config: LossyConfig,
    plan: FaultPlan,
    rng: StdRng,
    ge_rng: StdRng,
    /// Current state per `BurstLoss` fault (index-aligned with the plan's
    /// burst faults); chains start good.
    ge_bad: Vec<bool>,
    stats: DeliveryStats,
    adaptive: Option<AdaptiveState>,
}

impl FaultyTransport {
    /// Wraps `inner` with the lossy ARQ of `config` plus the faults of
    /// `plan`, without adaptive recovery.
    pub fn wrap(inner: Box<dyn Transport>, config: LossyConfig, plan: FaultPlan) -> Self {
        let bursts = plan.faults().iter().filter(|f| matches!(f, Fault::BurstLoss { .. })).count();
        FaultyTransport {
            inner,
            config,
            plan,
            rng: StdRng::seed_from_u64(config.seed),
            ge_rng: StdRng::seed_from_u64(config.seed ^ GE_SEED_SALT),
            ge_bad: vec![false; bursts],
            stats: DeliveryStats::default(),
            adaptive: None,
        }
    }

    /// Wraps `inner` with faults *and* adaptive recovery.
    pub fn wrap_adaptive(
        inner: Box<dyn Transport>,
        config: LossyConfig,
        plan: FaultPlan,
        recovery: RecoveryConfig,
    ) -> Self {
        let mut t = FaultyTransport::wrap(inner, config, plan);
        t.adaptive = Some(AdaptiveState::new(recovery));
        t
    }

    /// The loss configuration.
    pub fn config(&self) -> LossyConfig {
        self.config
    }

    /// The fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The adaptive-recovery state, when recovery is enabled.
    pub fn adaptive(&self) -> Option<&AdaptiveState> {
        self.adaptive.as_ref()
    }

    /// Resolves the fault-adjusted state of the directed link `from → to`
    /// at time `now`.
    fn link_state(&self, topology: &Topology, from: NodeId, to: NodeId, now: SimTime) -> LinkState {
        if self.plan.node_down(from, now) || self.plan.node_down(to, now) {
            return LinkState::Blocked;
        }
        if self.plan.link_partitioned(topology.position(from), topology.position(to), now) {
            return LinkState::Blocked;
        }
        let mut p = self.config.quality.prr(topology.distance(from, to)).clamp(0.0, 1.0);
        let mut bursts = Vec::new();
        let mut burst_idx = 0usize;
        for fault in self.plan.faults() {
            match *fault {
                Fault::AsymmetricLink { from: f, to: t, prr, at }
                    if f == from && t == to && now >= at =>
                {
                    p = prr.clamp(0.0, 1.0);
                }
                Fault::BurstLoss { from: f, until, .. } => {
                    if now >= f && now < until {
                        bursts.push(burst_idx);
                    }
                    burst_idx += 1;
                }
                _ => {}
            }
        }
        LinkState::Lossy { p, bursts }
    }

    /// Attempts one hop with ARQ under the active faults. Mirrors
    /// [`crate::LossyTransport`]'s draw/charge order exactly; blocked
    /// attempts are charged but draw nothing, and burst gating draws only
    /// from the dedicated burst stream.
    fn deliver_hop(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
        layer: TrafficLayer,
    ) -> (bool, u64, u64, f64) {
        if from == to {
            return (true, 0, 0, 0.0);
        }
        let now = self.inner.clock().now();
        let state = self.link_state(topology, from, to, now);
        self.stats.hop_attempts += 1;
        let mut transmissions = 0u64;
        let mut backoff = 0.0f64;
        for attempt in 0..=self.config.retry_budget {
            if let Some(ad) = &self.adaptive {
                backoff += ad.backoff_delay((from, to), attempt);
            }
            let charge_layer = if attempt == 0 { layer } else { TrafficLayer::Retransmit };
            self.inner.ledger_mut().charge_hop(from, to, charge_layer);
            transmissions += 1;
            let received = match &state {
                LinkState::Blocked => false,
                LinkState::Lossy { p, bursts } => {
                    let mut ok = self.rng.gen_bool(*p);
                    for &b in bursts {
                        // Step the chain, then gate on its state's PRR —
                        // both from the dedicated burst stream.
                        let ch = self.burst_channel(b);
                        let flip =
                            self.ge_rng.gen_bool(if self.ge_bad[b] { ch.p_bg } else { ch.p_gb });
                        if flip {
                            self.ge_bad[b] = !self.ge_bad[b];
                        }
                        let state_prr = if self.ge_bad[b] { ch.bad_prr } else { ch.good_prr };
                        ok &= self.ge_rng.gen_bool(state_prr.clamp(0.0, 1.0));
                    }
                    ok
                }
            };
            if let Some(ad) = &mut self.adaptive {
                ad.observe((from, to), received);
            }
            if received {
                if let Some(ad) = &mut self.adaptive {
                    ad.hop_delivered((from, to));
                }
                self.stats.transmissions += transmissions;
                self.stats.retransmissions += transmissions - 1;
                self.stats.record_hop_attempts(transmissions);
                return (true, transmissions, transmissions - 1, backoff);
            }
        }
        self.stats.hops_failed += 1;
        self.stats.transmissions += transmissions;
        self.stats.retransmissions += transmissions - 1;
        self.stats.record_hop_attempts(transmissions);
        // The exhausted budget just proved `to` unreachable from here:
        // targeted memo invalidation, and a strike for the detector.
        self.inner.evict_routes_through(to);
        if let Some(ad) = &mut self.adaptive {
            ad.hop_exhausted((from, to));
        }
        (false, transmissions, transmissions - 1, backoff)
    }

    /// The `idx`-th `BurstLoss` fault's channel.
    fn burst_channel(&self, idx: usize) -> GilbertElliott {
        let mut i = 0usize;
        for fault in self.plan.faults() {
            if let Fault::BurstLoss { channel, .. } = fault {
                if i == idx {
                    return *channel;
                }
                i += 1;
            }
        }
        unreachable!("burst index {idx} out of range");
    }

    /// One path-level delivery attempt, hop by hop (identical structure to
    /// [`crate::LossyTransport`]'s walk).
    fn walk(
        &mut self,
        topology: &Topology,
        path: &[NodeId],
        layer: TrafficLayer,
    ) -> (DeliveryOutcome, Vec<crate::Hop>) {
        self.stats.deliveries += 1;
        let mut transmissions = 0u64;
        let mut retransmissions = 0u64;
        let mut hops = Vec::new();
        for w in path.windows(2) {
            let (ok, t, r, backoff) = self.deliver_hop(topology, w[0], w[1], layer);
            if t > 0 {
                hops.push(crate::Hop { from: w[0], to: w[1], transmissions: t, backoff });
            }
            transmissions += t;
            retransmissions += r;
            if !ok {
                self.stats.deliveries_failed += 1;
                let outcome = DeliveryOutcome {
                    delivered: false,
                    transmissions,
                    retransmissions,
                    reached: w[0],
                    failed_hop: Some((w[0], w[1])),
                    latency: 0.0,
                    detour: false,
                };
                return (outcome, hops);
            }
        }
        let outcome = DeliveryOutcome {
            delivered: true,
            transmissions,
            retransmissions,
            reached: *path.last().expect("path contains at least the source"),
            failed_hop: None,
            latency: 0.0,
            detour: false,
        };
        (outcome, hops)
    }

    /// Merges detector suspects into an exclusion set, keeping endpoints.
    fn merged_exclusions(&self, from: NodeId, to: NodeId, excluded: &[NodeId]) -> Vec<NodeId> {
        let mut merged: Vec<NodeId> =
            excluded.iter().copied().filter(|&n| n != from && n != to).collect();
        if let Some(ad) = &self.adaptive {
            for s in ad.suspects() {
                if s != from && s != to && !merged.contains(&s) {
                    merged.push(s);
                }
            }
        }
        merged
    }
}

impl Transport for FaultyTransport {
    fn route_to_node(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
    ) -> Result<Arc<Route>, RouteError> {
        self.inner.route_to_node(topology, from, to)
    }

    fn route_to_location(
        &mut self,
        topology: &Topology,
        from: NodeId,
        target: Point,
    ) -> Result<Arc<Route>, RouteError> {
        self.inner.route_to_location(topology, from, target)
    }

    fn route_to_node_avoiding(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
        excluded: &[NodeId],
    ) -> Result<Arc<Route>, RouteError> {
        let merged = self.merged_exclusions(from, to, excluded);
        if merged.is_empty() {
            return self.inner.route_to_node(topology, from, to);
        }
        let route = self.inner.route_to_node_avoiding(topology, from, to, &merged)?;
        self.stats.detour_routes += 1;
        Ok(route)
    }

    fn evict_routes_through(&mut self, node: NodeId) -> u64 {
        self.inner.evict_routes_through(node)
    }

    fn rebuild(&mut self, topology: &Topology) {
        if let Some(ad) = &mut self.adaptive {
            ad.reset();
        }
        self.inner.rebuild(topology);
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn ledger(&self) -> &crate::TrafficLedger {
        self.inner.ledger()
    }

    fn ledger_mut(&mut self) -> &mut crate::TrafficLedger {
        self.inner.ledger_mut()
    }

    fn clock(&self) -> &crate::VirtualClock {
        self.inner.clock()
    }

    fn clock_mut(&mut self) -> &mut crate::VirtualClock {
        self.inner.clock_mut()
    }

    fn kind(&self) -> TransportKind {
        self.inner.kind()
    }

    fn deliver(
        &mut self,
        topology: &Topology,
        path: &[NodeId],
        layer: TrafficLayer,
    ) -> DeliveryOutcome {
        let (mut outcome, hops) = self.walk(topology, path, layer);
        outcome.latency = self.clock_mut().time_leg(&hops);
        outcome
    }

    fn deliver_reverse(
        &mut self,
        topology: &Topology,
        path: &[NodeId],
        copies: u64,
        layer: TrafficLayer,
    ) -> ReverseDelivery {
        let back: Vec<NodeId> = path.iter().rev().copied().collect();
        let mut out = ReverseDelivery::default();
        let mut legs = Vec::with_capacity(copies as usize);
        for _ in 0..copies {
            let (o, hops) = self.walk(topology, &back, layer);
            if o.delivered {
                out.delivered_copies += 1;
            }
            out.transmissions += o.transmissions;
            out.retransmissions += o.retransmissions;
            legs.push(hops);
        }
        out.latency = self.clock_mut().time_fanout(&legs);
        out
    }

    fn delivery_stats(&self) -> DeliveryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackoffPolicy, LossyTransport, TrafficLayer};
    use pool_gpsr::Planarization;
    use pool_netsim::deployment::Deployment;

    fn topo(seed: u64) -> Topology {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(300, 40.0, 20.0, s).unwrap();
            let t = Topology::build(dep.nodes(), 40.0).unwrap();
            if t.is_connected() {
                return t;
            }
            s += 4096;
        }
    }

    fn endpoints(t: &Topology) -> (NodeId, NodeId) {
        (t.nodes()[0].id, t.nodes()[t.len() - 1].id)
    }

    /// The pinned zero-fault identity: an empty plan reproduces the bare
    /// lossy substrate byte for byte — outcomes, ledger, and clock.
    #[test]
    fn empty_plan_is_byte_identical_to_lossy() {
        let t = topo(31);
        let (from, to) = endpoints(&t);
        let cfg = LossyConfig::fixed(0.8, 77);
        let mut lossy =
            LossyTransport::wrap(crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel), cfg);
        let mut faulty = FaultyTransport::wrap(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            FaultPlan::new(),
        );
        let lr = lossy.route_to_node(&t, from, to).unwrap();
        let fr = faulty.route_to_node(&t, from, to).unwrap();
        assert_eq!(lr.path, fr.path);
        for i in 0..12 {
            let layer = if i % 2 == 0 { TrafficLayer::Forward } else { TrafficLayer::Insert };
            let lo = lossy.deliver(&t, &lr.path, layer);
            let fo = faulty.deliver(&t, &fr.path, layer);
            assert_eq!(lo, fo, "delivery {i} diverged");
            let lrv = lossy.deliver_reverse(&t, &lr.path, 2, TrafficLayer::Reply);
            let frv = faulty.deliver_reverse(&t, &fr.path, 2, TrafficLayer::Reply);
            assert_eq!(lrv, frv, "reverse {i} diverged");
        }
        assert_eq!(lossy.ledger(), faulty.ledger());
        assert_eq!(lossy.clock(), faulty.clock());
        assert_eq!(lossy.delivery_stats(), faulty.delivery_stats());
    }

    #[test]
    fn crash_blocks_hops_through_the_victim_after_its_death() {
        let t = topo(32);
        let (from, to) = endpoints(&t);
        let cfg = LossyConfig::fixed(1.0, 5).with_retry_budget(2);
        let mut probe = FaultyTransport::wrap(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            FaultPlan::new(),
        );
        let route = probe.route_to_node(&t, from, to).unwrap();
        assert!(route.hops() >= 2);
        let victim = route.path[route.path.len() / 2];
        let mut faulty = FaultyTransport::wrap(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            FaultPlan::new().with(Fault::Crash { node: victim, at: 0.0 }),
        );
        let r = faulty.route_to_node(&t, from, to).unwrap();
        let out = faulty.deliver(&t, &r.path, TrafficLayer::Forward);
        assert!(!out.delivered);
        let (_, blocked_to) = out.failed_hop.expect("crash must fail the delivery");
        assert_eq!(blocked_to, victim, "the failure is the hop into the crashed node");
        // Every attempt into the victim was charged, none delivered.
        assert_eq!(
            out.transmissions,
            out.retransmissions + r.path.iter().position(|&n| n == victim).unwrap() as u64
        );
    }

    #[test]
    fn pause_heals_when_its_window_ends() {
        let t = topo(33);
        let (from, to) = endpoints(&t);
        let cfg = LossyConfig::fixed(1.0, 6).with_retry_budget(1);
        let mut probe = FaultyTransport::wrap(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            FaultPlan::new(),
        );
        let route = probe.route_to_node(&t, from, to).unwrap();
        let victim = route.path[route.path.len() / 2];
        let mut faulty = FaultyTransport::wrap(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            FaultPlan::new().with(Fault::Pause { node: victim, from: 0.0, until: 1.0 }),
        );
        let r = faulty.route_to_node(&t, from, to).unwrap();
        let during = faulty.deliver(&t, &r.path, TrafficLayer::Forward);
        assert!(!during.delivered, "paused node must block during the window");
        faulty.clock_mut().seek(1.0);
        let after = faulty.deliver(&t, &r.path, TrafficLayer::Forward);
        assert!(after.delivered, "pause must heal at its window end");
    }

    #[test]
    fn partition_blocks_only_boundary_crossing_links() {
        let t = topo(34);
        let cfg = LossyConfig::fixed(1.0, 7);
        // Split the field down the middle.
        let half = Rect::new(Point::new(0.0, 0.0), Point::new(20.0, 20.0));
        let plan = FaultPlan::new().with(Fault::Partition { region: half, from: 0.0, until: 10.0 });
        let mut faulty = FaultyTransport::wrap(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            plan,
        );
        // A same-side pair of neighbors still talks.
        let inside: Vec<NodeId> =
            t.nodes().iter().filter(|n| half.contains(n.position)).map(|n| n.id).collect();
        let same_side = inside
            .iter()
            .flat_map(|&a| inside.iter().map(move |&b| (a, b)))
            .find(|&(a, b)| a != b && t.are_neighbors(a, b))
            .expect("two neighbors inside the region");
        let ok = faulty.deliver(&t, &[same_side.0, same_side.1], TrafficLayer::Forward);
        assert!(ok.delivered, "same-side links are unaffected");
        // A crossing pair of neighbors is dead during the window.
        let crossing = t
            .nodes()
            .iter()
            .filter(|n| half.contains(n.position))
            .flat_map(|a| t.nodes().iter().map(move |b| (a, b)))
            .find(|(a, b)| !half.contains(b.position) && t.are_neighbors(a.id, b.id))
            .map(|(a, b)| (a.id, b.id))
            .expect("a boundary-crossing neighbor pair");
        let blocked = faulty.deliver(&t, &[crossing.0, crossing.1], TrafficLayer::Forward);
        assert!(!blocked.delivered, "crossing links are dead during the partition");
        // After healing the same link works again.
        faulty.clock_mut().seek(10.0);
        let healed = faulty.deliver(&t, &[crossing.0, crossing.1], TrafficLayer::Forward);
        assert!(healed.delivered, "the partition must heal");
    }

    #[test]
    fn asymmetric_link_degrades_one_direction_only() {
        let t = topo(35);
        let (a, b) = t
            .nodes()
            .iter()
            .flat_map(|x| t.nodes().iter().map(move |y| (x.id, y.id)))
            .find(|&(x, y)| x != y && t.are_neighbors(x, y))
            .expect("a neighbor pair");
        let cfg = LossyConfig::fixed(1.0, 8).with_retry_budget(0);
        let mut faulty = FaultyTransport::wrap(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            // rand's gen_bool(0.0) never fires, so the degraded direction
            // always loses without consuming a different number of draws.
            FaultPlan::new().with(Fault::AsymmetricLink { from: a, to: b, prr: 0.0, at: 0.0 }),
        );
        let fwd = faulty.deliver(&t, &[a, b], TrafficLayer::Forward);
        assert!(!fwd.delivered, "degraded direction must drop");
        let rev = faulty.deliver(&t, &[b, a], TrafficLayer::Forward);
        assert!(rev.delivered, "healthy reverse direction must deliver");
    }

    #[test]
    fn adaptive_recovery_marks_suspects_and_detours_around_them() {
        let t = topo(36);
        let (from, to) = endpoints(&t);
        let cfg = LossyConfig::fixed(1.0, 9).with_retry_budget(1);
        let mut probe = FaultyTransport::wrap(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            FaultPlan::new(),
        );
        let route = probe.route_to_node(&t, from, to).unwrap();
        let victim = route.path[route.path.len() / 2];
        let recovery = RecoveryConfig { suspect_after: 2, ..RecoveryConfig::default() };
        let mut faulty = FaultyTransport::wrap_adaptive(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            FaultPlan::new().with(Fault::Crash { node: victim, at: 0.0 }),
            recovery,
        );
        let r = faulty.route_to_node(&t, from, to).unwrap();
        for _ in 0..2 {
            let out = faulty.deliver(&t, &r.path, TrafficLayer::Forward);
            assert!(!out.delivered);
        }
        assert!(
            faulty.adaptive().unwrap().is_suspect(victim),
            "two exhausted budgets must mark the receiver suspect"
        );
        let detour = faulty
            .route_to_node_avoiding(&t, from, to, &[])
            .expect("a 300-node field detours around one dead relay");
        assert!(!detour.path.contains(&victim), "the detour must avoid the suspect");
        assert_eq!(faulty.delivery_stats().detour_routes, 1);
        let out = faulty.deliver(&t, &detour.path, TrafficLayer::Forward);
        assert!(out.delivered, "the detour route must deliver around the crash");
    }

    #[test]
    fn backoff_prices_retries_on_the_clock() {
        let t = topo(37);
        let (a, b) = t
            .nodes()
            .iter()
            .flat_map(|x| t.nodes().iter().map(move |y| (x.id, y.id)))
            .find(|&(x, y)| x != y && t.are_neighbors(x, y))
            .expect("a neighbor pair");
        let cfg = LossyConfig::fixed(1.0, 10).with_retry_budget(3);
        let plan = FaultPlan::new().with(Fault::Crash { node: b, at: 0.0 });
        let mut plain = FaultyTransport::wrap(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            plan.clone(),
        );
        let mut adaptive = FaultyTransport::wrap_adaptive(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            plan,
            RecoveryConfig::default(),
        );
        let fixed = plain.deliver(&t, &[a, b], TrafficLayer::Forward);
        let priced = adaptive.deliver(&t, &[a, b], TrafficLayer::Forward);
        assert_eq!(fixed.transmissions, priced.transmissions, "same ARQ schedule");
        assert!(
            priced.latency > fixed.latency,
            "backoff must cost virtual time: {} vs {}",
            priced.latency,
            fixed.latency
        );
        // The extra latency is exactly the backoff schedule's sum. The
        // first attempt already failed before retry 1, so the EWMA has the
        // link below 0.5 and every retry escalates one rung.
        let policy = BackoffPolicy::default();
        let expected: f64 = (1..=3u32).map(|k| policy.delay(k + 1)).sum();
        assert!(
            (priced.latency - fixed.latency - expected).abs() < 1e-12,
            "extra latency {} vs expected backoff {expected}",
            priced.latency - fixed.latency
        );
    }

    #[test]
    fn burst_loss_draws_only_inside_its_window() {
        let t = topo(38);
        let (from, to) = endpoints(&t);
        let cfg = LossyConfig::fixed(0.9, 11);
        let channel = GilbertElliott::new(0.3, 0.2, 1.0, 0.0);
        // Window strictly in the future: deliveries at t≈0 precede it.
        let mut windowed = FaultyTransport::wrap(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            FaultPlan::new().with(Fault::BurstLoss { channel, from: 1e9, until: 2e9 }),
        );
        let mut clean = FaultyTransport::wrap(
            crate::TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            cfg,
            FaultPlan::new(),
        );
        let rw = windowed.route_to_node(&t, from, to).unwrap();
        let rc = clean.route_to_node(&t, from, to).unwrap();
        for _ in 0..8 {
            let ow = windowed.deliver(&t, &rw.path, TrafficLayer::Forward);
            let oc = clean.deliver(&t, &rc.path, TrafficLayer::Forward);
            assert_eq!(ow, oc, "an inactive burst window must not perturb the loss process");
        }
        assert_eq!(windowed.ledger(), clean.ledger());
    }
}
