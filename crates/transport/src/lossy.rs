//! A lossy link layer over any routing substrate.
//!
//! The paper (and the rest of this repository's seed) assumes every GPSR
//! hop succeeds. [`LossyTransport`] drops that assumption: it wraps any
//! [`Transport`] and makes each hop of a delivery fail independently with
//! probability `1 − prr(d)`, where `d` is the link distance and `prr` comes
//! from a seeded packet-reception model ([`LinkQuality`]). Lost frames are
//! recovered by hop-by-hop ARQ: the sender retransmits up to a bounded
//! retry budget, acknowledgments are assumed free and reliable (the same
//! "link-layer ARQ without acknowledgment loss" convention as
//! [`pool_netsim::radio::PrrModel::etx`]). First attempts are charged to
//! the caller's [`TrafficLayer`]; every retransmission is charged to
//! [`TrafficLayer::Retransmit`], so the ledger separates useful traffic
//! from loss overhead.
//!
//! A delivery that exhausts the budget on some hop stops there and reports
//! a structured [`DeliveryOutcome`] naming the failed hop — the storage
//! schemes above turn that into partial query results and typed insert
//! errors instead of aborting.
//!
//! With a perfect link (`prr = 1.0` everywhere) the decorator charges the
//! ledger hop for hop exactly like the wrapped transport: same order, same
//! layers, same per-node attribution.

use crate::ledger::TrafficLayer;
use crate::{Transport, TransportKind};
use pool_gpsr::{Route, RouteError};
use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::radio::PrrModel;
use pool_netsim::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Default ARQ retry budget: a frame is attempted at most `1 + budget`
/// times per hop (7 retries, the common 802.15.4-class MAC default range).
pub const DEFAULT_RETRY_BUDGET: u32 = 7;

/// Per-link packet reception quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkQuality {
    /// Every link succeeds with the same fixed probability, regardless of
    /// distance (useful for controlled experiments and property tests).
    Fixed(f64),
    /// Distance-dependent reception from a logistic [`PrrModel`].
    Model(PrrModel),
}

impl LinkQuality {
    /// Reception probability for a link of length `distance`.
    pub fn prr(&self, distance: f64) -> f64 {
        match *self {
            LinkQuality::Fixed(p) => p,
            LinkQuality::Model(m) => m.prr(distance),
        }
    }
}

/// Configuration for a [`LossyTransport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossyConfig {
    /// Link quality model.
    pub quality: LinkQuality,
    /// Maximum retransmissions per hop after the first attempt.
    pub retry_budget: u32,
    /// Seed for the loss process (deliveries are deterministic in it).
    pub seed: u64,
}

impl LossyConfig {
    /// Distance-dependent loss from `model`, with the default retry budget.
    pub fn model(model: PrrModel, seed: u64) -> Self {
        LossyConfig { quality: LinkQuality::Model(model), retry_budget: DEFAULT_RETRY_BUDGET, seed }
    }

    /// Fixed per-hop reception probability `p`, with the default budget.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn fixed(p: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "per-hop PRR must be in (0, 1], got {p}");
        LossyConfig { quality: LinkQuality::Fixed(p), retry_budget: DEFAULT_RETRY_BUDGET, seed }
    }

    /// Overrides the retry budget.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }
}

/// The outcome of delivering one packet along a routed path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryOutcome {
    /// Whether the packet reached the end of the path.
    pub delivered: bool,
    /// Total transmissions charged (first attempts + retransmissions).
    pub transmissions: u64,
    /// Retransmissions alone (charged to [`TrafficLayer::Retransmit`]).
    pub retransmissions: u64,
    /// The last node the packet reached.
    pub reached: NodeId,
    /// The hop that exhausted its retry budget, when delivery failed.
    pub failed_hop: Option<(NodeId, NodeId)>,
    /// Elapsed virtual time of the delivery, in seconds. Failed deliveries
    /// still accrue the time spent before ARQ gave up.
    pub latency: f64,
}

impl DeliveryOutcome {
    /// A loss-free delivery along `path` that charged `transmissions`.
    ///
    /// # Panics
    ///
    /// Panics on an empty path (paths always contain at least the source).
    pub fn delivered_clean(path: &[NodeId], transmissions: u64) -> Self {
        DeliveryOutcome {
            delivered: true,
            transmissions,
            retransmissions: 0,
            reached: *path.last().expect("path contains at least the source"),
            failed_hop: None,
            latency: 0.0,
        }
    }
}

/// The outcome of sending `copies` reply packets back along a path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReverseDelivery {
    /// Copies that made it all the way back.
    pub delivered_copies: u64,
    /// Total transmissions charged across all copies.
    pub transmissions: u64,
    /// Retransmissions alone.
    pub retransmissions: u64,
    /// Elapsed virtual time of the whole fan-out (copies overlap in
    /// flight; shared senders serialize), in seconds.
    pub latency: f64,
}

/// Cumulative link-layer delivery statistics for one transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeliveryStats {
    /// Path-level deliveries attempted.
    pub deliveries: u64,
    /// Path-level deliveries that failed (some hop exhausted its budget).
    pub deliveries_failed: u64,
    /// Distinct hop attempts (self-hops excluded).
    pub hop_attempts: u64,
    /// Hops that exhausted the retry budget.
    pub hops_failed: u64,
    /// Total transmissions.
    pub transmissions: u64,
    /// Retransmissions alone.
    pub retransmissions: u64,
}

impl DeliveryStats {
    /// Fraction of path-level deliveries that succeeded (1.0 when none
    /// were attempted).
    pub fn delivery_rate(&self) -> f64 {
        if self.deliveries == 0 {
            1.0
        } else {
            (self.deliveries - self.deliveries_failed) as f64 / self.deliveries as f64
        }
    }

    /// Retransmissions per first-attempt transmission — the loss tax on
    /// every useful message (0.0 for a perfect link).
    pub fn retransmission_overhead(&self) -> f64 {
        let first_attempts = self.transmissions - self.retransmissions;
        if first_attempts == 0 {
            0.0
        } else {
            self.retransmissions as f64 / first_attempts as f64
        }
    }
}

/// A decorator that subjects every delivery of the wrapped [`Transport`]
/// to per-hop loss with bounded ARQ.
///
/// Routing (`route_to_node` / `route_to_location`), rebuilds, and the
/// ledger all delegate to the inner transport; only the `deliver*` methods
/// change behaviour. The loss process is deterministic in
/// [`LossyConfig::seed`].
///
/// # Examples
///
/// ```
/// use pool_gpsr::Planarization;
/// use pool_netsim::deployment::Deployment;
/// use pool_netsim::topology::Topology;
/// use pool_transport::{LossyConfig, LossyTransport, TrafficLayer, Transport, TransportKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let deployment = Deployment::paper_setting(300, 40.0, 20.0, 7)?;
/// let topology = Topology::build(deployment.nodes(), 40.0)?;
/// let inner = TransportKind::Gpsr.build(&topology, Planarization::Gabriel);
/// let mut lossy = LossyTransport::wrap(inner, LossyConfig::fixed(0.9, 42));
/// let (from, to) = (topology.nodes()[0].id, topology.nodes()[100].id);
/// let route = lossy.route_to_node(&topology, from, to)?;
/// let outcome = lossy.deliver(&topology, &route.path, TrafficLayer::Forward);
/// assert!(outcome.transmissions >= route.hops() as u64 || !outcome.delivered);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LossyTransport {
    inner: Box<dyn Transport>,
    config: LossyConfig,
    rng: StdRng,
    stats: DeliveryStats,
}

impl LossyTransport {
    /// Wraps `inner` with the loss process described by `config`.
    pub fn wrap(inner: Box<dyn Transport>, config: LossyConfig) -> Self {
        LossyTransport {
            inner,
            config,
            rng: StdRng::seed_from_u64(config.seed),
            stats: DeliveryStats::default(),
        }
    }

    /// The loss configuration.
    pub fn config(&self) -> LossyConfig {
        self.config
    }

    /// Attempts one hop with ARQ. Returns `(delivered, transmissions,
    /// retransmissions)`; self-hops are free and always succeed.
    fn deliver_hop(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
        layer: TrafficLayer,
    ) -> (bool, u64, u64) {
        if from == to {
            return (true, 0, 0);
        }
        let p = self.config.quality.prr(topology.distance(from, to)).clamp(0.0, 1.0);
        self.stats.hop_attempts += 1;
        let mut transmissions = 0u64;
        for attempt in 0..=self.config.retry_budget {
            let charge_layer = if attempt == 0 { layer } else { TrafficLayer::Retransmit };
            self.inner.ledger_mut().charge_hop(from, to, charge_layer);
            transmissions += 1;
            if self.rng.gen_bool(p) {
                self.stats.transmissions += transmissions;
                self.stats.retransmissions += transmissions - 1;
                return (true, transmissions, transmissions - 1);
            }
        }
        self.stats.hops_failed += 1;
        self.stats.transmissions += transmissions;
        self.stats.retransmissions += transmissions - 1;
        (false, transmissions, transmissions - 1)
    }

    /// Charges one path-level delivery attempt hop by hop (the RNG draw
    /// and ledger charge order of the original implementation), collecting
    /// the per-hop transmission counts so the caller can time the leg
    /// afterwards without touching that order.
    fn walk(
        &mut self,
        topology: &Topology,
        path: &[NodeId],
        layer: TrafficLayer,
    ) -> (DeliveryOutcome, Vec<crate::Hop>) {
        self.stats.deliveries += 1;
        let mut transmissions = 0u64;
        let mut retransmissions = 0u64;
        let mut hops = Vec::new();
        for w in path.windows(2) {
            let (ok, t, r) = self.deliver_hop(topology, w[0], w[1], layer);
            if t > 0 {
                hops.push(crate::Hop { from: w[0], to: w[1], transmissions: t });
            }
            transmissions += t;
            retransmissions += r;
            if !ok {
                self.stats.deliveries_failed += 1;
                let outcome = DeliveryOutcome {
                    delivered: false,
                    transmissions,
                    retransmissions,
                    reached: w[0],
                    failed_hop: Some((w[0], w[1])),
                    latency: 0.0,
                };
                return (outcome, hops);
            }
        }
        let outcome = DeliveryOutcome {
            delivered: true,
            transmissions,
            retransmissions,
            reached: *path.last().expect("path contains at least the source"),
            failed_hop: None,
            latency: 0.0,
        };
        (outcome, hops)
    }
}

impl Transport for LossyTransport {
    fn route_to_node(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
    ) -> Result<Arc<Route>, RouteError> {
        self.inner.route_to_node(topology, from, to)
    }

    fn route_to_location(
        &mut self,
        topology: &Topology,
        from: NodeId,
        target: Point,
    ) -> Result<Arc<Route>, RouteError> {
        self.inner.route_to_location(topology, from, target)
    }

    fn rebuild(&mut self, topology: &Topology) {
        self.inner.rebuild(topology);
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn ledger(&self) -> &crate::TrafficLedger {
        self.inner.ledger()
    }

    fn ledger_mut(&mut self) -> &mut crate::TrafficLedger {
        self.inner.ledger_mut()
    }

    fn clock(&self) -> &crate::VirtualClock {
        self.inner.clock()
    }

    fn clock_mut(&mut self) -> &mut crate::VirtualClock {
        self.inner.clock_mut()
    }

    fn kind(&self) -> TransportKind {
        self.inner.kind()
    }

    fn deliver(
        &mut self,
        topology: &Topology,
        path: &[NodeId],
        layer: TrafficLayer,
    ) -> DeliveryOutcome {
        let (mut outcome, hops) = self.walk(topology, path, layer);
        outcome.latency = self.clock_mut().time_leg(&hops);
        outcome
    }

    fn deliver_reverse(
        &mut self,
        topology: &Topology,
        path: &[NodeId],
        copies: u64,
        layer: TrafficLayer,
    ) -> ReverseDelivery {
        let back: Vec<NodeId> = path.iter().rev().copied().collect();
        let mut out = ReverseDelivery::default();
        let mut legs = Vec::with_capacity(copies as usize);
        for _ in 0..copies {
            let (o, hops) = self.walk(topology, &back, layer);
            if o.delivered {
                out.delivered_copies += 1;
            }
            out.transmissions += o.transmissions;
            out.retransmissions += o.retransmissions;
            legs.push(hops);
        }
        out.latency = self.clock_mut().time_fanout(&legs);
        out
    }

    fn delivery_stats(&self) -> DeliveryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_gpsr::Planarization;
    use pool_netsim::deployment::Deployment;

    fn topo(seed: u64) -> Topology {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(300, 40.0, 20.0, s).unwrap();
            let t = Topology::build(dep.nodes(), 40.0).unwrap();
            if t.is_connected() {
                return t;
            }
            s += 4096;
        }
    }

    fn endpoints(t: &Topology) -> (NodeId, NodeId) {
        (t.nodes()[0].id, t.nodes()[t.len() - 1].id)
    }

    #[test]
    fn perfect_link_charges_exactly_like_the_wrapped_transport() {
        let t = topo(1);
        let (from, to) = endpoints(&t);
        let mut plain = TransportKind::Gpsr.build(&t, Planarization::Gabriel);
        let mut lossy = LossyTransport::wrap(
            TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            LossyConfig::fixed(1.0, 9),
        );
        let route = plain.route_to_node(&t, from, to).unwrap();
        let plain_out = plain.deliver(&t, &route.path, TrafficLayer::Insert);
        let lossy_route = lossy.route_to_node(&t, from, to).unwrap();
        let lossy_out = lossy.deliver(&t, &lossy_route.path, TrafficLayer::Insert);
        assert_eq!(plain_out, lossy_out);
        assert_eq!(plain.ledger(), lossy.ledger());
        let pr = plain.deliver_reverse(&t, &route.path, 3, TrafficLayer::Reply);
        let lr = lossy.deliver_reverse(&t, &lossy_route.path, 3, TrafficLayer::Reply);
        assert_eq!(pr, lr);
        assert_eq!(plain.ledger(), lossy.ledger());
    }

    #[test]
    fn retransmissions_land_in_the_retransmit_layer() {
        let t = topo(2);
        let (from, to) = endpoints(&t);
        let mut lossy = LossyTransport::wrap(
            TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            LossyConfig::fixed(0.5, 11).with_retry_budget(64),
        );
        let route = lossy.route_to_node(&t, from, to).unwrap();
        let mut out = DeliveryOutcome::delivered_clean(&route.path, 0);
        // Repeat until the loss process actually retransmits at least once.
        for _ in 0..20 {
            out = lossy.deliver(&t, &route.path, TrafficLayer::Forward);
            assert!(out.delivered, "budget 64 at p=0.5 must not fail");
            if out.retransmissions > 0 {
                break;
            }
        }
        assert!(out.retransmissions > 0, "p = 0.5 never dropped a frame in 20 deliveries");
        let ledger = lossy.ledger();
        assert_eq!(
            ledger.layer_total(TrafficLayer::Retransmit),
            lossy.delivery_stats().retransmissions
        );
        assert_eq!(
            ledger.layer_total(TrafficLayer::Forward)
                + ledger.layer_total(TrafficLayer::Retransmit),
            ledger.total_messages()
        );
    }

    #[test]
    fn exhausted_budget_reports_the_failed_hop() {
        let t = topo(3);
        let (from, to) = endpoints(&t);
        // p small enough that a multi-hop path with zero retries fails fast.
        let mut lossy = LossyTransport::wrap(
            TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            LossyConfig::fixed(0.05, 13).with_retry_budget(0),
        );
        let route = lossy.route_to_node(&t, from, to).unwrap();
        assert!(route.hops() >= 2, "endpoints should be multiple hops apart");
        let out = lossy.deliver(&t, &route.path, TrafficLayer::Insert);
        assert!(!out.delivered);
        let (hf, ht) = out.failed_hop.expect("failed delivery names its hop");
        assert!(route.path.contains(&hf) && route.path.contains(&ht));
        assert_eq!(out.reached, hf);
        assert!(lossy.delivery_stats().deliveries_failed >= 1);
    }

    #[test]
    fn deliveries_are_deterministic_in_the_seed() {
        let t = topo(4);
        let (from, to) = endpoints(&t);
        let run = |seed: u64| {
            let mut lossy = LossyTransport::wrap(
                TransportKind::Gpsr.build(&t, Planarization::Gabriel),
                LossyConfig::model(PrrModel::new(15.0, 42.0), seed),
            );
            let route = lossy.route_to_node(&t, from, to).unwrap();
            let outs: Vec<DeliveryOutcome> =
                (0..10).map(|_| lossy.deliver(&t, &route.path, TrafficLayer::Forward)).collect();
            (outs, lossy.ledger().clone())
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21).1, run(22).1, "different seeds should differ on a lossy model");
    }
}
