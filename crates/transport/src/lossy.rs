//! A lossy link layer over any routing substrate.
//!
//! The paper (and the rest of this repository's seed) assumes every GPSR
//! hop succeeds. [`LossyTransport`] drops that assumption: it wraps any
//! [`Transport`] and makes each hop of a delivery fail independently with
//! probability `1 − prr(d)`, where `d` is the link distance and `prr` comes
//! from a seeded packet-reception model ([`LinkQuality`]). Lost frames are
//! recovered by hop-by-hop ARQ: the sender retransmits up to a bounded
//! retry budget, acknowledgments are assumed free and reliable (the same
//! "link-layer ARQ without acknowledgment loss" convention as
//! [`pool_netsim::radio::PrrModel::etx`]). First attempts are charged to
//! the caller's [`TrafficLayer`]; every retransmission is charged to
//! [`TrafficLayer::Retransmit`], so the ledger separates useful traffic
//! from loss overhead.
//!
//! A delivery that exhausts the budget on some hop stops there and reports
//! a structured [`DeliveryOutcome`] naming the failed hop — the storage
//! schemes above turn that into partial query results and typed insert
//! errors instead of aborting.
//!
//! With a perfect link (`prr = 1.0` everywhere) the decorator charges the
//! ledger hop for hop exactly like the wrapped transport: same order, same
//! layers, same per-node attribution.

use crate::ledger::TrafficLayer;
use crate::{Transport, TransportKind};
use pool_gpsr::{Route, RouteError};
use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::radio::PrrModel;
use pool_netsim::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Default ARQ retry budget: a frame is attempted at most `1 + budget`
/// times per hop (7 retries, the common 802.15.4-class MAC default range).
pub const DEFAULT_RETRY_BUDGET: u32 = 7;

/// Exponential ARQ backoff: retry `k` (1-based) waits
/// `min(cap, base · factor^(k−1))` seconds on top of the fixed
/// missing-ack timeout. Delays are monotone nondecreasing in `k` and
/// bounded by `cap`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in seconds.
    pub base: f64,
    /// Multiplier applied per further retry (≥ 1).
    pub factor: f64,
    /// Upper bound on any single delay, in seconds.
    pub cap: f64,
}

impl BackoffPolicy {
    /// Creates a policy; panics on non-finite or negative parameters, or a
    /// factor below 1 (which would make delays non-monotone).
    pub fn new(base: f64, factor: f64, cap: f64) -> Self {
        assert!(base.is_finite() && base >= 0.0, "invalid backoff base");
        assert!(factor.is_finite() && factor >= 1.0, "backoff factor must be >= 1");
        assert!(cap.is_finite() && cap >= 0.0, "invalid backoff cap");
        BackoffPolicy { base, factor, cap }
    }

    /// The delay before retry `k` (1-based); 0 for `k == 0` (the first
    /// attempt never waits).
    pub fn delay(&self, k: u32) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let raw = self.base * self.factor.powi(k as i32 - 1);
        if raw > self.cap {
            self.cap
        } else {
            raw
        }
    }
}

impl Default for BackoffPolicy {
    /// 2 ms doubling up to 64 ms — a handful of rungs above the 1 ms
    /// missing-ack timeout of [`crate::LatencyModel::default`].
    fn default() -> Self {
        BackoffPolicy { base: 2e-3, factor: 2.0, cap: 64e-3 }
    }
}

/// Adaptive-recovery knobs for a lossy substrate: EWMA link estimation,
/// exponential backoff pricing, and the passive failure detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Backoff schedule priced on the virtual clock.
    pub backoff: BackoffPolicy,
    /// EWMA smoothing factor for per-link PRR estimation, in (0, 1].
    pub ewma_alpha: f64,
    /// Consecutive exhausted hop budgets before the receiver is marked
    /// suspect (the passive failure detector's `k`).
    pub suspect_after: u32,
}

impl RecoveryConfig {
    /// Creates a config; panics on an alpha outside (0, 1] or a zero
    /// detector threshold.
    pub fn new(backoff: BackoffPolicy, ewma_alpha: f64, suspect_after: u32) -> Self {
        assert!(ewma_alpha > 0.0 && ewma_alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        assert!(suspect_after >= 1, "the failure detector needs at least one strike");
        RecoveryConfig { backoff, ewma_alpha, suspect_after }
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { backoff: BackoffPolicy::default(), ewma_alpha: 0.3, suspect_after: 2 }
    }
}

/// Bounded idempotent retry at the operation level: how many times a
/// storage scheme re-attempts a failed delivery leg, and whether retries
/// may detour around the hop that failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRetryPolicy {
    /// Additional delivery attempts per leg after the first (0 disables).
    pub attempts: u32,
    /// Whether retries recompute the route around failed/suspect nodes
    /// (`false` retries the same path — the ablation arm).
    pub detour: bool,
}

impl OpRetryPolicy {
    /// `attempts` retries with detour routing enabled.
    pub fn detouring(attempts: u32) -> Self {
        OpRetryPolicy { attempts, detour: true }
    }

    /// `attempts` retries along the original path only.
    pub fn same_path(attempts: u32) -> Self {
        OpRetryPolicy { attempts, detour: false }
    }
}

impl Default for OpRetryPolicy {
    fn default() -> Self {
        OpRetryPolicy::detouring(2)
    }
}

/// Shared adaptive-recovery state: per-link EWMA reception estimates, the
/// passive failure detector's consecutive-exhaustion counters, and the set
/// of currently suspected nodes.
///
/// All collections are B-tree-ordered so iteration (and therefore every
/// derived artifact) is deterministic regardless of insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveState {
    config: RecoveryConfig,
    prr_estimate: BTreeMap<(NodeId, NodeId), f64>,
    consecutive_exhaustions: BTreeMap<(NodeId, NodeId), u32>,
    suspects: BTreeSet<NodeId>,
}

impl AdaptiveState {
    /// Fresh state under `config`.
    pub fn new(config: RecoveryConfig) -> Self {
        AdaptiveState {
            config,
            prr_estimate: BTreeMap::new(),
            consecutive_exhaustions: BTreeMap::new(),
            suspects: BTreeSet::new(),
        }
    }

    /// The recovery configuration.
    pub fn config(&self) -> RecoveryConfig {
        self.config
    }

    /// Folds one attempt result into the link's EWMA PRR estimate.
    pub fn observe(&mut self, link: (NodeId, NodeId), delivered: bool) {
        let sample = if delivered { 1.0 } else { 0.0 };
        let a = self.config.ewma_alpha;
        self.prr_estimate
            .entry(link)
            .and_modify(|est| *est = a * sample + (1.0 - a) * *est)
            .or_insert(sample);
    }

    /// The link's current EWMA PRR estimate, if any attempt was observed.
    pub fn estimate(&self, link: (NodeId, NodeId)) -> Option<f64> {
        self.prr_estimate.get(&link).copied()
    }

    /// The backoff delay before retry `k` on `link`: the configured
    /// exponential schedule, escalated one rung when the link's estimated
    /// PRR has degraded below 0.5 (bad links wait longer sooner). Monotone
    /// nondecreasing in `k` and bounded by the cap either way.
    pub fn backoff_delay(&self, link: (NodeId, NodeId), k: u32) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let rung = match self.estimate(link) {
            Some(est) if est < 0.5 => k + 1,
            _ => k,
        };
        self.config.backoff.delay(rung)
    }

    /// Records a delivered hop: clears the link's strike counter.
    pub fn hop_delivered(&mut self, link: (NodeId, NodeId)) {
        self.consecutive_exhaustions.remove(&link);
    }

    /// Records an exhausted hop budget on `link`. Returns the receiver if
    /// this strike crossed the detector threshold and newly marked it
    /// suspect.
    pub fn hop_exhausted(&mut self, link: (NodeId, NodeId)) -> Option<NodeId> {
        let strikes = self.consecutive_exhaustions.entry(link).or_insert(0);
        *strikes += 1;
        if *strikes >= self.config.suspect_after && self.suspects.insert(link.1) {
            Some(link.1)
        } else {
            None
        }
    }

    /// Whether `node` is currently suspected dead.
    pub fn is_suspect(&self, node: NodeId) -> bool {
        self.suspects.contains(&node)
    }

    /// The suspect set, in node order.
    pub fn suspects(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.suspects.iter().copied()
    }

    /// Forgets everything — called on topology rebuild, when old estimates
    /// and suspicions no longer describe the network.
    pub fn reset(&mut self) {
        self.prr_estimate.clear();
        self.consecutive_exhaustions.clear();
        self.suspects.clear();
    }
}

/// Per-link packet reception quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkQuality {
    /// Every link succeeds with the same fixed probability, regardless of
    /// distance (useful for controlled experiments and property tests).
    Fixed(f64),
    /// Distance-dependent reception from a logistic [`PrrModel`].
    Model(PrrModel),
}

impl LinkQuality {
    /// Reception probability for a link of length `distance`.
    pub fn prr(&self, distance: f64) -> f64 {
        match *self {
            LinkQuality::Fixed(p) => p,
            LinkQuality::Model(m) => m.prr(distance),
        }
    }
}

/// Configuration for a [`LossyTransport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossyConfig {
    /// Link quality model.
    pub quality: LinkQuality,
    /// Maximum retransmissions per hop after the first attempt.
    pub retry_budget: u32,
    /// Seed for the loss process (deliveries are deterministic in it).
    pub seed: u64,
}

impl LossyConfig {
    /// Distance-dependent loss from `model`, with the default retry budget.
    pub fn model(model: PrrModel, seed: u64) -> Self {
        LossyConfig { quality: LinkQuality::Model(model), retry_budget: DEFAULT_RETRY_BUDGET, seed }
    }

    /// Fixed per-hop reception probability `p`, with the default budget.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn fixed(p: f64, seed: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "per-hop PRR must be in (0, 1], got {p}");
        LossyConfig { quality: LinkQuality::Fixed(p), retry_budget: DEFAULT_RETRY_BUDGET, seed }
    }

    /// Overrides the retry budget.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget;
        self
    }
}

/// The outcome of delivering one packet along a routed path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryOutcome {
    /// Whether the packet reached the end of the path.
    pub delivered: bool,
    /// Total transmissions charged (first attempts + retransmissions).
    pub transmissions: u64,
    /// Retransmissions alone (charged to [`TrafficLayer::Retransmit`]).
    pub retransmissions: u64,
    /// The last node the packet reached.
    pub reached: NodeId,
    /// The hop that exhausted its retry budget, when delivery failed.
    pub failed_hop: Option<(NodeId, NodeId)>,
    /// Elapsed virtual time of the delivery, in seconds. Failed deliveries
    /// still accrue the time spent before ARQ gave up.
    pub latency: f64,
    /// Whether this delivery travelled a detour route (recomputed around
    /// failed or suspect nodes) rather than the leg's original path.
    pub detour: bool,
}

impl DeliveryOutcome {
    /// A loss-free delivery along `path` that charged `transmissions`.
    ///
    /// # Panics
    ///
    /// Panics on an empty path (paths always contain at least the source).
    pub fn delivered_clean(path: &[NodeId], transmissions: u64) -> Self {
        DeliveryOutcome {
            delivered: true,
            transmissions,
            retransmissions: 0,
            reached: *path.last().expect("path contains at least the source"),
            failed_hop: None,
            latency: 0.0,
            detour: false,
        }
    }
}

/// The outcome of sending `copies` reply packets back along a path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReverseDelivery {
    /// Copies that made it all the way back.
    pub delivered_copies: u64,
    /// Total transmissions charged across all copies.
    pub transmissions: u64,
    /// Retransmissions alone.
    pub retransmissions: u64,
    /// Elapsed virtual time of the whole fan-out (copies overlap in
    /// flight; shared senders serialize), in seconds.
    pub latency: f64,
}

/// Buckets in [`DeliveryStats::attempts_histogram`]: transmissions-per-hop
/// counts 1..=8, with the last bucket absorbing 9 and above.
pub const ATTEMPT_BUCKETS: usize = 9;

/// Cumulative link-layer delivery statistics for one transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeliveryStats {
    /// Path-level deliveries attempted.
    pub deliveries: u64,
    /// Path-level deliveries that failed (some hop exhausted its budget).
    pub deliveries_failed: u64,
    /// Distinct hop attempts (self-hops excluded).
    pub hop_attempts: u64,
    /// Hops that exhausted the retry budget.
    pub hops_failed: u64,
    /// Total transmissions.
    pub transmissions: u64,
    /// Retransmissions alone.
    pub retransmissions: u64,
    /// Per-hop attempt histogram: bucket `i` counts hops that took `i + 1`
    /// transmissions (the last bucket absorbs ≥ [`ATTEMPT_BUCKETS`]).
    pub attempts_histogram: [u64; ATTEMPT_BUCKETS],
    /// Routes recomputed around failed or suspect nodes.
    pub detour_routes: u64,
}

impl DeliveryStats {
    /// Fraction of path-level deliveries that succeeded (1.0 when none
    /// were attempted).
    pub fn delivery_rate(&self) -> f64 {
        if self.deliveries == 0 {
            1.0
        } else {
            (self.deliveries - self.deliveries_failed) as f64 / self.deliveries as f64
        }
    }

    /// Retransmissions per first-attempt transmission — the loss tax on
    /// every useful message (0.0 for a perfect link).
    pub fn retransmission_overhead(&self) -> f64 {
        let first_attempts = self.transmissions - self.retransmissions;
        if first_attempts == 0 {
            0.0
        } else {
            self.retransmissions as f64 / first_attempts as f64
        }
    }

    /// Folds one hop's transmission count into the attempt histogram.
    pub(crate) fn record_hop_attempts(&mut self, transmissions: u64) {
        if transmissions == 0 {
            return;
        }
        let bucket = (transmissions as usize).min(ATTEMPT_BUCKETS) - 1;
        self.attempts_histogram[bucket] += 1;
    }
}

/// A decorator that subjects every delivery of the wrapped [`Transport`]
/// to per-hop loss with bounded ARQ.
///
/// Routing (`route_to_node` / `route_to_location`), rebuilds, and the
/// ledger all delegate to the inner transport; only the `deliver*` methods
/// change behaviour. The loss process is deterministic in
/// [`LossyConfig::seed`].
///
/// # Examples
///
/// ```
/// use pool_gpsr::Planarization;
/// use pool_netsim::deployment::Deployment;
/// use pool_netsim::topology::Topology;
/// use pool_transport::{LossyConfig, LossyTransport, TrafficLayer, Transport, TransportKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let deployment = Deployment::paper_setting(300, 40.0, 20.0, 7)?;
/// let topology = Topology::build(deployment.nodes(), 40.0)?;
/// let inner = TransportKind::Gpsr.build(&topology, Planarization::Gabriel);
/// let mut lossy = LossyTransport::wrap(inner, LossyConfig::fixed(0.9, 42));
/// let (from, to) = (topology.nodes()[0].id, topology.nodes()[100].id);
/// let route = lossy.route_to_node(&topology, from, to)?;
/// let outcome = lossy.deliver(&topology, &route.path, TrafficLayer::Forward);
/// assert!(outcome.transmissions >= route.hops() as u64 || !outcome.delivered);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LossyTransport {
    inner: Box<dyn Transport>,
    config: LossyConfig,
    rng: StdRng,
    stats: DeliveryStats,
    adaptive: Option<AdaptiveState>,
}

impl LossyTransport {
    /// Wraps `inner` with the loss process described by `config`.
    pub fn wrap(inner: Box<dyn Transport>, config: LossyConfig) -> Self {
        LossyTransport {
            inner,
            config,
            rng: StdRng::seed_from_u64(config.seed),
            stats: DeliveryStats::default(),
            adaptive: None,
        }
    }

    /// Wraps `inner` with the loss process plus adaptive recovery: EWMA
    /// link estimation, exponential backoff priced on the virtual clock,
    /// and a passive failure detector whose suspects are detoured around
    /// and evicted from route memos.
    pub fn wrap_adaptive(
        inner: Box<dyn Transport>,
        config: LossyConfig,
        recovery: RecoveryConfig,
    ) -> Self {
        let mut t = LossyTransport::wrap(inner, config);
        t.adaptive = Some(AdaptiveState::new(recovery));
        t
    }

    /// The loss configuration.
    pub fn config(&self) -> LossyConfig {
        self.config
    }

    /// The adaptive-recovery state, when recovery is enabled.
    pub fn adaptive(&self) -> Option<&AdaptiveState> {
        self.adaptive.as_ref()
    }

    /// Attempts one hop with ARQ. Returns `(delivered, transmissions,
    /// retransmissions, backoff)`; self-hops are free and always succeed.
    ///
    /// The RNG draw and ledger charge order here is the determinism-
    /// critical invariant: with recovery disabled it reproduces the
    /// original implementation bit for bit. Recovery adds backoff delays
    /// and estimator updates around the draws, never extra draws.
    fn deliver_hop(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
        layer: TrafficLayer,
    ) -> (bool, u64, u64, f64) {
        if from == to {
            return (true, 0, 0, 0.0);
        }
        let p = self.config.quality.prr(topology.distance(from, to)).clamp(0.0, 1.0);
        self.stats.hop_attempts += 1;
        let mut transmissions = 0u64;
        let mut backoff = 0.0f64;
        for attempt in 0..=self.config.retry_budget {
            if let Some(ad) = &self.adaptive {
                backoff += ad.backoff_delay((from, to), attempt);
            }
            let charge_layer = if attempt == 0 { layer } else { TrafficLayer::Retransmit };
            self.inner.ledger_mut().charge_hop(from, to, charge_layer);
            transmissions += 1;
            let received = self.rng.gen_bool(p);
            if let Some(ad) = &mut self.adaptive {
                ad.observe((from, to), received);
            }
            if received {
                if let Some(ad) = &mut self.adaptive {
                    ad.hop_delivered((from, to));
                }
                self.stats.transmissions += transmissions;
                self.stats.retransmissions += transmissions - 1;
                self.stats.record_hop_attempts(transmissions);
                return (true, transmissions, transmissions - 1, backoff);
            }
        }
        self.stats.hops_failed += 1;
        self.stats.transmissions += transmissions;
        self.stats.retransmissions += transmissions - 1;
        self.stats.record_hop_attempts(transmissions);
        // A failed delivery just proved this receiver unreachable: drop any
        // memoized routes through it now rather than waiting for the next
        // generation bump. Eviction never changes charges, only recompute.
        self.inner.evict_routes_through(to);
        if let Some(ad) = &mut self.adaptive {
            ad.hop_exhausted((from, to));
        }
        (false, transmissions, transmissions - 1, backoff)
    }

    /// Charges one path-level delivery attempt hop by hop (the RNG draw
    /// and ledger charge order of the original implementation), collecting
    /// the per-hop transmission counts so the caller can time the leg
    /// afterwards without touching that order.
    fn walk(
        &mut self,
        topology: &Topology,
        path: &[NodeId],
        layer: TrafficLayer,
    ) -> (DeliveryOutcome, Vec<crate::Hop>) {
        self.stats.deliveries += 1;
        let mut transmissions = 0u64;
        let mut retransmissions = 0u64;
        let mut hops = Vec::new();
        for w in path.windows(2) {
            let (ok, t, r, backoff) = self.deliver_hop(topology, w[0], w[1], layer);
            if t > 0 {
                hops.push(crate::Hop { from: w[0], to: w[1], transmissions: t, backoff });
            }
            transmissions += t;
            retransmissions += r;
            if !ok {
                self.stats.deliveries_failed += 1;
                let outcome = DeliveryOutcome {
                    delivered: false,
                    transmissions,
                    retransmissions,
                    reached: w[0],
                    failed_hop: Some((w[0], w[1])),
                    latency: 0.0,
                    detour: false,
                };
                return (outcome, hops);
            }
        }
        let outcome = DeliveryOutcome {
            delivered: true,
            transmissions,
            retransmissions,
            reached: *path.last().expect("path contains at least the source"),
            failed_hop: None,
            latency: 0.0,
            detour: false,
        };
        (outcome, hops)
    }

    /// Merges the failure detector's suspects into an exclusion set,
    /// keeping the endpoints routable.
    fn merged_exclusions(&self, from: NodeId, to: NodeId, excluded: &[NodeId]) -> Vec<NodeId> {
        let mut merged: Vec<NodeId> =
            excluded.iter().copied().filter(|&n| n != from && n != to).collect();
        if let Some(ad) = &self.adaptive {
            for s in ad.suspects() {
                if s != from && s != to && !merged.contains(&s) {
                    merged.push(s);
                }
            }
        }
        merged
    }
}

impl Transport for LossyTransport {
    fn route_to_node(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
    ) -> Result<Arc<Route>, RouteError> {
        self.inner.route_to_node(topology, from, to)
    }

    fn route_to_location(
        &mut self,
        topology: &Topology,
        from: NodeId,
        target: Point,
    ) -> Result<Arc<Route>, RouteError> {
        self.inner.route_to_location(topology, from, target)
    }

    fn route_to_node_avoiding(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
        excluded: &[NodeId],
    ) -> Result<Arc<Route>, RouteError> {
        let merged = self.merged_exclusions(from, to, excluded);
        if merged.is_empty() {
            return self.inner.route_to_node(topology, from, to);
        }
        let route = self.inner.route_to_node_avoiding(topology, from, to, &merged)?;
        self.stats.detour_routes += 1;
        Ok(route)
    }

    fn evict_routes_through(&mut self, node: NodeId) -> u64 {
        self.inner.evict_routes_through(node)
    }

    fn rebuild(&mut self, topology: &Topology) {
        // Old link estimates and suspicions describe the old topology.
        if let Some(ad) = &mut self.adaptive {
            ad.reset();
        }
        self.inner.rebuild(topology);
    }

    fn generation(&self) -> u64 {
        self.inner.generation()
    }

    fn ledger(&self) -> &crate::TrafficLedger {
        self.inner.ledger()
    }

    fn ledger_mut(&mut self) -> &mut crate::TrafficLedger {
        self.inner.ledger_mut()
    }

    fn clock(&self) -> &crate::VirtualClock {
        self.inner.clock()
    }

    fn clock_mut(&mut self) -> &mut crate::VirtualClock {
        self.inner.clock_mut()
    }

    fn kind(&self) -> TransportKind {
        self.inner.kind()
    }

    fn deliver(
        &mut self,
        topology: &Topology,
        path: &[NodeId],
        layer: TrafficLayer,
    ) -> DeliveryOutcome {
        let (mut outcome, hops) = self.walk(topology, path, layer);
        outcome.latency = self.clock_mut().time_leg(&hops);
        outcome
    }

    fn deliver_reverse(
        &mut self,
        topology: &Topology,
        path: &[NodeId],
        copies: u64,
        layer: TrafficLayer,
    ) -> ReverseDelivery {
        let back: Vec<NodeId> = path.iter().rev().copied().collect();
        let mut out = ReverseDelivery::default();
        let mut legs = Vec::with_capacity(copies as usize);
        for _ in 0..copies {
            let (o, hops) = self.walk(topology, &back, layer);
            if o.delivered {
                out.delivered_copies += 1;
            }
            out.transmissions += o.transmissions;
            out.retransmissions += o.retransmissions;
            legs.push(hops);
        }
        out.latency = self.clock_mut().time_fanout(&legs);
        out
    }

    fn delivery_stats(&self) -> DeliveryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_gpsr::Planarization;
    use pool_netsim::deployment::Deployment;

    fn topo(seed: u64) -> Topology {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(300, 40.0, 20.0, s).unwrap();
            let t = Topology::build(dep.nodes(), 40.0).unwrap();
            if t.is_connected() {
                return t;
            }
            s += 4096;
        }
    }

    fn endpoints(t: &Topology) -> (NodeId, NodeId) {
        (t.nodes()[0].id, t.nodes()[t.len() - 1].id)
    }

    #[test]
    fn perfect_link_charges_exactly_like_the_wrapped_transport() {
        let t = topo(1);
        let (from, to) = endpoints(&t);
        let mut plain = TransportKind::Gpsr.build(&t, Planarization::Gabriel);
        let mut lossy = LossyTransport::wrap(
            TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            LossyConfig::fixed(1.0, 9),
        );
        let route = plain.route_to_node(&t, from, to).unwrap();
        let plain_out = plain.deliver(&t, &route.path, TrafficLayer::Insert);
        let lossy_route = lossy.route_to_node(&t, from, to).unwrap();
        let lossy_out = lossy.deliver(&t, &lossy_route.path, TrafficLayer::Insert);
        assert_eq!(plain_out, lossy_out);
        assert_eq!(plain.ledger(), lossy.ledger());
        let pr = plain.deliver_reverse(&t, &route.path, 3, TrafficLayer::Reply);
        let lr = lossy.deliver_reverse(&t, &lossy_route.path, 3, TrafficLayer::Reply);
        assert_eq!(pr, lr);
        assert_eq!(plain.ledger(), lossy.ledger());
    }

    #[test]
    fn retransmissions_land_in_the_retransmit_layer() {
        let t = topo(2);
        let (from, to) = endpoints(&t);
        let mut lossy = LossyTransport::wrap(
            TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            LossyConfig::fixed(0.5, 11).with_retry_budget(64),
        );
        let route = lossy.route_to_node(&t, from, to).unwrap();
        let mut out = DeliveryOutcome::delivered_clean(&route.path, 0);
        // Repeat until the loss process actually retransmits at least once.
        for _ in 0..20 {
            out = lossy.deliver(&t, &route.path, TrafficLayer::Forward);
            assert!(out.delivered, "budget 64 at p=0.5 must not fail");
            if out.retransmissions > 0 {
                break;
            }
        }
        assert!(out.retransmissions > 0, "p = 0.5 never dropped a frame in 20 deliveries");
        let ledger = lossy.ledger();
        assert_eq!(
            ledger.layer_total(TrafficLayer::Retransmit),
            lossy.delivery_stats().retransmissions
        );
        assert_eq!(
            ledger.layer_total(TrafficLayer::Forward)
                + ledger.layer_total(TrafficLayer::Retransmit),
            ledger.total_messages()
        );
    }

    #[test]
    fn exhausted_budget_reports_the_failed_hop() {
        let t = topo(3);
        let (from, to) = endpoints(&t);
        // p small enough that a multi-hop path with zero retries fails fast.
        let mut lossy = LossyTransport::wrap(
            TransportKind::Gpsr.build(&t, Planarization::Gabriel),
            LossyConfig::fixed(0.05, 13).with_retry_budget(0),
        );
        let route = lossy.route_to_node(&t, from, to).unwrap();
        assert!(route.hops() >= 2, "endpoints should be multiple hops apart");
        let out = lossy.deliver(&t, &route.path, TrafficLayer::Insert);
        assert!(!out.delivered);
        let (hf, ht) = out.failed_hop.expect("failed delivery names its hop");
        assert!(route.path.contains(&hf) && route.path.contains(&ht));
        assert_eq!(out.reached, hf);
        assert!(lossy.delivery_stats().deliveries_failed >= 1);
    }

    #[test]
    fn deliveries_are_deterministic_in_the_seed() {
        let t = topo(4);
        let (from, to) = endpoints(&t);
        let run = |seed: u64| {
            let mut lossy = LossyTransport::wrap(
                TransportKind::Gpsr.build(&t, Planarization::Gabriel),
                LossyConfig::model(PrrModel::new(15.0, 42.0), seed),
            );
            let route = lossy.route_to_node(&t, from, to).unwrap();
            let outs: Vec<DeliveryOutcome> =
                (0..10).map(|_| lossy.deliver(&t, &route.path, TrafficLayer::Forward)).collect();
            (outs, lossy.ledger().clone())
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21).1, run(22).1, "different seeds should differ on a lossy model");
    }
}
