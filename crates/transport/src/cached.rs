//! The memoizing transport: GPSR routes cached per endpoint pair.

use crate::clock::{LatencyModel, VirtualClock};
use crate::{TrafficLedger, Transport, TransportKind};
use pool_gpsr::{Gpsr, Planarization, Route, RouteError};
use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use std::collections::HashMap;
use std::sync::Arc;

/// A [`Transport`] that memoizes delivered GPSR routes.
///
/// GPSR is deterministic over a fixed planar graph, so the route between a
/// given endpoint pair never changes until the topology does. Repeated
/// query workloads (the fig. 6/7 experiments re-route sink → splitter →
/// index node for every query) therefore pay the face-traversal cost once
/// per pair; subsequent lookups are a `HashMap` hit returning the shared
/// [`Arc<Route>`].
///
/// Invalidation: [`Transport::rebuild`] clears both memo tables and bumps
/// the generation counter, so no route ever crosses a topology change.
/// Only `Ok` routes are cached — errors are recomputed, keeping failure
/// semantics identical to [`crate::GpsrTransport`]. Charging is unaffected:
/// a cache hit is charged exactly like a fresh route.
#[derive(Debug, Clone)]
pub struct CachedTransport {
    gpsr: Gpsr,
    planarization: Planarization,
    ledger: TrafficLedger,
    clock: VirtualClock,
    generation: u64,
    node_routes: HashMap<(NodeId, NodeId), Arc<Route>>,
    location_routes: HashMap<(NodeId, u64, u64), Arc<Route>>,
    hits: u64,
    misses: u64,
}

impl CachedTransport {
    /// Builds the transport over `topology` with empty memo tables.
    pub fn new(topology: &Topology, planarization: Planarization) -> Self {
        CachedTransport {
            gpsr: Gpsr::new(topology, planarization),
            planarization,
            ledger: TrafficLedger::new(topology.nodes().len()),
            clock: VirtualClock::new(topology.nodes().len(), LatencyModel::default()),
            generation: 0,
            node_routes: HashMap::new(),
            location_routes: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of memoized routes (node-addressed + location-addressed).
    pub fn cached_routes(&self) -> usize {
        self.node_routes.len() + self.location_routes.len()
    }

    /// `(hits, misses)` since construction (not reset by rebuild).
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

impl Transport for CachedTransport {
    fn route_to_node(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
    ) -> Result<Arc<Route>, RouteError> {
        if let Some(route) = self.node_routes.get(&(from, to)) {
            self.hits += 1;
            return Ok(Arc::clone(route));
        }
        self.misses += 1;
        let route = Arc::new(self.gpsr.route_to_node(topology, from, to)?);
        self.node_routes.insert((from, to), Arc::clone(&route));
        Ok(route)
    }

    fn route_to_location(
        &mut self,
        topology: &Topology,
        from: NodeId,
        target: Point,
    ) -> Result<Arc<Route>, RouteError> {
        let key = (from, target.x.to_bits(), target.y.to_bits());
        if let Some(route) = self.location_routes.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(route));
        }
        self.misses += 1;
        let route = Arc::new(self.gpsr.route(topology, from, target)?);
        self.location_routes.insert(key, Arc::clone(&route));
        Ok(route)
    }

    fn rebuild(&mut self, topology: &Topology) {
        self.gpsr = Gpsr::new(topology, self.planarization);
        self.node_routes.clear();
        self.location_routes.clear();
        // Joins grow the network; the ledger and clock must keep every
        // node id addressable (counters for existing nodes are preserved).
        self.ledger.grow_to(topology.len());
        self.clock.grow_to(topology.len());
        self.generation += 1;
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut TrafficLedger {
        &mut self.ledger
    }

    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn clock_mut(&mut self) -> &mut VirtualClock {
        &mut self.clock
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpsrTransport;
    use pool_netsim::deployment::Deployment;

    fn setup(seed: u64) -> Topology {
        let deployment = Deployment::paper_setting(200, 40.0, 20.0, seed).expect("deployment");
        Topology::build(deployment.nodes(), 40.0).expect("topology")
    }

    #[test]
    fn cache_hit_returns_identical_route() {
        let topology = setup(5);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let (a, b) = (topology.nodes()[0].id, topology.nodes()[150].id);
        let first = cached.route_to_node(&topology, a, b).expect("route");
        let second = cached.route_to_node(&topology, a, b).expect("route");
        assert_eq!(first.path, second.path);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the memoized route");
        assert_eq!(cached.hit_stats(), (1, 1));
        assert_eq!(cached.cached_routes(), 1);
    }

    #[test]
    fn cached_routes_match_fresh_gpsr() {
        let topology = setup(9);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let mut fresh = GpsrTransport::new(&topology, Planarization::Gabriel);
        let nodes = topology.nodes();
        for i in (0..nodes.len()).step_by(17) {
            let (a, b) = (nodes[i].id, nodes[(i * 7 + 3) % nodes.len()].id);
            // Route twice through the cache: miss then hit.
            let _ = cached.route_to_node(&topology, a, b);
            let via_cache = cached.route_to_node(&topology, a, b);
            let via_gpsr = fresh.route_to_node(&topology, a, b);
            match (via_cache, via_gpsr) {
                (Ok(c), Ok(g)) => assert_eq!(c.path, g.path),
                (Err(c), Err(g)) => assert_eq!(c, g),
                (c, g) => panic!("cache/fresh disagree: {c:?} vs {g:?}"),
            }
        }
    }

    #[test]
    fn location_routes_are_memoized_per_target_bits() {
        let topology = setup(3);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let from = topology.nodes()[0].id;
        let target = Point::new(31.0, 12.5);
        let first = cached.route_to_location(&topology, from, target).expect("route");
        let second = cached.route_to_location(&topology, from, target).expect("route");
        assert!(Arc::ptr_eq(&first, &second));
        let other = cached.route_to_location(&topology, from, Point::new(31.0, 12.6));
        assert!(other.is_ok());
        assert_eq!(cached.cached_routes(), 2);
    }

    #[test]
    fn rebuild_clears_memo_and_bumps_generation() {
        let topology = setup(7);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let (a, b) = (topology.nodes()[1].id, topology.nodes()[99].id);
        let _ = cached.route_to_node(&topology, a, b);
        assert_eq!(cached.cached_routes(), 1);
        assert_eq!(cached.generation(), 0);
        cached.rebuild(&topology);
        assert_eq!(cached.cached_routes(), 0);
        assert_eq!(cached.generation(), 1);
    }

    /// Satellite regression: joins and moves invalidate the memo just like
    /// failures do. After a route-interior node moves away, the refreshed
    /// route must use only links that exist in the *new* topology — no
    /// stale route ever crosses a moved-away link.
    #[test]
    fn rebuild_after_join_and_move_leaves_no_stale_links() {
        let topology = setup(13);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let (a, b) = (topology.nodes()[2].id, topology.nodes()[170].id);
        let stale = cached.route_to_node(&topology, a, b).expect("route");
        assert!(stale.path.len() > 2, "endpoints must not be direct neighbors");

        // A join grows the network and must bump the generation.
        let (grown, joiner) = topology.with_node(Point::new(5.0, 5.0));
        cached.rebuild(&grown);
        assert_eq!(cached.generation(), 1);
        assert_eq!(cached.cached_routes(), 0, "join must clear the memo");
        assert_eq!(cached.ledger().stats().per_node().len(), grown.len());
        assert_eq!(cached.clock().tx_counts().len(), grown.len());
        // The joiner is routable immediately.
        cached.route_to_node(&grown, joiner, b).expect("route from joiner");

        // Move a route-interior relay far outside radio range of its old
        // neighborhood: every link it carried is now dead.
        let relay = stale.path[stale.path.len() / 2];
        let moved = grown.with_moved_node(relay, Point::new(-500.0, -500.0));
        cached.rebuild(&moved);
        assert_eq!(cached.generation(), 2, "move must bump the generation");
        assert_eq!(cached.cached_routes(), 0, "move must clear the memo");
        let fresh = cached.route_to_node(&moved, a, b).expect("route after move");
        for w in fresh.path.windows(2) {
            assert!(
                w[0] == w[1] || moved.are_neighbors(w[0], w[1]),
                "route crosses a link that no longer exists: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(!fresh.path.contains(&relay), "the moved-away relay cannot appear on the route");
    }

    #[test]
    fn charging_through_cache_matches_reference() {
        use crate::TrafficLayer;
        let topology = setup(11);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let mut fresh = GpsrTransport::new(&topology, Planarization::Gabriel);
        let (a, b) = (topology.nodes()[4].id, topology.nodes()[180].id);
        for _ in 0..3 {
            let rc = cached.route_to_node(&topology, a, b).expect("route");
            cached.charge(&rc.path, TrafficLayer::Forward);
            let rg = fresh.route_to_node(&topology, a, b).expect("route");
            fresh.charge(&rg.path, TrafficLayer::Forward);
        }
        assert_eq!(cached.ledger(), fresh.ledger());
    }
}
