//! The memoizing transport: GPSR routes cached per endpoint pair.

use crate::clock::{LatencyModel, VirtualClock};
use crate::lru::{CacheStats, ShardedLru};
use crate::{TrafficLedger, Transport, TransportKind};
use pool_gpsr::{Gpsr, Planarization, Route, RouteError};
use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use std::sync::Arc;

/// Memo key: either a node-addressed or a location-addressed route.
///
/// Location targets are keyed by their coordinate bit patterns, so two
/// targets memoize to the same route only when they are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum RouteKey {
    /// `route_to_node(from, to)`.
    Node(NodeId, NodeId),
    /// `route_to_location(from, target)` with `target` as raw f64 bits.
    Location(NodeId, u64, u64),
}

/// Default memo capacity: 64k routes (a few MiB of path data) covers the
/// full working set of every paper workload while bounding the worst case.
const DEFAULT_CAPACITY: usize = 1 << 16;

/// A [`Transport`] that memoizes delivered GPSR routes.
///
/// GPSR is deterministic over a fixed planar graph, so the route between a
/// given endpoint pair never changes until the topology does. Repeated
/// query workloads (the fig. 6/7 experiments re-route sink → splitter →
/// index node for every query) therefore pay the face-traversal cost once
/// per pair; subsequent lookups are a memo hit returning the shared
/// [`Arc<Route>`].
///
/// The memo is a bounded [`ShardedLru`] rather than an unbounded map: on an
/// n-node deployment there are O(n²) endpoint pairs, which at 100k nodes
/// would otherwise grow without limit. When the memo is full the least
/// recently used route in the key's shard is evicted (counted in
/// [`CachedTransport::hit_stats`]); an evicted route is simply recomputed
/// on its next use, so eviction affects wall-clock only — message and
/// latency accounting are identical at any capacity.
///
/// Invalidation: [`Transport::rebuild`] clears the memo and bumps the
/// generation counter, so no route ever crosses a topology change.
/// Only `Ok` routes are cached — errors are recomputed, keeping failure
/// semantics identical to [`crate::GpsrTransport`]. Charging is unaffected:
/// a cache hit is charged exactly like a fresh route.
#[derive(Debug, Clone)]
pub struct CachedTransport {
    gpsr: Gpsr,
    planarization: Planarization,
    ledger: TrafficLedger,
    clock: VirtualClock,
    generation: u64,
    routes: ShardedLru<RouteKey, Arc<Route>>,
    hits: u64,
    misses: u64,
}

impl CachedTransport {
    /// Builds the transport over `topology` with the default memo capacity
    /// (65 536 routes).
    pub fn new(topology: &Topology, planarization: Planarization) -> Self {
        Self::with_capacity(topology, planarization, DEFAULT_CAPACITY)
    }

    /// Builds the transport with a memo bounded to `capacity` routes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(
        topology: &Topology,
        planarization: Planarization,
        capacity: usize,
    ) -> Self {
        CachedTransport {
            gpsr: Gpsr::new(topology, planarization),
            planarization,
            ledger: TrafficLedger::new(topology.nodes().len()),
            clock: VirtualClock::new(topology.nodes().len(), LatencyModel::default()),
            generation: 0,
            routes: ShardedLru::new(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of memoized routes (node-addressed + location-addressed);
    /// never exceeds [`CachedTransport::capacity`].
    pub fn cached_routes(&self) -> usize {
        self.routes.len()
    }

    /// The memo's route capacity bound.
    pub fn capacity(&self) -> usize {
        self.routes.capacity()
    }

    /// Hit/miss/eviction counters since construction (not reset by
    /// rebuild).
    pub fn hit_stats(&self) -> CacheStats {
        CacheStats { hits: self.hits, misses: self.misses, evictions: self.routes.evictions() }
    }

    /// Number of memoized routes whose path traverses `node` (test and
    /// diagnostics hook for targeted invalidation).
    pub fn routes_through(&mut self, node: NodeId) -> usize {
        let mut count = 0;
        self.routes.retain(|_, route| {
            if route.path.contains(&node) {
                count += 1;
            }
            true
        });
        count
    }
}

impl Transport for CachedTransport {
    fn route_to_node(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
    ) -> Result<Arc<Route>, RouteError> {
        let key = RouteKey::Node(from, to);
        if let Some(route) = self.routes.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(route));
        }
        self.misses += 1;
        let route = Arc::new(self.gpsr.route_to_node(topology, from, to)?);
        self.routes.insert(key, Arc::clone(&route));
        Ok(route)
    }

    fn route_to_location(
        &mut self,
        topology: &Topology,
        from: NodeId,
        target: Point,
    ) -> Result<Arc<Route>, RouteError> {
        let key = RouteKey::Location(from, target.x.to_bits(), target.y.to_bits());
        if let Some(route) = self.routes.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(route));
        }
        self.misses += 1;
        let route = Arc::new(self.gpsr.route(topology, from, target)?);
        self.routes.insert(key, Arc::clone(&route));
        Ok(route)
    }

    fn route_to_node_avoiding(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
        excluded: &[NodeId],
    ) -> Result<Arc<Route>, RouteError> {
        // Detour routes describe a transient suspicion, never the
        // topology — they bypass the memo entirely.
        self.gpsr.route_to_node_avoiding(topology, from, to, excluded).map(Arc::new)
    }

    fn evict_routes_through(&mut self, node: NodeId) -> u64 {
        // Targeted invalidation: drop exactly the memoized routes crossing
        // `node`, not the whole generation. Cheaper than a rebuild and
        // cost-neutral — an evicted route is recomputed identically.
        self.routes.retain(|_, route| !route.path.contains(&node)) as u64
    }

    fn rebuild(&mut self, topology: &Topology) {
        self.gpsr = Gpsr::new(topology, self.planarization);
        self.routes.clear();
        // Joins grow the network; the ledger and clock must keep every
        // node id addressable (counters for existing nodes are preserved).
        self.ledger.grow_to(topology.len());
        self.clock.grow_to(topology.len());
        self.generation += 1;
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut TrafficLedger {
        &mut self.ledger
    }

    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn clock_mut(&mut self) -> &mut VirtualClock {
        &mut self.clock
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Cached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpsrTransport;
    use pool_netsim::deployment::Deployment;

    fn setup(seed: u64) -> Topology {
        let deployment = Deployment::paper_setting(200, 40.0, 20.0, seed).expect("deployment");
        Topology::build(deployment.nodes(), 40.0).expect("topology")
    }

    #[test]
    fn cache_hit_returns_identical_route() {
        let topology = setup(5);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let (a, b) = (topology.nodes()[0].id, topology.nodes()[150].id);
        let first = cached.route_to_node(&topology, a, b).expect("route");
        let second = cached.route_to_node(&topology, a, b).expect("route");
        assert_eq!(first.path, second.path);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the memoized route");
        assert_eq!(cached.hit_stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(cached.cached_routes(), 1);
    }

    #[test]
    fn cached_routes_match_fresh_gpsr() {
        let topology = setup(9);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let mut fresh = GpsrTransport::new(&topology, Planarization::Gabriel);
        let nodes = topology.nodes();
        for i in (0..nodes.len()).step_by(17) {
            let (a, b) = (nodes[i].id, nodes[(i * 7 + 3) % nodes.len()].id);
            // Route twice through the cache: miss then hit.
            let _ = cached.route_to_node(&topology, a, b);
            let via_cache = cached.route_to_node(&topology, a, b);
            let via_gpsr = fresh.route_to_node(&topology, a, b);
            match (via_cache, via_gpsr) {
                (Ok(c), Ok(g)) => assert_eq!(c.path, g.path),
                (Err(c), Err(g)) => assert_eq!(c, g),
                (c, g) => panic!("cache/fresh disagree: {c:?} vs {g:?}"),
            }
        }
    }

    #[test]
    fn location_routes_are_memoized_per_target_bits() {
        let topology = setup(3);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let from = topology.nodes()[0].id;
        let target = Point::new(31.0, 12.5);
        let first = cached.route_to_location(&topology, from, target).expect("route");
        let second = cached.route_to_location(&topology, from, target).expect("route");
        assert!(Arc::ptr_eq(&first, &second));
        let other = cached.route_to_location(&topology, from, Point::new(31.0, 12.6));
        assert!(other.is_ok());
        assert_eq!(cached.cached_routes(), 2);
    }

    #[test]
    fn rebuild_clears_memo_and_bumps_generation() {
        let topology = setup(7);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let (a, b) = (topology.nodes()[1].id, topology.nodes()[99].id);
        let _ = cached.route_to_node(&topology, a, b);
        assert_eq!(cached.cached_routes(), 1);
        assert_eq!(cached.generation(), 0);
        cached.rebuild(&topology);
        assert_eq!(cached.cached_routes(), 0);
        assert_eq!(cached.generation(), 1);
    }

    /// Satellite regression: joins and moves invalidate the memo just like
    /// failures do. After a route-interior node moves away, the refreshed
    /// route must use only links that exist in the *new* topology — no
    /// stale route ever crosses a moved-away link.
    #[test]
    fn rebuild_after_join_and_move_leaves_no_stale_links() {
        let topology = setup(13);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let (a, b) = (topology.nodes()[2].id, topology.nodes()[170].id);
        let stale = cached.route_to_node(&topology, a, b).expect("route");
        assert!(stale.path.len() > 2, "endpoints must not be direct neighbors");

        // A join grows the network and must bump the generation.
        let (grown, joiner) = topology.with_node(Point::new(5.0, 5.0));
        cached.rebuild(&grown);
        assert_eq!(cached.generation(), 1);
        assert_eq!(cached.cached_routes(), 0, "join must clear the memo");
        assert_eq!(cached.ledger().stats().per_node().len(), grown.len());
        assert_eq!(cached.clock().tx_counts().len(), grown.len());
        // The joiner is routable immediately.
        cached.route_to_node(&grown, joiner, b).expect("route from joiner");

        // Move a route-interior relay far outside radio range of its old
        // neighborhood: every link it carried is now dead.
        let relay = stale.path[stale.path.len() / 2];
        let moved = grown.with_moved_node(relay, Point::new(-500.0, -500.0));
        cached.rebuild(&moved);
        assert_eq!(cached.generation(), 2, "move must bump the generation");
        assert_eq!(cached.cached_routes(), 0, "move must clear the memo");
        let fresh = cached.route_to_node(&moved, a, b).expect("route after move");
        for w in fresh.path.windows(2) {
            assert!(
                w[0] == w[1] || moved.are_neighbors(w[0], w[1]),
                "route crosses a link that no longer exists: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(!fresh.path.contains(&relay), "the moved-away relay cannot appear on the route");
    }

    #[test]
    fn charging_through_cache_matches_reference() {
        use crate::TrafficLayer;
        let topology = setup(11);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let mut fresh = GpsrTransport::new(&topology, Planarization::Gabriel);
        let (a, b) = (topology.nodes()[4].id, topology.nodes()[180].id);
        for _ in 0..3 {
            let rc = cached.route_to_node(&topology, a, b).expect("route");
            cached.charge(&rc.path, TrafficLayer::Forward);
            let rg = fresh.route_to_node(&topology, a, b).expect("route");
            fresh.charge(&rg.path, TrafficLayer::Forward);
        }
        assert_eq!(cached.ledger(), fresh.ledger());
    }

    /// Eviction must never change what a route *costs* — only whether it
    /// was recomputed. A capacity-1 cache thrashes on every alternating
    /// pair, so it exercises the eviction path constantly; its routes,
    /// ledger, and clock must still match the reference transport exactly.
    #[test]
    fn capacity_one_cache_matches_reference_costs_exactly() {
        use crate::TrafficLayer;
        let topology = setup(17);
        let mut cached = CachedTransport::with_capacity(&topology, Planarization::Gabriel, 1);
        let mut fresh = GpsrTransport::new(&topology, Planarization::Gabriel);
        let nodes = topology.nodes();
        let pairs: Vec<(NodeId, NodeId)> =
            (0..8).map(|i| (nodes[i * 13].id, nodes[(i * 31 + 57) % nodes.len()].id)).collect();
        for round in 0..3 {
            for &(a, b) in &pairs {
                let layer =
                    if round % 2 == 0 { TrafficLayer::Forward } else { TrafficLayer::Insert };
                match (cached.route_to_node(&topology, a, b), fresh.route_to_node(&topology, a, b))
                {
                    (Ok(rc), Ok(rg)) => {
                        assert_eq!(rc.path, rg.path);
                        cached.charge(&rc.path, layer);
                        fresh.charge(&rg.path, layer);
                    }
                    (Err(ec), Err(eg)) => assert_eq!(ec, eg),
                    (c, g) => panic!("capacity-1 cache diverged: {c:?} vs {g:?}"),
                }
                assert!(cached.cached_routes() <= 1);
            }
        }
        assert_eq!(cached.ledger(), fresh.ledger());
        assert_eq!(cached.clock().now(), fresh.clock().now());
        let stats = cached.hit_stats();
        assert!(stats.evictions > 0, "alternating pairs must thrash a capacity-1 memo");
    }

    /// Satellite regression: a failed delivery through a dead relay must
    /// evict exactly the memoized routes crossing it — other memos survive.
    #[test]
    fn evict_routes_through_is_targeted() {
        let topology = setup(19);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let nodes = topology.nodes();
        let (a, b) = (nodes[0].id, nodes[190].id);
        let victim_route = cached.route_to_node(&topology, a, b).expect("route");
        assert!(victim_route.path.len() > 2);
        let relay = victim_route.path[victim_route.path.len() / 2];
        // Memoize a second route that avoids the relay entirely.
        let (c, d) = nodes
            .iter()
            .flat_map(|x| nodes.iter().map(move |y| (x.id, y.id)))
            .find(|&(x, y)| {
                x != y
                    && cached
                        .gpsr
                        .route_to_node(&topology, x, y)
                        .map(|r| r.path.len() > 2 && !r.path.contains(&relay))
                        .unwrap_or(false)
            })
            .expect("some route avoids the relay");
        cached.route_to_node(&topology, c, d).expect("route");
        assert_eq!(cached.cached_routes(), 2);
        assert_eq!(cached.routes_through(relay), 1);

        let evicted = cached.evict_routes_through(relay);
        assert_eq!(evicted, 1, "exactly the route crossing the relay is dropped");
        assert_eq!(cached.cached_routes(), 1);
        assert_eq!(cached.routes_through(relay), 0);
        assert_eq!(cached.generation(), 0, "targeted eviction is not a rebuild");
        // The surviving memo still hits.
        let before = cached.hit_stats().hits;
        cached.route_to_node(&topology, c, d).expect("route");
        assert_eq!(cached.hit_stats().hits, before + 1);
    }

    /// Detour routes bypass the memo and avoid the excluded node.
    #[test]
    fn detour_routes_avoid_exclusions_and_are_not_memoized() {
        let topology = setup(23);
        let mut cached = CachedTransport::new(&topology, Planarization::Gabriel);
        let (a, b) = (topology.nodes()[0].id, topology.nodes()[195].id);
        let direct = cached.route_to_node(&topology, a, b).expect("route");
        assert!(direct.path.len() > 2);
        let relay = direct.path[direct.path.len() / 2];
        let memo_before = cached.cached_routes();
        match cached.route_to_node_avoiding(&topology, a, b, &[relay]) {
            Ok(detour) => {
                assert!(!detour.path.contains(&relay), "detour must avoid the exclusion");
                assert_eq!(detour.delivered, b);
            }
            Err(_) => {
                // The exclusion may genuinely disconnect the endpoints;
                // what matters is that nothing stale was served or stored.
            }
        }
        assert_eq!(cached.cached_routes(), memo_before, "detours are never memoized");
    }

    /// Acceptance soak: a small topology, a million lookups over more
    /// distinct keys than the memo holds. The memo must stay within its
    /// capacity bound the whole way and report the overflow as evictions.
    #[test]
    fn soak_million_lookups_stays_within_capacity() {
        let deployment = Deployment::paper_setting(100, 40.0, 20.0, 21).expect("deployment");
        let topology = Topology::build(deployment.nodes(), 40.0).expect("topology");
        let capacity = 512;
        let mut cached =
            CachedTransport::with_capacity(&topology, Planarization::Gabriel, capacity);
        let n = topology.nodes().len();
        // 100 nodes give ~10k endpoint pairs plus location keys — far more
        // distinct keys than 512 slots.
        for i in 0..1_000_000u64 {
            let from = topology.nodes()[(i * 7 % n as u64) as usize].id;
            if i % 4 == 0 {
                let target = Point::new((i % 39) as f64 + 0.5, (i % 19) as f64 + 0.25);
                let _ = cached.route_to_location(&topology, from, target);
            } else {
                let to = topology.nodes()[((i * 13 + 5) % n as u64) as usize].id;
                let _ = cached.route_to_node(&topology, from, to);
            }
            debug_assert!(cached.cached_routes() <= capacity);
        }
        assert!(cached.cached_routes() <= capacity, "memo exceeded its bound");
        let stats = cached.hit_stats();
        assert_eq!(stats.hits + stats.misses, 1_000_000);
        assert!(stats.evictions > 0, "soak must overflow a 512-route memo");
        assert!(stats.hits > 0, "the working set revisits keys; some must hit");
    }
}
