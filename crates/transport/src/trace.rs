//! Lightweight structured tracing of per-leg deliveries.
//!
//! Every networked operation in the storage schemes decomposes into *legs*
//! — one routed delivery (or reverse reply fan-out) between two endpoints.
//! The [`Tracer`] records one [`Span`] per leg: which operation it served,
//! the endpoints, the [`TrafficLayer`] it was charged to, the transmissions
//! spent (split into first attempts and ARQ retransmissions), and the
//! outcome. Together with the ledger's per-node×per-layer matrix this makes
//! a cost discrepancy diagnosable leg by leg instead of only visible as a
//! mismatched total.
//!
//! The tracer is a bounded ring buffer: it never grows without bound and
//! never perturbs message accounting (spans are recorded *after* the
//! transport has charged the ledger). It lives in the storage scheme, not
//! in the ledger, so ledger equality comparisons across transports stay
//! meaningful.

use crate::ledger::TrafficLayer;
use crate::lossy::{DeliveryOutcome, ReverseDelivery};
use pool_netsim::node::NodeId;
use std::collections::VecDeque;

/// The operation a traced leg served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// Event insertion (source → index node, sharing-chain walks).
    Insert,
    /// One-shot range query forwarding and replies.
    Query,
    /// Multi-query batch legs.
    Batch,
    /// Nearest-neighbor search legs.
    Nearest,
    /// Monitor installation/removal dissemination.
    Monitor,
    /// Push notification to a standing-query sink.
    Notify,
    /// Backup replication copy.
    Replicate,
    /// Post-failure migration/recovery.
    Repair,
}

impl TraceOp {
    /// Stable lowercase name.
    pub fn label(self) -> &'static str {
        match self {
            TraceOp::Insert => "insert",
            TraceOp::Query => "query",
            TraceOp::Batch => "batch",
            TraceOp::Nearest => "nearest",
            TraceOp::Monitor => "monitor",
            TraceOp::Notify => "notify",
            TraceOp::Replicate => "replicate",
            TraceOp::Repair => "repair",
        }
    }
}

/// How a traced leg ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The packet (or every reply copy) arrived.
    Delivered,
    /// The forward delivery stalled; the packet got as far as `reached`.
    Stalled {
        /// Last node the packet reached before ARQ gave up.
        reached: NodeId,
    },
    /// A reverse fan-out delivered only some of its copies.
    PartialCopies {
        /// Copies that made it all the way back.
        delivered: u64,
        /// Copies sent.
        sent: u64,
    },
}

/// One traced delivery leg.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Monotonic sequence number (global per tracer, survives eviction).
    pub seq: u64,
    /// The operation this leg served.
    pub op: TraceOp,
    /// Sending endpoint (for reverse legs: where the replies originate).
    pub origin: NodeId,
    /// Receiving endpoint.
    pub destination: NodeId,
    /// Layer the first attempts were charged to.
    pub layer: TrafficLayer,
    /// Total transmissions charged (first attempts + retransmissions).
    pub transmissions: u64,
    /// ARQ retransmissions alone.
    pub retransmissions: u64,
    /// Virtual time the leg launched, in seconds.
    pub start: f64,
    /// Virtual time the leg finished (`start + latency`), in seconds.
    pub end: f64,
    /// Whether the leg travelled a detour route (recomputed around failed
    /// or suspect nodes) instead of its original path.
    pub detour: bool,
    /// How the leg ended.
    pub outcome: SpanOutcome,
}

impl Span {
    /// Whether the leg fully succeeded.
    pub fn is_delivered(&self) -> bool {
        matches!(self.outcome, SpanOutcome::Delivered)
    }
}

/// Default ring-buffer capacity.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// A bounded ring buffer of [`Span`]s.
///
/// # Examples
///
/// ```
/// use pool_netsim::node::NodeId;
/// use pool_transport::trace::{SpanOutcome, TraceOp, Tracer};
/// use pool_transport::{DeliveryOutcome, TrafficLayer};
///
/// let mut tracer = Tracer::new(2);
/// let path = [NodeId(0), NodeId(1), NodeId(2)];
/// let mut outcome = DeliveryOutcome::delivered_clean(&path, 2);
/// outcome.latency = 0.003;
/// tracer.record_delivery(TraceOp::Insert, &path, TrafficLayer::Insert, &outcome, 0.003);
/// assert_eq!(tracer.spans().count(), 1);
/// let span = tracer.spans().next().unwrap();
/// assert!(span.is_delivered());
/// assert_eq!(span.start, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    spans: VecDeque<Span>,
    capacity: usize,
    next_seq: u64,
    evicted: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// Creates a tracer keeping at most `capacity` spans (older spans are
    /// evicted first). A zero capacity disables recording entirely.
    pub fn new(capacity: usize) -> Self {
        Tracer { spans: VecDeque::new(), capacity, next_seq: 0, evicted: 0 }
    }

    /// Records a span, evicting the oldest if the buffer is full.
    pub fn record(&mut self, mut span: Span) {
        span.seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            self.evicted += 1;
            return;
        }
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.evicted += 1;
        }
        self.spans.push_back(span);
    }

    /// Records the span of one forward delivery along `path`. `end` is the
    /// virtual clock reading after the delivery (the span's start is
    /// derived from the outcome's latency).
    pub fn record_delivery(
        &mut self,
        op: TraceOp,
        path: &[NodeId],
        layer: TrafficLayer,
        outcome: &DeliveryOutcome,
        end: f64,
    ) {
        let origin = *path.first().expect("paths contain at least the source");
        let destination = *path.last().expect("paths contain at least the source");
        self.record(Span {
            seq: 0,
            op,
            origin,
            destination,
            layer,
            transmissions: outcome.transmissions,
            retransmissions: outcome.retransmissions,
            start: end - outcome.latency,
            end,
            detour: outcome.detour,
            outcome: if outcome.delivered {
                SpanOutcome::Delivered
            } else {
                SpanOutcome::Stalled { reached: outcome.reached }
            },
        });
    }

    /// Records the span of a reverse fan-out of `copies` replies along
    /// `path` (the replies travel last-to-first). `end` is the virtual
    /// clock reading after the fan-out.
    pub fn record_reverse(
        &mut self,
        op: TraceOp,
        path: &[NodeId],
        copies: u64,
        layer: TrafficLayer,
        outcome: &ReverseDelivery,
        end: f64,
    ) {
        let origin = *path.last().expect("paths contain at least the source");
        let destination = *path.first().expect("paths contain at least the source");
        self.record(Span {
            seq: 0,
            op,
            origin,
            destination,
            layer,
            transmissions: outcome.transmissions,
            retransmissions: outcome.retransmissions,
            start: end - outcome.latency,
            end,
            detour: false,
            outcome: if outcome.delivered_copies == copies {
                SpanOutcome::Delivered
            } else {
                SpanOutcome::PartialCopies { delivered: outcome.delivered_copies, sent: copies }
            },
        });
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// The retained spans that did not fully deliver.
    pub fn failed_spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(|s| !s.is_delivered())
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans recorded in total, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Spans evicted from the ring buffer.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Drops all retained spans (sequence numbering continues).
    pub fn clear(&mut self) {
        self.evicted += self.spans.len() as u64;
        self.spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(op: TraceOp) -> Span {
        Span {
            seq: 0,
            op,
            origin: NodeId(0),
            destination: NodeId(1),
            layer: TrafficLayer::Forward,
            transmissions: 1,
            retransmissions: 0,
            start: 0.0,
            end: 0.0,
            detour: false,
            outcome: SpanOutcome::Delivered,
        }
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_keeps_sequence() {
        let mut tracer = Tracer::new(3);
        for _ in 0..5 {
            tracer.record(span(TraceOp::Query));
        }
        assert_eq!(tracer.len(), 3);
        assert_eq!(tracer.recorded(), 5);
        assert_eq!(tracer.evicted(), 2);
        let seqs: Vec<u64> = tracer.spans().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn reverse_spans_swap_endpoints_and_flag_partial_copies() {
        let mut tracer = Tracer::new(8);
        let path = [NodeId(3), NodeId(7), NodeId(9)];
        let partial = ReverseDelivery {
            delivered_copies: 1,
            transmissions: 5,
            retransmissions: 2,
            latency: 0.004,
        };
        tracer.record_reverse(TraceOp::Query, &path, 2, TrafficLayer::Reply, &partial, 0.01);
        let s = tracer.spans().next().unwrap();
        assert_eq!(s.origin, NodeId(9));
        assert_eq!(s.destination, NodeId(3));
        assert!((s.start - 0.006).abs() < 1e-12);
        assert_eq!(s.end, 0.01);
        assert_eq!(s.outcome, SpanOutcome::PartialCopies { delivered: 1, sent: 2 });
        assert_eq!(tracer.failed_spans().count(), 1);
    }

    #[test]
    fn stalled_deliveries_record_the_reached_node() {
        let mut tracer = Tracer::new(8);
        let path = [NodeId(0), NodeId(1), NodeId(2)];
        let stalled = DeliveryOutcome {
            delivered: false,
            transmissions: 9,
            retransmissions: 8,
            reached: NodeId(1),
            failed_hop: Some((NodeId(1), NodeId(2))),
            latency: 0.02,
            detour: false,
        };
        tracer.record_delivery(TraceOp::Insert, &path, TrafficLayer::Insert, &stalled, 0.02);
        let s = tracer.spans().next().unwrap();
        assert_eq!(s.outcome, SpanOutcome::Stalled { reached: NodeId(1) });
        assert_eq!(s.retransmissions, 8);
    }

    #[test]
    fn zero_capacity_disables_retention_but_counts() {
        let mut tracer = Tracer::new(0);
        tracer.record(span(TraceOp::Repair));
        assert!(tracer.is_empty());
        assert_eq!(tracer.recorded(), 1);
        assert_eq!(tracer.evicted(), 1);
    }
}
