//! The virtual clock: latency and queueing accounting for deliveries.
//!
//! The paper's evaluation counts messages; the ROADMAP's north star also
//! needs *time*. [`VirtualClock`] is the latency ledger that sits next to
//! the [`crate::TrafficLedger`]: every transmission a transport charges is
//! also timed — per-hop propagation latency plus a per-node queueing model
//! in which a busy sender serializes its transmissions (configurable
//! service time). Fan-out (reply copies, replication mirrors, per-cell
//! query legs) is driven through the deterministic
//! [`pool_netsim::schedule::EventQueue`], so branches overlap in virtual
//! time instead of summing serially, while transmissions that share a
//! sender still queue behind each other.
//!
//! Determinism contract: the clock advances on virtual quantities only
//! (hop counts, service times, seq-ordered event pops). Identical
//! workloads produce bit-identical timestamps on any machine and at any
//! bench `--jobs` count.

use pool_netsim::node::NodeId;
use pool_netsim::schedule::{EventQueue, SimTime};

/// The per-hop timing model.
///
/// Defaults match the former discrete-event simulator's 1 ms per-hop
/// latency, plus a 0.5 ms transmit service time (the slot a sender's radio
/// is occupied per transmission; queued transmissions wait for it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Propagation + reception latency of one hop, in seconds.
    pub hop_latency: f64,
    /// Time the sender's radio is busy per transmission, in seconds.
    pub service_time: f64,
}

impl LatencyModel {
    /// Creates a model with the given per-hop latency and service time.
    ///
    /// # Panics
    ///
    /// Panics if either duration is negative or not finite.
    pub fn new(hop_latency: f64, service_time: f64) -> Self {
        assert!(hop_latency.is_finite() && hop_latency >= 0.0, "invalid hop latency");
        assert!(service_time.is_finite() && service_time >= 0.0, "invalid service time");
        LatencyModel { hop_latency, service_time }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel { hop_latency: 1e-3, service_time: 0.5e-3 }
    }
}

/// One hop of a delivery, with the number of transmissions the link layer
/// actually made on it (1 for loss-free links; first attempt plus every
/// ARQ retransmission for lossy ones).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Transmissions made on this hop (≥ 1; every attempt pays its own
    /// service time and hop latency).
    pub transmissions: u64,
    /// Total ARQ backoff the sender waited on this hop, in seconds. Zero
    /// for fixed-timeout ARQ; adaptive recovery accrues exponential delays
    /// here so retries are no longer latency-free.
    pub backoff: f64,
}

impl Hop {
    /// A hop with `transmissions` attempts and no backoff delay.
    pub fn new(from: NodeId, to: NodeId, transmissions: u64) -> Self {
        Hop { from, to, transmissions, backoff: 0.0 }
    }
}

/// Event payload inside [`VirtualClock::time_fanout`]: which leg is ready
/// to process its next hop.
struct LegCursor {
    leg: usize,
    hop: usize,
}

/// The latency ledger: per-node busy state plus a monotone-per-operation
/// cursor of virtual time.
///
/// The cursor is *not* globally monotone: operations that fan out
/// bracket their branches by [`VirtualClock::seek`]ing back to the branch
/// point, so sibling branches start at the same instant. Per-node
/// `busy_until` state persists across seeks — a node transmitting on one
/// branch is still busy when a sibling branch reaches it, which is exactly
/// the queueing the model wants (shared senders serialize; disjoint
/// branches overlap).
#[derive(Debug, Clone, PartialEq)]
pub struct VirtualClock {
    model: LatencyModel,
    cursor: SimTime,
    busy_until: Vec<SimTime>,
    busy_time: Vec<f64>,
    tx: Vec<u64>,
    rx: Vec<u64>,
}

impl VirtualClock {
    /// Creates a clock for a network of `n` nodes.
    pub fn new(n: usize, model: LatencyModel) -> Self {
        VirtualClock {
            model,
            cursor: 0.0,
            busy_until: vec![0.0; n],
            busy_time: vec![0.0; n],
            tx: vec![0; n],
            rx: vec![0; n],
        }
    }

    /// The timing model.
    pub fn model(&self) -> LatencyModel {
        self.model
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.cursor
    }

    /// Moves the cursor to `t`. Backward seeks are how operations bracket
    /// fan-out: save [`VirtualClock::now`], run one branch, seek back, run
    /// the next, then seek to the maximum branch end.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN or negative.
    pub fn seek(&mut self, t: SimTime) {
        assert!(t.is_finite() && t >= 0.0, "invalid clock seek to {t}");
        self.cursor = t;
    }

    /// Total time node `id`'s radio spent transmitting.
    pub fn busy_time(&self, id: NodeId) -> f64 {
        self.busy_time[id.index()]
    }

    /// Per-node busy time, in node order.
    pub fn busy_times(&self) -> &[f64] {
        &self.busy_time
    }

    /// Per-node transmission counts (retransmissions included).
    pub fn tx_counts(&self) -> &[u64] {
        &self.tx
    }

    /// Per-node reception counts.
    pub fn rx_counts(&self) -> &[u64] {
        &self.rx
    }

    /// Times one transmission burst: `hop.transmissions` back-to-back
    /// attempts on `hop.from → hop.to` starting no earlier than `t`.
    /// Returns the arrival time of the last attempt, including any accrued
    /// ARQ backoff. Self-hops take no time.
    fn time_hop(&mut self, hop: Hop, mut t: SimTime) -> SimTime {
        if hop.from == hop.to {
            return t;
        }
        let f = hop.from.index();
        for _ in 0..hop.transmissions {
            let start = if self.busy_until[f] > t { self.busy_until[f] } else { t };
            self.busy_until[f] = start + self.model.service_time;
            self.busy_time[f] += self.model.service_time;
            self.tx[f] += 1;
            self.rx[hop.to.index()] += 1;
            // The next ARQ attempt waits for the missing-ack timeout, which
            // this model equates with one hop latency.
            t = start + self.model.service_time + self.model.hop_latency;
        }
        // Backoff delays are waiting, not transmitting: they push the
        // arrival later but leave the sender's radio idle (no busy time).
        t + hop.backoff
    }

    /// Times one delivery leg (a sequence of hops starting at the cursor),
    /// advances the cursor to its end, and returns the elapsed time.
    pub fn time_leg(&mut self, hops: &[Hop]) -> f64 {
        let start = self.cursor;
        let mut t = start;
        for hop in hops {
            t = self.time_hop(*hop, t);
        }
        self.cursor = t;
        t - start
    }

    /// Times `legs` launched concurrently at the cursor, interleaving their
    /// hops in virtual-time order through a fresh [`EventQueue`] (FIFO on
    /// ties, so the interleaving is deterministic). Advances the cursor to
    /// the latest leg end and returns the elapsed time.
    ///
    /// Legs that share a sender serialize on its radio; disjoint legs
    /// overlap. An empty set of legs takes no time.
    pub fn time_fanout(&mut self, legs: &[Vec<Hop>]) -> f64 {
        let start = self.cursor;
        let mut queue: EventQueue<LegCursor> = EventQueue::new();
        // EventQueue clocks start at zero; schedule relative to `start`.
        for (leg, hops) in legs.iter().enumerate() {
            if !hops.is_empty() {
                queue
                    .schedule(0.0, LegCursor { leg, hop: 0 })
                    .expect("fan-out legs launch at the branch point");
            }
        }
        let mut end = start;
        while let Some((t, cursor)) = queue.pop() {
            let hop = legs[cursor.leg][cursor.hop];
            let arrival = self.time_hop(hop, start + t);
            let next = cursor.hop + 1;
            if next < legs[cursor.leg].len() {
                queue
                    .schedule(arrival - start, LegCursor { leg: cursor.leg, hop: next })
                    .expect("hop arrivals never precede their launch");
            } else if arrival > end {
                end = arrival;
            }
        }
        self.cursor = end;
        end - start
    }

    /// Grows the clock to track `n` nodes: joiners start idle with zeroed
    /// counters; the cursor, busy state, and counters of existing nodes are
    /// untouched. A no-op when the clock already covers `n` nodes.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.busy_until.len() {
            self.busy_until.resize(n, 0.0);
            self.busy_time.resize(n, 0.0);
            self.tx.resize(n, 0);
            self.rx.resize(n, 0);
        }
    }

    /// Resets busy state and counters to zero (the cursor too). Used when
    /// a workload wants a fresh timeline over the same network.
    pub fn clear(&mut self) {
        self.cursor = 0.0;
        self.busy_until.iter_mut().for_each(|t| *t = 0.0);
        self.busy_time.iter_mut().for_each(|t| *t = 0.0);
        self.tx.iter_mut().for_each(|c| *c = 0);
        self.rx.iter_mut().for_each(|c| *c = 0);
    }
}

/// Builds the hop list of a loss-free traversal of `path` (one
/// transmission per hop, self-hops skipped).
pub fn clean_hops(path: &[NodeId]) -> Vec<Hop> {
    path.windows(2).filter(|w| w[0] != w[1]).map(|w| Hop::new(w[0], w[1], 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(hop: f64, service: f64) -> LatencyModel {
        LatencyModel::new(hop, service)
    }

    #[test]
    fn a_leg_pays_service_plus_latency_per_hop() {
        let mut clock = VirtualClock::new(3, model(1.0, 0.5));
        let elapsed = clock.time_leg(&clean_hops(&[NodeId(0), NodeId(1), NodeId(2)]));
        // Each hop: 0.5 service + 1.0 latency.
        assert!((elapsed - 3.0).abs() < 1e-12, "got {elapsed}");
        assert_eq!(clock.now(), elapsed);
        assert_eq!(clock.tx_counts(), &[1, 1, 0]);
        assert_eq!(clock.rx_counts(), &[0, 1, 1]);
        assert!((clock.busy_time(NodeId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn retransmissions_each_pay_their_own_way() {
        let mut clock = VirtualClock::new(2, model(1.0, 0.5));
        let elapsed = clock.time_leg(&[Hop::new(NodeId(0), NodeId(1), 3)]);
        assert!((elapsed - 4.5).abs() < 1e-12, "got {elapsed}");
        assert_eq!(clock.tx_counts()[0], 3);
        assert_eq!(clock.rx_counts()[1], 3);
        assert!((clock.busy_time(NodeId(0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn backoff_extends_latency_but_not_busy_time() {
        let mut plain = VirtualClock::new(2, model(1.0, 0.5));
        let mut delayed = VirtualClock::new(2, model(1.0, 0.5));
        let base = plain.time_leg(&[Hop::new(NodeId(0), NodeId(1), 2)]);
        let hop = Hop { backoff: 0.25, ..Hop::new(NodeId(0), NodeId(1), 2) };
        let slow = delayed.time_leg(&[hop]);
        assert!((slow - base - 0.25).abs() < 1e-12, "got {slow} vs {base}");
        // Waiting out a backoff is idle time, not radio time.
        assert_eq!(plain.busy_time(NodeId(0)), delayed.busy_time(NodeId(0)));
        assert_eq!(plain.tx_counts(), delayed.tx_counts());
    }

    #[test]
    fn zero_backoff_is_bit_identical_to_the_old_timing() {
        let mut a = VirtualClock::new(3, model(1.0, 0.5));
        let mut b = VirtualClock::new(3, model(1.0, 0.5));
        let hops = clean_hops(&[NodeId(0), NodeId(1), NodeId(2)]);
        let explicit: Vec<Hop> = hops.iter().map(|h| Hop { backoff: 0.0, ..*h }).collect();
        assert_eq!(a.time_leg(&hops), b.time_leg(&explicit));
        assert_eq!(a, b);
    }

    #[test]
    fn self_hops_take_no_time() {
        let mut clock = VirtualClock::new(1, LatencyModel::default());
        let elapsed = clock.time_leg(&clean_hops(&[NodeId(0), NodeId(0)]));
        assert_eq!(elapsed, 0.0);
        assert_eq!(clock.tx_counts()[0], 0);
    }

    #[test]
    fn disjoint_fanout_overlaps() {
        let mut clock = VirtualClock::new(4, model(1.0, 0.5));
        let legs = vec![clean_hops(&[NodeId(0), NodeId(1)]), clean_hops(&[NodeId(2), NodeId(3)])];
        let elapsed = clock.time_fanout(&legs);
        // Both single-hop legs run concurrently: max, not sum.
        assert!((elapsed - 1.5).abs() < 1e-12, "got {elapsed}");
    }

    #[test]
    fn shared_sender_serializes_fanout() {
        let mut clock = VirtualClock::new(3, model(1.0, 0.5));
        let legs = vec![clean_hops(&[NodeId(0), NodeId(1)]), clean_hops(&[NodeId(0), NodeId(2)])];
        let elapsed = clock.time_fanout(&legs);
        // The second copy queues behind the first on node 0's radio:
        // starts at 0.5, arrives at 2.0.
        assert!((elapsed - 2.0).abs() < 1e-12, "got {elapsed}");
        assert!((clock.busy_time(NodeId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fanout_of_nothing_is_free() {
        let mut clock = VirtualClock::new(2, LatencyModel::default());
        clock.seek(5.0);
        assert_eq!(clock.time_fanout(&[]), 0.0);
        assert_eq!(clock.time_fanout(&[Vec::new()]), 0.0);
        assert_eq!(clock.now(), 5.0);
    }

    #[test]
    fn seek_brackets_preserve_busy_state() {
        let mut clock = VirtualClock::new(3, model(1.0, 0.5));
        let t0 = clock.now();
        clock.time_leg(&clean_hops(&[NodeId(0), NodeId(1)]));
        let first_end = clock.now();
        clock.seek(t0);
        // Same sender again from the same branch point: it is still busy
        // from the first branch, so this one queues.
        let second = clock.time_leg(&clean_hops(&[NodeId(0), NodeId(2)]));
        assert!((second - 2.0).abs() < 1e-12, "got {second}");
        assert!(clock.now() > first_end);
    }

    #[test]
    fn fanout_matches_serial_legs_when_disjoint_in_time() {
        // One leg only: fan-out must equal the plain serial leg timing.
        let mut a = VirtualClock::new(3, model(2.0, 0.25));
        let mut b = VirtualClock::new(3, model(2.0, 0.25));
        let hops = clean_hops(&[NodeId(0), NodeId(1), NodeId(2)]);
        let ea = a.time_leg(&hops);
        let eb = b.time_fanout(std::slice::from_ref(&hops));
        assert_eq!(ea, eb);
        assert_eq!(a, b);
    }

    #[test]
    fn clear_resets_everything() {
        let mut clock = VirtualClock::new(2, LatencyModel::default());
        clock.time_leg(&clean_hops(&[NodeId(0), NodeId(1)]));
        clock.clear();
        assert_eq!(clock.now(), 0.0);
        assert_eq!(clock.tx_counts(), &[0, 0]);
        assert_eq!(clock.busy_times(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid clock seek")]
    fn seek_rejects_negative_time() {
        let mut clock = VirtualClock::new(1, LatencyModel::default());
        clock.seek(-1.0);
    }
}
