//! Per-layer message accounting.
//!
//! The paper's cost metric is a single number — radio messages — but the
//! experiments ask *where* those messages come from: insertion vs. query
//! forwarding vs. replies vs. replication vs. monitoring. [`TrafficLedger`]
//! wraps the flat [`TrafficStats`] hop counter with a breakdown by
//! [`TrafficLayer`], so every charge names the protocol layer it belongs to
//! while the totals remain bit-identical to the pre-ledger accounting.

use pool_netsim::node::NodeId;
use pool_netsim::stats::TrafficStats;

/// The protocol layer a message charge belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficLayer {
    /// Event insertion: source → index node, plus workload-sharing chains.
    Insert,
    /// Query dissemination: sink → splitters → index nodes → delegates.
    Forward,
    /// Query replies retracing forwarding legs back to the sink.
    Reply,
    /// Backup copies pushed to neighbors of index nodes.
    Replication,
    /// Standing-query installation and push notifications.
    Monitor,
    /// Post-failure migration and recovery traffic.
    Repair,
    /// ARQ retransmissions charged by a lossy link layer (every attempt
    /// after the first for a hop, regardless of which layer the first
    /// attempt was charged to).
    Retransmit,
}

impl TrafficLayer {
    /// All layers, in display order.
    pub const ALL: [TrafficLayer; 7] = [
        TrafficLayer::Insert,
        TrafficLayer::Forward,
        TrafficLayer::Reply,
        TrafficLayer::Replication,
        TrafficLayer::Monitor,
        TrafficLayer::Repair,
        TrafficLayer::Retransmit,
    ];

    /// Dense index into per-layer counter arrays.
    pub fn index(self) -> usize {
        match self {
            TrafficLayer::Insert => 0,
            TrafficLayer::Forward => 1,
            TrafficLayer::Reply => 2,
            TrafficLayer::Replication => 3,
            TrafficLayer::Monitor => 4,
            TrafficLayer::Repair => 5,
            TrafficLayer::Retransmit => 6,
        }
    }

    /// Stable lowercase name (used in reports and JSON snapshots).
    pub fn label(self) -> &'static str {
        match self {
            TrafficLayer::Insert => "insert",
            TrafficLayer::Forward => "forward",
            TrafficLayer::Reply => "reply",
            TrafficLayer::Replication => "replication",
            TrafficLayer::Monitor => "monitor",
            TrafficLayer::Repair => "repair",
            TrafficLayer::Retransmit => "retransmit",
        }
    }
}

/// [`TrafficStats`] plus a per-[`TrafficLayer`] breakdown.
///
/// Every charge goes through one of the `charge_*` methods, which update
/// both the flat stats (total + per-node load) and the named layer's
/// counter. Self-hops stay free, exactly as in [`TrafficStats`], so the
/// per-layer counters always sum to [`TrafficLedger::total_messages`].
///
/// # Examples
///
/// ```
/// use pool_netsim::node::NodeId;
/// use pool_transport::{TrafficLayer, TrafficLedger};
///
/// let mut ledger = TrafficLedger::new(4);
/// ledger.charge_path(&[NodeId(0), NodeId(1), NodeId(2)], TrafficLayer::Insert);
/// ledger.charge_hop(NodeId(2), NodeId(3), TrafficLayer::Replication);
/// assert_eq!(ledger.total_messages(), 3);
/// assert_eq!(ledger.layer_total(TrafficLayer::Insert), 2);
/// assert_eq!(ledger.layer_total(TrafficLayer::Replication), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficLedger {
    stats: TrafficStats,
    by_layer: [u64; TrafficLayer::ALL.len()],
    /// Sender-attributed load per node *and* layer: `node_layer[n]` sums to
    /// `stats.load(n)` and column `l` sums to `by_layer[l]`.
    node_layer: Vec<[u64; TrafficLayer::ALL.len()]>,
}

impl TrafficLedger {
    /// Creates a ledger for a network of `n` nodes.
    pub fn new(n: usize) -> Self {
        TrafficLedger {
            stats: TrafficStats::new(n),
            by_layer: [0; TrafficLayer::ALL.len()],
            node_layer: vec![[0; TrafficLayer::ALL.len()]; n],
        }
    }

    /// The flat hop counter (total messages + per-node load).
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Charges one transmission from `from` to `to` against `layer`.
    ///
    /// Returns the number of messages actually charged (0 for a self-hop,
    /// 1 otherwise).
    pub fn charge_hop(&mut self, from: NodeId, to: NodeId, layer: TrafficLayer) -> u64 {
        if from == to {
            return 0;
        }
        self.stats.record_hop(from, to);
        self.by_layer[layer.index()] += 1;
        self.node_layer[from.index()][layer.index()] += 1;
        1
    }

    /// Charges every hop along `path` against `layer`.
    ///
    /// Returns the number of messages actually charged — the non-self-hop
    /// pairs, which equals `path.len() - 1` whenever no grid cell aliases
    /// two positions onto the same node.
    pub fn charge_path(&mut self, path: &[NodeId], layer: TrafficLayer) -> u64 {
        let mut charged = 0;
        for w in path.windows(2) {
            charged += self.charge_hop(w[0], w[1], layer);
        }
        charged
    }

    /// Charges `copies` traversals of `path` in reverse order (reply
    /// retracing) against `layer`.
    ///
    /// Per-node load attribution differs from the forward direction: the
    /// reversed path charges each hop to its *new* sender. Returns the
    /// total messages charged across all copies.
    pub fn charge_path_reversed(
        &mut self,
        path: &[NodeId],
        copies: u64,
        layer: TrafficLayer,
    ) -> u64 {
        let back: Vec<NodeId> = path.iter().rev().copied().collect();
        let mut charged = 0;
        for _ in 0..copies {
            charged += self.charge_path(&back, layer);
        }
        charged
    }

    /// Total messages charged to `layer`.
    pub fn layer_total(&self, layer: TrafficLayer) -> u64 {
        self.by_layer[layer.index()]
    }

    /// `(layer, messages)` for every layer, in display order.
    pub fn by_layer(&self) -> [(TrafficLayer, u64); TrafficLayer::ALL.len()] {
        let mut out = [(TrafficLayer::Insert, 0); TrafficLayer::ALL.len()];
        for (slot, layer) in out.iter_mut().zip(TrafficLayer::ALL) {
            *slot = (layer, self.by_layer[layer.index()]);
        }
        out
    }

    /// Total messages across all layers.
    pub fn total_messages(&self) -> u64 {
        self.stats.total_messages()
    }

    /// Number of nodes this ledger tracks.
    pub fn nodes(&self) -> usize {
        self.node_layer.len()
    }

    /// Sender-attributed load of `node` across all layers.
    pub fn node_load(&self, node: NodeId) -> u64 {
        self.stats.load(node)
    }

    /// Sender-attributed load of `node` on one `layer`.
    pub fn node_layer_load(&self, node: NodeId, layer: TrafficLayer) -> u64 {
        self.node_layer[node.index()][layer.index()]
    }

    /// The full per-layer breakdown of `node`'s sent messages, in
    /// [`TrafficLayer::ALL`] order.
    pub fn node_layers(&self, node: NodeId) -> &[u64; TrafficLayer::ALL.len()] {
        &self.node_layer[node.index()]
    }

    /// Adds all counts from `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two ledgers track networks of different sizes.
    pub fn merge(&mut self, other: &TrafficLedger) {
        self.stats.merge(&other.stats);
        for (a, b) in self.by_layer.iter_mut().zip(&other.by_layer) {
            *a += *b;
        }
        for (row, other_row) in self.node_layer.iter_mut().zip(&other.node_layer) {
            for (a, b) in row.iter_mut().zip(other_row) {
                *a += *b;
            }
        }
    }

    /// Resets all counters to zero.
    pub fn clear(&mut self) {
        self.stats.clear();
        self.by_layer = [0; TrafficLayer::ALL.len()];
        self.node_layer.iter_mut().for_each(|row| *row = [0; TrafficLayer::ALL.len()]);
    }

    /// Grows the ledger to track `n` nodes (joiners get zeroed rows);
    /// totals and existing per-node history are untouched. A no-op when
    /// the ledger already covers `n` nodes.
    pub fn grow_to(&mut self, n: usize) {
        self.stats.grow_to(n);
        if n > self.node_layer.len() {
            self.node_layer.resize(n, [0; TrafficLayer::ALL.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_partition_the_total() {
        let mut ledger = TrafficLedger::new(5);
        ledger.charge_path(&[NodeId(0), NodeId(1), NodeId(2)], TrafficLayer::Insert);
        ledger.charge_path(&[NodeId(2), NodeId(3)], TrafficLayer::Forward);
        ledger.charge_path_reversed(&[NodeId(2), NodeId(3)], 2, TrafficLayer::Reply);
        let layered: u64 = ledger.by_layer().iter().map(|(_, n)| n).sum();
        assert_eq!(layered, ledger.total_messages());
        assert_eq!(ledger.layer_total(TrafficLayer::Reply), 2);
    }

    #[test]
    fn self_hops_stay_free() {
        let mut ledger = TrafficLedger::new(3);
        assert_eq!(ledger.charge_hop(NodeId(1), NodeId(1), TrafficLayer::Insert), 0);
        assert_eq!(ledger.charge_path(&[NodeId(0), NodeId(0), NodeId(1)], TrafficLayer::Insert), 1);
        assert_eq!(ledger.total_messages(), 1);
    }

    #[test]
    fn reversed_charge_attributes_load_to_new_senders() {
        let mut ledger = TrafficLedger::new(3);
        ledger.charge_path_reversed(&[NodeId(0), NodeId(1), NodeId(2)], 1, TrafficLayer::Reply);
        // The reply travels 2 → 1 → 0, so nodes 2 and 1 each sent once.
        assert_eq!(ledger.stats().load(NodeId(2)), 1);
        assert_eq!(ledger.stats().load(NodeId(1)), 1);
        assert_eq!(ledger.stats().load(NodeId(0)), 0);
    }

    #[test]
    fn node_layer_matrix_is_consistent_with_both_margins() {
        let mut ledger = TrafficLedger::new(4);
        ledger.charge_path(&[NodeId(0), NodeId(1), NodeId(2)], TrafficLayer::Insert);
        ledger.charge_path_reversed(&[NodeId(1), NodeId(2)], 3, TrafficLayer::Reply);
        ledger.charge_hop(NodeId(1), NodeId(3), TrafficLayer::Repair);
        // Row sums reproduce per-node load; column sums reproduce per-layer
        // totals.
        for n in 0..4u32 {
            let row: u64 = ledger.node_layers(NodeId(n)).iter().sum();
            assert_eq!(row, ledger.node_load(NodeId(n)), "node {n}");
        }
        for layer in TrafficLayer::ALL {
            let col: u64 = (0..4u32).map(|n| ledger.node_layer_load(NodeId(n), layer)).sum();
            assert_eq!(col, ledger.layer_total(layer), "{}", layer.label());
        }
        // Reverse charges attribute to the new senders: node 2 sent the
        // three reply copies.
        assert_eq!(ledger.node_layer_load(NodeId(2), TrafficLayer::Reply), 3);
        assert_eq!(ledger.node_layer_load(NodeId(1), TrafficLayer::Reply), 0);
    }

    #[test]
    fn merge_and_clear_round_trip() {
        let mut a = TrafficLedger::new(2);
        a.charge_hop(NodeId(0), NodeId(1), TrafficLayer::Monitor);
        let mut b = TrafficLedger::new(2);
        b.charge_hop(NodeId(1), NodeId(0), TrafficLayer::Repair);
        a.merge(&b);
        assert_eq!(a.total_messages(), 2);
        assert_eq!(a.layer_total(TrafficLayer::Monitor), 1);
        assert_eq!(a.layer_total(TrafficLayer::Repair), 1);
        a.clear();
        assert_eq!(a.total_messages(), 0);
        assert_eq!(a.layer_total(TrafficLayer::Repair), 0);
    }
}
