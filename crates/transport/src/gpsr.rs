//! The reference transport: plain GPSR, no memoization.

use crate::clock::{LatencyModel, VirtualClock};
use crate::{TrafficLedger, Transport, TransportKind};
use pool_gpsr::{Gpsr, Planarization, Route, RouteError};
use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use std::sync::Arc;

/// A [`Transport`] that recomputes every route with GPSR.
///
/// This is the original behaviour of the storage schemes before the
/// transport seam existed: message counts produced through this
/// implementation are bit-identical to charging a raw
/// [`pool_netsim::stats::TrafficStats`] along freshly computed
/// [`Gpsr`] routes.
#[derive(Debug, Clone)]
pub struct GpsrTransport {
    gpsr: Gpsr,
    planarization: Planarization,
    ledger: TrafficLedger,
    clock: VirtualClock,
    generation: u64,
}

impl GpsrTransport {
    /// Builds the transport over `topology`.
    pub fn new(topology: &Topology, planarization: Planarization) -> Self {
        GpsrTransport {
            gpsr: Gpsr::new(topology, planarization),
            planarization,
            ledger: TrafficLedger::new(topology.nodes().len()),
            clock: VirtualClock::new(topology.nodes().len(), LatencyModel::default()),
            generation: 0,
        }
    }

    /// The underlying router (e.g. for path-stretch validation).
    pub fn gpsr(&self) -> &Gpsr {
        &self.gpsr
    }
}

impl Transport for GpsrTransport {
    fn route_to_node(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
    ) -> Result<Arc<Route>, RouteError> {
        self.gpsr.route_to_node(topology, from, to).map(Arc::new)
    }

    fn route_to_location(
        &mut self,
        topology: &Topology,
        from: NodeId,
        target: Point,
    ) -> Result<Arc<Route>, RouteError> {
        self.gpsr.route(topology, from, target).map(Arc::new)
    }

    fn route_to_node_avoiding(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
        excluded: &[NodeId],
    ) -> Result<Arc<Route>, RouteError> {
        self.gpsr.route_to_node_avoiding(topology, from, to, excluded).map(Arc::new)
    }

    fn rebuild(&mut self, topology: &Topology) {
        self.gpsr = Gpsr::new(topology, self.planarization);
        // Joins grow the network; the ledger and clock must keep every
        // node id addressable (counters for existing nodes are preserved).
        self.ledger.grow_to(topology.len());
        self.clock.grow_to(topology.len());
        self.generation += 1;
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn ledger(&self) -> &TrafficLedger {
        &self.ledger
    }

    fn ledger_mut(&mut self) -> &mut TrafficLedger {
        &mut self.ledger
    }

    fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    fn clock_mut(&mut self) -> &mut VirtualClock {
        &mut self.clock
    }

    fn kind(&self) -> TransportKind {
        TransportKind::Gpsr
    }
}
