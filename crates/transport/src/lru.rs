//! A sharded, fixed-capacity LRU map for route memoization.
//!
//! [`crate::CachedTransport`] memoizes one route per endpoint pair; on an
//! n-node deployment that is O(n²) potential entries, which an unbounded
//! `HashMap` happily grows to. [`ShardedLru`] caps the memo at a fixed
//! total capacity, evicting the least-recently-used entry per shard.
//! Sharding keeps the recency lists short (promotion touches one shard's
//! intrusive list, not a global one) and splits the capacity exactly:
//! shard sizes differ by at most one and always sum to the configured
//! capacity, so `len() ≤ capacity` is a hard invariant.
//!
//! Nothing here allocates per entry beyond the slab growth itself: each
//! shard is a `HashMap<K, u32>` into a slab of doubly-linked entries, and
//! eviction recycles the victim's slot in place.
//!
//! Determinism: shard selection hashes with fixed-key [`DefaultHasher`],
//! never `RandomState`, so the same key stream produces the same eviction
//! sequence in every run. Eviction only ever costs recomputation (a future
//! miss); message accounting is identical either way.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Hit/miss/eviction counters of a route cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to recompute.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: u32,
    next: u32,
}

/// One shard: an index map into a slab of entries threaded on an intrusive
/// most-recent-first list.
#[derive(Debug, Clone)]
struct Shard<K, V> {
    map: HashMap<K, u32>,
    slab: Vec<Entry<K, V>>,
    head: u32,
    tail: u32,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> Shard<K, V> {
    fn new(capacity: usize) -> Self {
        debug_assert!(capacity >= 1);
        Shard { map: HashMap::new(), slab: Vec::new(), head: NIL, tail: NIL, capacity }
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let e = &self.slab[idx as usize];
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let e = &mut self.slab[idx as usize];
            e.prev = NIL;
            e.next = old_head;
        }
        match old_head {
            NIL => self.tail = idx,
            h => self.slab[h as usize].prev = idx,
        }
        self.head = idx;
    }

    fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(&self.slab[idx as usize].value)
    }

    /// Inserts (or refreshes) `key`, returning whether an entry was
    /// evicted to make room.
    fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx as usize].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return false;
        }
        if self.map.len() >= self.capacity {
            // Recycle the least-recently-used slot in place.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = {
                let e = &mut self.slab[victim as usize];
                let old = std::mem::replace(&mut e.key, key.clone());
                e.value = value;
                old
            };
            self.map.remove(&old_key);
            self.map.insert(key, victim);
            self.push_front(victim);
            return true;
        }
        let idx = self.slab.len() as u32;
        self.slab.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
        self.map.insert(key, idx);
        self.push_front(idx);
        false
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Shard<K, V> {
    /// Keeps only entries satisfying `keep`, preserving recency order.
    /// Returns the number of entries removed.
    fn retain(&mut self, keep: &mut dyn FnMut(&K, &V) -> bool) -> usize {
        // Walk the intrusive list most-recent-first, collect survivors,
        // then rebuild: re-inserting in reverse restores the original
        // recency order (the survivor seen first ends up at the head).
        let mut survivors: Vec<(K, V)> = Vec::with_capacity(self.map.len());
        let mut removed = 0usize;
        let mut cursor = self.head;
        while cursor != NIL {
            let e = &self.slab[cursor as usize];
            if keep(&e.key, &e.value) {
                survivors.push((e.key.clone(), e.value.clone()));
            } else {
                removed += 1;
            }
            cursor = e.next;
        }
        if removed > 0 {
            self.clear();
            for (k, v) in survivors.into_iter().rev() {
                // Never evicts: survivor count ≤ previous len ≤ capacity.
                let evicted = self.insert(k, v);
                debug_assert!(!evicted);
            }
        }
        removed
    }
}

/// A fixed-capacity least-recently-used map, split across shards.
#[derive(Debug, Clone)]
pub struct ShardedLru<K, V> {
    shards: Vec<Shard<K, V>>,
    capacity: usize,
    evictions: u64,
}

/// Shard count cap; the actual count is `min(SHARDS, capacity)` so tiny
/// caches (including capacity 1) still respect `len() ≤ capacity` exactly.
const SHARDS: usize = 8;

impl<K: Eq + Hash + Clone, V> ShardedLru<K, V> {
    /// A cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "an LRU cache needs capacity for at least one entry");
        let count = SHARDS.min(capacity);
        let base = capacity / count;
        let extra = capacity % count;
        let shards =
            (0..count).map(|i| Shard::new(base + usize::from(i < extra))).collect::<Vec<_>>();
        ShardedLru { shards, capacity, evictions: 0 }
    }

    fn shard_of(&self, key: &K) -> usize {
        // DefaultHasher::new() hashes with fixed keys — deterministic
        // across runs and worker counts, unlike RandomState.
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Looks `key` up, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let s = self.shard_of(key);
        self.shards[s].get(key)
    }

    /// Inserts (or refreshes) `key`, evicting that shard's LRU entry if it
    /// is full.
    pub fn insert(&mut self, key: K, value: V) {
        let s = self.shard_of(&key);
        if self.shards[s].insert(key, value) {
            self.evictions += 1;
        }
    }

    /// Number of entries currently cached (`≤ capacity`, always).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries displaced by the capacity bound since construction (not
    /// reset by [`ShardedLru::clear`]).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops every entry, keeping the capacity and eviction counter.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// Keeps only the entries satisfying `keep`, preserving each shard's
    /// recency order exactly. Returns the number of entries removed.
    ///
    /// Removals here are *invalidations*, not capacity pressure — they do
    /// not count toward [`ShardedLru::evictions`].
    pub fn retain<F: FnMut(&K, &V) -> bool>(&mut self, mut keep: F) -> usize {
        self.shards.iter_mut().map(|s| s.retain(&mut keep)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single-shard cache for order-sensitive assertions.
    fn single_shard(capacity: usize) -> ShardedLru<u64, u64> {
        let mut lru = ShardedLru::new(capacity);
        lru.shards = vec![Shard::new(capacity)];
        lru
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut lru = single_shard(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.get(&1), Some(&10)); // promote 1; 2 is now LRU
        lru.insert(3, 30);
        assert_eq!(lru.get(&2), None, "2 was least recently used");
        assert_eq!(lru.get(&1), Some(&10));
        assert_eq!(lru.get(&3), Some(&30));
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn refresh_updates_value_without_eviction() {
        let mut lru = single_shard(2);
        lru.insert(1, 10);
        lru.insert(1, 11);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&1), Some(&11));
        assert_eq!(lru.evictions(), 0);
    }

    #[test]
    fn len_never_exceeds_capacity_under_soak() {
        for capacity in [1usize, 3, 8, 17, 100] {
            let mut lru: ShardedLru<u64, u64> = ShardedLru::new(capacity);
            for k in 0..10_000u64 {
                lru.insert(k % 997, k);
                assert!(lru.len() <= capacity, "len {} > capacity {capacity}", lru.len());
            }
            let expected_evictions = lru.evictions() > 0;
            assert_eq!(expected_evictions, 997 > capacity, "capacity {capacity}");
        }
    }

    #[test]
    fn shard_sizes_sum_exactly_to_capacity() {
        for capacity in [1usize, 2, 7, 8, 9, 64, 65_536] {
            let lru: ShardedLru<u64, u64> = ShardedLru::new(capacity);
            let total: usize = lru.shards.iter().map(|s| s.capacity).sum();
            assert_eq!(total, capacity);
            assert!(lru.shards.len() <= SHARDS);
            assert!(lru.shards.iter().all(|s| s.capacity >= 1));
        }
    }

    #[test]
    fn clear_empties_but_keeps_eviction_history() {
        let mut lru = single_shard(1);
        lru.insert(1, 1);
        lru.insert(2, 2);
        assert_eq!(lru.evictions(), 1);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.evictions(), 1, "history survives invalidation");
        lru.insert(3, 3);
        assert_eq!(lru.get(&3), Some(&3));
    }

    #[test]
    #[should_panic(expected = "capacity for at least one entry")]
    fn zero_capacity_is_rejected() {
        let _ = ShardedLru::<u64, u64>::new(0);
    }

    #[test]
    fn retain_preserves_recency_order_of_survivors() {
        let mut lru = single_shard(4);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(3, 30);
        lru.insert(4, 40);
        assert_eq!(lru.get(&1), Some(&10)); // recency: 1, 4, 3, 2
        let removed = lru.retain(|k, _| *k != 3);
        assert_eq!(removed, 1);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.get(&3), None);
        // 2 must still be the LRU entry: inserting two new keys into the
        // now 3-occupied capacity-4 shard evicts 2 first.
        lru.insert(5, 50);
        lru.insert(6, 60);
        assert_eq!(lru.get(&2), None, "2 stayed least-recently-used across retain");
        assert_eq!(lru.get(&1), Some(&10));
        assert_eq!(lru.get(&4), Some(&40));
    }

    #[test]
    fn retain_counts_removals_not_evictions() {
        let mut lru: ShardedLru<u64, u64> = ShardedLru::new(64);
        for k in 0..50u64 {
            lru.insert(k, k);
        }
        let removed = lru.retain(|k, _| k % 2 == 0);
        assert_eq!(removed, 25);
        assert_eq!(lru.len(), 25);
        assert_eq!(lru.evictions(), 0, "invalidation is not eviction");
        for k in 0..50u64 {
            assert_eq!(lru.get(&k).is_some(), k % 2 == 0);
        }
    }

    #[test]
    fn retain_keeping_everything_is_a_no_op() {
        let mut lru: ShardedLru<u64, u64> = ShardedLru::new(64);
        for k in 0..32u64 {
            lru.insert(k, k);
        }
        let before = lru.len();
        assert_eq!(lru.retain(|_, _| true), 0);
        assert_eq!(lru.len(), before);
    }

    #[test]
    fn capacity_one_holds_exactly_the_last_insert() {
        let mut lru: ShardedLru<u64, u64> = ShardedLru::new(1);
        for k in 0..100 {
            lru.insert(k, k * 2);
            assert_eq!(lru.len(), 1);
            assert_eq!(lru.get(&k), Some(&(k * 2)));
        }
        assert_eq!(lru.evictions(), 99);
    }
}
