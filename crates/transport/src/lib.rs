//! # pool-transport — the pluggable routing substrate
//!
//! Pool, DIM, and GHT all sit on the same two primitives: *route a packet*
//! (GPSR, §2 of the Pool paper) and *charge its hops* (the paper's
//! message-count cost metric, §5). This crate extracts that seam into one
//! object-safe [`Transport`] trait so the storage schemes above it never
//! touch [`pool_gpsr::Gpsr`] or [`pool_netsim::stats::TrafficStats`]
//! directly:
//!
//! * [`Transport`] — route to a node or a location, rebuild after topology
//!   change, and account every charge in a per-layer [`TrafficLedger`].
//! * [`GpsrTransport`] — the reference implementation; recomputes every
//!   route, reproducing the original message counts bit for bit.
//! * [`CachedTransport`] — memoizes delivered routes per endpoint pair and
//!   invalidates the memo on topology change; identical message accounting,
//!   much less recomputation on repeated-query workloads.
//! * [`TransportKind`] — the configuration-level selector that builds
//!   either implementation behind `Box<dyn Transport>`.
//!
//! # Examples
//!
//! ```
//! use pool_gpsr::Planarization;
//! use pool_netsim::deployment::Deployment;
//! use pool_netsim::topology::Topology;
//! use pool_transport::{TrafficLayer, Transport, TransportKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let deployment = Deployment::paper_setting(300, 40.0, 20.0, 7)?;
//! let topology = Topology::build(deployment.nodes(), 40.0)?;
//! let mut transport = TransportKind::Cached.build(&topology, Planarization::Gabriel);
//! let (from, to) = (topology.nodes()[0].id, topology.nodes()[100].id);
//! let route = transport.route_to_node(&topology, from, to)?;
//! transport.charge(&route.path, TrafficLayer::Forward);
//! assert_eq!(transport.ledger().total_messages(), route.hops() as u64);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cached;
pub mod clock;
pub mod faults;
pub mod gpsr;
pub mod ledger;
pub mod lossy;
pub mod lru;
pub mod metrics;
pub mod trace;

pub use cached::CachedTransport;
pub use clock::{clean_hops, Hop, LatencyModel, VirtualClock};
pub use faults::{Fault, FaultPlan, FaultyTransport, GilbertElliott};
pub use gpsr::GpsrTransport;
pub use ledger::{TrafficLayer, TrafficLedger};
pub use lossy::{
    AdaptiveState, BackoffPolicy, DeliveryOutcome, DeliveryStats, LinkQuality, LossyConfig,
    LossyTransport, OpRetryPolicy, RecoveryConfig, ReverseDelivery,
};
pub use lru::{CacheStats, ShardedLru};
pub use metrics::{LedgerSnapshot, LoadDistribution, LoadReport, NodeLoad, NodeRole, RoleSet};
pub use trace::{Span, SpanOutcome, TraceOp, Tracer};

use pool_gpsr::{Planarization, Route, RouteError};
use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A routing substrate: route computation plus message accounting.
///
/// Routing and charging are deliberately separate calls — the storage
/// schemes decide *how* a route is charged (forward once, retrace for
/// replies, fan out `copies` times), while the transport decides *how* the
/// route is obtained (fresh GPSR computation vs. memo lookup). Routes are
/// returned as [`Arc<Route>`] so cached implementations can hand out shared
/// copies without cloning paths.
///
/// Implementations must keep message accounting identical regardless of
/// how routes are produced: a cache may skip recomputation, never charges.
///
/// `Send` is a supertrait so whole deployments (which own their transport,
/// ledger, and tracer) can move into the bench harness's worker threads;
/// implementations hold only owned data, never shared mutable state.
pub trait Transport: fmt::Debug + Send {
    /// Routes from `from` to the specific node `to`.
    ///
    /// A `from == to` route is the zero-hop path `[from]`.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] when GPSR cannot deliver (hop budget, or a
    /// node-addressed packet delivered elsewhere).
    fn route_to_node(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
    ) -> Result<Arc<Route>, RouteError>;

    /// Routes from `from` toward the location `target`, delivering at the
    /// home node (the node closest to `target` on its face).
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::HopBudgetExceeded`] on pathological
    /// geometries.
    fn route_to_location(
        &mut self,
        topology: &Topology,
        from: NodeId,
        target: Point,
    ) -> Result<Arc<Route>, RouteError>;

    /// Routes from `from` to `to` around an exclusion set: the route must
    /// not traverse any node in `excluded` (endpoints are exempt). Used by
    /// adaptive recovery to detour around suspect nodes.
    ///
    /// The default implementation ignores the exclusions — substrates
    /// without detour support fall back to the normal route. Detour routes
    /// are never memoized: they describe a transient suspicion, not the
    /// topology.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError`] when no route survives the exclusions.
    fn route_to_node_avoiding(
        &mut self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
        excluded: &[NodeId],
    ) -> Result<Arc<Route>, RouteError> {
        let _ = excluded;
        self.route_to_node(topology, from, to)
    }

    /// Drops every memoized route that traverses `node` (targeted
    /// invalidation after a failed delivery proved it unreachable).
    /// Returns the number of routes dropped; the default (memo-free
    /// substrates) holds nothing to drop.
    fn evict_routes_through(&mut self, node: NodeId) -> u64 {
        let _ = node;
        0
    }

    /// Rebuilds the substrate over a changed topology (re-planarizes,
    /// bumps [`Transport::generation`], and drops any memoized routes).
    ///
    /// The ledger is preserved: node identity is stable across failures, so
    /// accumulated traffic remains attributable.
    fn rebuild(&mut self, topology: &Topology);

    /// Monotonic topology generation; incremented by every
    /// [`Transport::rebuild`]. Routes obtained under an older generation
    /// must not be reused.
    fn generation(&self) -> u64;

    /// The message ledger.
    fn ledger(&self) -> &TrafficLedger;

    /// Mutable access to the message ledger.
    fn ledger_mut(&mut self) -> &mut TrafficLedger;

    /// The latency ledger: the virtual clock every delivery advances.
    fn clock(&self) -> &VirtualClock;

    /// Mutable access to the virtual clock (operations use it to bracket
    /// fan-out with [`VirtualClock::seek`]).
    fn clock_mut(&mut self) -> &mut VirtualClock;

    /// Which implementation this is.
    fn kind(&self) -> TransportKind;

    /// Charges every hop along `path` against `layer`; returns messages
    /// charged.
    fn charge(&mut self, path: &[NodeId], layer: TrafficLayer) -> u64 {
        self.ledger_mut().charge_path(path, layer)
    }

    /// Charges `copies` reverse traversals of `path` (reply retracing)
    /// against `layer`; returns total messages charged.
    fn charge_reverse(&mut self, path: &[NodeId], copies: u64, layer: TrafficLayer) -> u64 {
        self.ledger_mut().charge_path_reversed(path, copies, layer)
    }

    /// Charges a single hop against `layer`; returns messages charged
    /// (0 for a self-hop).
    fn charge_hop(&mut self, from: NodeId, to: NodeId, layer: TrafficLayer) -> u64 {
        self.ledger_mut().charge_hop(from, to, layer)
    }

    /// Attempts to deliver one packet along `path`, charging transmissions
    /// under `layer` and reporting a structured [`DeliveryOutcome`].
    ///
    /// The default implementation is the loss-free link layer every
    /// substrate had before [`LossyTransport`]: each hop succeeds on its
    /// first transmission, so this is exactly [`Transport::charge`] plus a
    /// delivered outcome. Lossy decorators override it with per-hop drops
    /// and ARQ. Either way the delivery advances the virtual clock and
    /// reports its elapsed time in [`DeliveryOutcome::latency`].
    ///
    /// # Panics
    ///
    /// Panics on an empty `path` (routes always contain at least their
    /// source node).
    fn deliver(
        &mut self,
        topology: &Topology,
        path: &[NodeId],
        layer: TrafficLayer,
    ) -> DeliveryOutcome {
        let _ = topology;
        let transmissions = self.ledger_mut().charge_path(path, layer);
        let latency = self.clock_mut().time_leg(&clean_hops(path));
        let mut outcome = DeliveryOutcome::delivered_clean(path, transmissions);
        outcome.latency = latency;
        outcome
    }

    /// Attempts to deliver `copies` reply packets in reverse along `path`,
    /// charging under `layer`.
    ///
    /// The default implementation is loss-free: every copy arrives, and the
    /// ledger charges match [`Transport::charge_reverse`] exactly
    /// (including reverse-direction per-node load attribution). The copies
    /// launch concurrently on the virtual clock — they serialize on their
    /// shared sender's radio but overlap in flight, so
    /// [`ReverseDelivery::latency`] is the makespan of the fan-out, not a
    /// serial sum.
    fn deliver_reverse(
        &mut self,
        topology: &Topology,
        path: &[NodeId],
        copies: u64,
        layer: TrafficLayer,
    ) -> ReverseDelivery {
        let _ = topology;
        let transmissions = self.ledger_mut().charge_path_reversed(path, copies, layer);
        let back: Vec<NodeId> = path.iter().rev().copied().collect();
        let leg = clean_hops(&back);
        let legs: Vec<Vec<Hop>> = (0..copies).map(|_| leg.clone()).collect();
        let latency = self.clock_mut().time_fanout(&legs);
        ReverseDelivery { delivered_copies: copies, transmissions, retransmissions: 0, latency }
    }

    /// Cumulative link-layer delivery statistics (all zeros for loss-free
    /// substrates, which never fail and never retransmit).
    fn delivery_stats(&self) -> DeliveryStats {
        DeliveryStats::default()
    }
}

/// Selects a [`Transport`] implementation at configuration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportKind {
    /// [`GpsrTransport`]: recompute every route (reference behaviour).
    #[default]
    Gpsr,
    /// [`CachedTransport`]: memoize delivered routes per endpoint pair.
    Cached,
}

impl TransportKind {
    /// Builds the selected transport over `topology`.
    pub fn build(self, topology: &Topology, planarization: Planarization) -> Box<dyn Transport> {
        match self {
            TransportKind::Gpsr => Box::new(GpsrTransport::new(topology, planarization)),
            TransportKind::Cached => Box::new(CachedTransport::new(topology, planarization)),
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportKind::Gpsr => "gpsr",
            TransportKind::Cached => "cached",
        })
    }
}

impl FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "gpsr" => Ok(TransportKind::Gpsr),
            "cached" => Ok(TransportKind::Cached),
            other => Err(format!("unknown transport {other:?} (expected \"gpsr\" or \"cached\")")),
        }
    }
}
