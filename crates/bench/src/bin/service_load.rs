//! Sustained-load benchmark for the sharded service front end: req/s and
//! p50/p99 virtual-time latency for Pool vs DIM vs GHT under burst,
//! sustained, and chaos profiles, with a coalescing-disabled ablation.
//!
//! The experiment logic lives in [`pool_bench::figures::service`] so the
//! determinism regression test can run it in-process across `--jobs`
//! values.
//!
//! Run: `cargo run -p pool-bench --bin service_load --release
//!       [-- --requests N --nodes N --events N --jobs N --smoke]`

use pool_bench::figures::service::{collect, Params};

fn main() {
    let params = Params::from_env();
    let table = collect(&params);
    params.opts.emit("service", &table);
}
