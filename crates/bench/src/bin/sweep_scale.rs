//! Scale sweep: simulator wall-clock and peak RSS for Pool, DIM, and GHT
//! from 1k to 100k nodes — build, insert, query, and one churn epoch per
//! size, plus the incremental-mutation probe. Thin wrapper over
//! [`pool_bench::figures::scale`]; see that module for the measurement
//! design, the determinism exception for timing columns, and the
//! sub-quadratic scaling guard.
//!
//! Run: `cargo run -p pool-bench --bin sweep_scale --release
//!       [-- --inserts N --queries N --max-nodes N --smoke]`

use pool_bench::figures::scale;

fn main() {
    let params = scale::Params::from_env();
    let table = scale::collect(&params);
    params.opts.emit("scale", &table);
}
