//! Ablation: multi-query batching.
//!
//! Dashboards and sweeps issue several related queries at once. Pool's
//! batch API shares the sink→splitter legs and deduplicates cell visits
//! across the batch; this experiment measures the saving as a function of
//! batch size and query overlap.
//!
//! Run: `cargo run -p pool-bench --bin batch_ablation --release`

use pool_bench::cli::arg_usize;
use pool_bench::harness::{print_header, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_core::query::RangeQuery;
use pool_workloads::events::EventDistribution;
use rand::Rng;

fn main() {
    let nodes = arg_usize("--nodes", 600);
    let scenario = Scenario::paper(nodes, 123_123);
    let mut pair = SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
    print_header(
        &format!("Query batching ({nodes} nodes, overlapping threshold sweeps)"),
        &["batch_size", "separate_msgs", "batched_msgs", "saving"],
    );
    for batch_size in [2usize, 4, 8, 16] {
        let mut separate_total = 0u64;
        let mut batched_total = 0u64;
        let trials = 15;
        for _ in 0..trials {
            let sink = pair.random_node();
            // A threshold sweep: overlapping windows along dimension 1.
            let base: f64 = pair.rng().gen_range(0.0..0.5);
            let queries: Vec<RangeQuery> = (0..batch_size)
                .map(|i| {
                    let lo = (base + i as f64 * 0.02).min(0.9);
                    RangeQuery::exact(vec![(lo, (lo + 0.2).min(1.0)), (0.0, 0.5), (0.0, 1.0)])
                        .unwrap()
                })
                .collect();
            for q in &queries {
                separate_total += pair.pool.query_from(sink, q).unwrap().cost.total();
            }
            batched_total += pair.pool.query_batch(sink, &queries).unwrap().cost.total();
        }
        println!(
            "{batch_size}\t{:.1}\t{:.1}\t{:.1}%",
            separate_total as f64 / trials as f64,
            batched_total as f64 / trials as f64,
            100.0 * (1.0 - batched_total as f64 / separate_total as f64)
        );
    }
}
