//! Ablation: multi-query batching.
//!
//! Dashboards and sweeps issue several related queries at once. Pool's
//! batch API shares the sink→splitter legs and deduplicates cell visits
//! across the batch; this experiment measures the saving as a function of
//! batch size and query overlap. Each batch size is an independent trial
//! over its own deployment — the serial binary reused one pair (and one
//! RNG) across all sizes. Emits `BENCH_batch.json`.
//!
//! Run: `cargo run -p pool-bench --bin batch_ablation --release
//!       [-- --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::run_trials;
use pool_bench::harness::{Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_core::query::RangeQuery;
use pool_netsim::stats::Summary;
use pool_workloads::events::EventDistribution;
use rand::Rng;

fn main() {
    let opts = BenchOpts::from_env();
    let nodes = arg_usize("--nodes", opts.nodes(600));
    let trials_per_size = opts.scale(15, 4);
    let batch_sizes: Vec<usize> = if opts.smoke { vec![2, 8] } else { vec![2, 4, 8, 16] };

    let results = run_trials(opts.jobs, batch_sizes, |_, batch_size| {
        // Same deployment seed for every batch size: the sweep varies only
        // the batch width, and each trial owns its pair, so reusing the
        // scenario is coupling-free.
        let scenario = Scenario::paper(nodes, 123_123);
        let mut pair =
            SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
        let mut separate_total = 0u64;
        let mut batched_total = 0u64;
        let mut separate_latencies = Vec::with_capacity(trials_per_size);
        let mut batched_latencies = Vec::with_capacity(trials_per_size);
        for _ in 0..trials_per_size {
            let sink = pair.random_node();
            // A threshold sweep: overlapping windows along dimension 1.
            let base: f64 = pair.rng().gen_range(0.0..0.5);
            let queries: Vec<RangeQuery> = (0..batch_size)
                .map(|i| {
                    let lo = (base + i as f64 * 0.02).min(0.9);
                    RangeQuery::exact(vec![(lo, (lo + 0.2).min(1.0)), (0.0, 0.5), (0.0, 1.0)])
                        .unwrap()
                })
                .collect();
            let mut separate_elapsed = 0.0;
            for q in &queries {
                let result = pair.pool.query_from(sink, q).unwrap();
                separate_total += result.cost.total();
                separate_elapsed += result.cost.elapsed;
            }
            let batched = pair.pool.query_batch(sink, &queries).unwrap();
            batched_total += batched.cost.total();
            separate_latencies.push(separate_elapsed * 1e3);
            batched_latencies.push(batched.cost.elapsed * 1e3);
        }
        (
            batch_size,
            separate_total,
            batched_total,
            Summary::of(&separate_latencies),
            Summary::of(&batched_latencies),
        )
    });

    // Latency columns: virtual time of issuing the whole batch serially vs
    // through the batch API, in milliseconds.
    let mut table = pool_bench::Table::new(
        "Query batching (overlapping threshold sweeps)",
        &[
            "batch_size",
            "separate_msgs",
            "batched_msgs",
            "saving_pct",
            "separate_p50_ms",
            "separate_p99_ms",
            "batched_p50_ms",
            "batched_p99_ms",
        ],
    );
    table.meta("nodes", nodes);
    table.meta("trials", trials_per_size);
    for (batch_size, separate, batched, separate_lat, batched_lat) in &results {
        table.row(vec![
            (*batch_size).into(),
            (*separate as f64 / trials_per_size as f64).into(),
            (*batched as f64 / trials_per_size as f64).into(),
            (100.0 * (1.0 - *batched as f64 / *separate as f64)).into(),
            separate_lat.median.into(),
            separate_lat.p99.into(),
            batched_lat.median.into(),
            batched_lat.p99.into(),
        ]);
    }
    opts.emit("batch", &table);
}
