//! Ablation: skewed events and the workload-sharing mechanism (§4.2).
//!
//! Pool's claim 3 (§1): an index node experiencing a burst of insertions
//! can share load with its neighbors. This experiment drives a heavily
//! skewed event stream into (a) DIM, (b) Pool without sharing, and
//! (c) Pool with sharing at several capacities, then reports the maximum
//! per-node storage load — the hotspot indicator. Each system/capacity is
//! an independent trial over the same (seed-pinned) deployment and event
//! stream. Emits `BENCH_hotspot.json`.
//!
//! Run: `cargo run -p pool-bench --bin hotspot --release
//!       [-- --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::run_trials;
use pool_bench::harness::Scenario;
use pool_core::config::{PoolConfig, SharingPolicy};
use pool_core::system::PoolSystem;
use pool_dim::system::DimSystem;
use pool_netsim::deployment::Deployment;
use pool_netsim::node::NodeId;
use pool_netsim::stats::Summary;
use pool_netsim::topology::Topology;
use pool_workloads::events::{EventDistribution, EventGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One deployment under the skewed stream: which system, and with what
/// sharing capacity (Pool only).
#[derive(Clone, Copy)]
enum Subject {
    Dim,
    Pool(Option<usize>),
}

fn main() {
    let opts = BenchOpts::from_env();
    let nodes = arg_usize("--nodes", opts.nodes(600));
    let events = opts.scale(1200, 300);
    let scenario = Scenario::paper(nodes, 999);
    let skew = EventDistribution::Hotspot { center: vec![0.85, 0.1, 0.1], std_dev: 0.02 };

    let subjects = vec![
        Subject::Dim,
        Subject::Pool(None),
        Subject::Pool(Some(200)),
        Subject::Pool(Some(50)),
        Subject::Pool(Some(10)),
    ];
    let results = run_trials(opts.jobs, subjects, |_, subject| {
        let mut seed = scenario.seed;
        let (topology, field) = loop {
            let dep = Deployment::paper_setting(nodes, 40.0, 20.0, seed).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                break (topo, dep.field());
            }
            seed += 0x1000;
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mut generator = EventGenerator::new(3, skew.clone());
        match subject {
            Subject::Dim => {
                let mut dim = DimSystem::build(topology, field, 3).unwrap();
                let mut latencies = Vec::with_capacity(events);
                for i in 0..events {
                    let event = generator.generate(&mut rng);
                    let r = dim.insert_from(NodeId((i % nodes) as u32), event).unwrap();
                    latencies.push(r.elapsed * 1e3);
                }
                (
                    "dim".to_string(),
                    dim.max_owner_load() as u64,
                    "-".to_string(),
                    dim.traffic().total_messages() as f64 / events as f64,
                    Summary::of(&latencies),
                )
            }
            Subject::Pool(capacity) => {
                let mut config = PoolConfig::paper().with_seed(scenario.seed);
                if let Some(c) = capacity {
                    config = config.with_sharing(SharingPolicy::new(c));
                }
                let mut pool = PoolSystem::build(topology, field, config).unwrap();
                let mut latencies = Vec::with_capacity(events);
                for i in 0..events {
                    let event = generator.generate(&mut rng);
                    let r = pool.insert_from(NodeId((i % nodes) as u32), event).unwrap();
                    latencies.push(r.elapsed * 1e3);
                }
                let label = match capacity {
                    None => "pool (no sharing)".to_string(),
                    Some(c) => format!("pool (capacity {c})"),
                };
                (
                    label,
                    pool.store().max_node_load() as u64,
                    pool.store().loaded_nodes().to_string(),
                    pool.traffic().total_messages() as f64 / events as f64,
                    Summary::of(&latencies),
                )
            }
        }
    });

    // Latency columns report per-insert virtual time in milliseconds.
    let mut table = pool_bench::Table::new(
        "Hotspot under skewed events",
        &[
            "system",
            "max_node_load",
            "loaded_nodes",
            "insert_msgs_per_event",
            "insert_p50_ms",
            "insert_p99_ms",
        ],
    );
    table.meta("nodes", nodes);
    table.meta("events", events);
    for (label, max_load, loaded, per_event, latency) in &results {
        table.row(vec![
            label.clone().into(),
            (*max_load).into(),
            loaded.clone().into(),
            (*per_event).into(),
            latency.median.into(),
            latency.p99.into(),
        ]);
    }
    opts.emit("hotspot", &table);
}
