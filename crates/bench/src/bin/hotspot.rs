//! Ablation: skewed events and the workload-sharing mechanism (§4.2).
//!
//! Pool's claim 3 (§1): an index node experiencing a burst of insertions
//! can share load with its neighbors. This experiment drives a heavily
//! skewed event stream into (a) DIM, (b) Pool without sharing, and
//! (c) Pool with sharing at several capacities, then reports the maximum
//! per-node storage load — the hotspot indicator.
//!
//! Run: `cargo run -p pool-bench --bin hotspot --release`

use pool_bench::harness::{print_header, Scenario};
use pool_core::config::{PoolConfig, SharingPolicy};
use pool_core::system::PoolSystem;
use pool_dim::system::DimSystem;
use pool_netsim::deployment::Deployment;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use pool_workloads::events::{EventDistribution, EventGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let nodes = 600usize;
    let events = 1200usize;
    let scenario = Scenario::paper(nodes, 999);
    let mut seed = scenario.seed;
    let (topology, field) = loop {
        let dep = Deployment::paper_setting(nodes, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            break (topo, dep.field());
        }
        seed += 0x1000;
    };
    let skew = EventDistribution::Hotspot { center: vec![0.85, 0.1, 0.1], std_dev: 0.02 };

    // DIM baseline under skew.
    let mut dim = DimSystem::build(topology.clone(), field, 3).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut generator = EventGenerator::new(3, skew.clone());
    for i in 0..events {
        let event = generator.generate(&mut rng);
        dim.insert_from(NodeId((i % nodes) as u32), event).unwrap();
    }

    print_header(
        &format!("Hotspot under skewed events ({events} events, {nodes} nodes)"),
        &["system", "max_node_load", "loaded_nodes", "insert_msgs_per_event"],
    );
    println!(
        "dim\t{}\t-\t{:.2}",
        dim.max_owner_load(),
        dim.traffic().total_messages() as f64 / events as f64
    );

    for capacity in [None, Some(200), Some(50), Some(10)] {
        let mut config = PoolConfig::paper().with_seed(scenario.seed);
        if let Some(c) = capacity {
            config = config.with_sharing(SharingPolicy::new(c));
        }
        let mut pool = PoolSystem::build(topology.clone(), field, config).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut generator = EventGenerator::new(3, skew.clone());
        for i in 0..events {
            let event = generator.generate(&mut rng);
            pool.insert_from(NodeId((i % nodes) as u32), event).unwrap();
        }
        let label = match capacity {
            None => "pool (no sharing)".to_string(),
            Some(c) => format!("pool (capacity {c})"),
        };
        println!(
            "{label}\t{}\t{}\t{:.2}",
            pool.store().max_node_load(),
            pool.store().loaded_nodes(),
            pool.traffic().total_messages() as f64 / events as f64
        );
    }
}
