//! Ablation: pool side length `l`.
//!
//! The paper fixes `l = 10` without a sweep. Larger pools mean finer value
//! partitioning (fewer false-positive cells per query) but more index
//! nodes spread over a wider area (longer intra-pool fan-out); smaller
//! pools are compact but coarse. This sweep locates the trade-off.
//!
//! Run: `cargo run -p pool-bench --bin sweep_pool_side --release`

use pool_bench::cli::arg_usize;
use pool_bench::harness::{measure, print_header, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

fn main() {
    let queries = arg_usize("--queries", 60);
    let nodes = arg_usize("--nodes", 900);
    print_header(
        &format!("Pool side length sweep ({nodes} nodes, exponential exact-match queries)"),
        &["l", "pool_msgs", "pool_cells", "pool_msgs_1partial"],
    );
    for side in [4u32, 6, 8, 10, 14, 18] {
        let scenario = Scenario::paper(nodes, 5150 + side as u64);
        let config = PoolConfig::paper().with_pool_side(side);
        let mut pair = SystemPair::build(&scenario, config, EventDistribution::Uniform);
        let exact = measure(
            &mut pair,
            QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 }),
            queries,
        );
        let partial = measure(&mut pair, QueryKind::MPartial(1), queries);
        println!(
            "{side}\t{:.1}\t{:.1}\t{:.1}",
            exact.pool.mean, exact.pool_cells, partial.pool.mean
        );
    }
}
