//! Ablation: pool side length `l`.
//!
//! The paper fixes `l = 10` without a sweep. Larger pools mean finer value
//! partitioning (fewer false-positive cells per query) but more index
//! nodes spread over a wider area (longer intra-pool fan-out); smaller
//! pools are compact but coarse. This sweep locates the trade-off; each
//! side length is an independent trial (serial seeds `5150 + l`
//! unchanged). Emits `BENCH_pool_side.json`.
//!
//! Run: `cargo run -p pool-bench --bin sweep_pool_side --release
//!       [-- --queries N --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::run_trials;
use pool_bench::harness::{measure, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

fn main() {
    let opts = BenchOpts::from_env();
    let queries = arg_usize("--queries", opts.queries(60));
    let nodes = arg_usize("--nodes", opts.nodes(900));
    let sides: Vec<u32> = if opts.smoke { vec![6, 10] } else { vec![4, 6, 8, 10, 14, 18] };

    let results = run_trials(opts.jobs, sides, |_, side| {
        let scenario = Scenario::paper(nodes, 5150 + side as u64);
        let config = PoolConfig::paper().with_pool_side(side);
        let mut pair = SystemPair::build(&scenario, config, EventDistribution::Uniform);
        let exact = measure(
            &mut pair,
            QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 }),
            queries,
        );
        let partial = measure(&mut pair, QueryKind::MPartial(1), queries);
        (side, exact, partial)
    });

    // Latency columns report the exact-match workload's virtual time.
    let mut columns = vec!["l", "pool_msgs", "pool_cells", "pool_msgs_1partial"];
    columns.extend(pool_bench::LATENCY_COLUMNS);
    let mut table = pool_bench::Table::new(
        "Pool side length sweep (exponential exact-match queries)",
        &columns,
    );
    table.meta("nodes", nodes);
    table.meta("queries", queries);
    for (side, exact, partial) in &results {
        let mut row: Vec<pool_bench::Cell> = vec![
            (*side).into(),
            exact.pool.mean.into(),
            exact.pool_cells.into(),
            partial.pool.mean.into(),
        ];
        row.extend(exact.latency_cells());
        table.row(row);
    }
    opts.emit("pool_side", &table);
}
