//! Ablation: event dimensionality `k`.
//!
//! The paper evaluates only `k = 3` but motivates growing sensor
//! capabilities (§1). Pool scales structurally with `k` — one more pool per
//! dimension — while DIM's zone codes simply cycle over more attributes.
//! This sweep measures both systems' exact- and partial-match costs from
//! k = 2 to k = 6 at a fixed 600-node network; each `k` is an independent
//! trial (serial seeds `7000 + k` unchanged). Emits
//! `BENCH_dimensionality.json`.
//!
//! Run: `cargo run -p pool-bench --bin dimensionality_sweep --release
//!       [-- --queries N --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::run_trials;
use pool_bench::harness::{measure, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

fn main() {
    let opts = BenchOpts::from_env();
    let queries = arg_usize("--queries", opts.queries(50));
    let nodes = arg_usize("--nodes", opts.nodes(600));
    let ks: Vec<usize> = (2..=opts.scale(6, 4)).collect();

    let results = run_trials(opts.jobs, ks, |_, k| {
        let scenario = Scenario { dims: k, ..Scenario::paper(nodes, 7_000 + k as u64) };
        let mut pair =
            SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
        let exact = measure(
            &mut pair,
            QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 }),
            queries,
        );
        let partial = measure(&mut pair, QueryKind::MPartial(1), queries);
        (k, exact, partial)
    });

    // Latency columns report the exact-match workload's virtual time.
    let mut columns = vec!["k", "pool_exact", "dim_exact", "pool_1partial", "dim_1partial"];
    columns.extend(pool_bench::LATENCY_COLUMNS);
    let mut table = pool_bench::Table::new(
        "Dimensionality sweep (exponential exact match + 1-partial)",
        &columns,
    );
    table.meta("nodes", nodes);
    table.meta("queries", queries);
    for (k, exact, partial) in &results {
        let mut row: Vec<pool_bench::report::Cell> = vec![
            (*k).into(),
            exact.pool.mean.into(),
            exact.dim.mean.into(),
            partial.pool.mean.into(),
            partial.dim.mean.into(),
        ];
        row.extend(exact.latency_cells());
        table.row(row);
    }
    opts.emit("dimensionality", &table);
}
