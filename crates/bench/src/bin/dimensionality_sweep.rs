//! Ablation: event dimensionality `k`.
//!
//! The paper evaluates only `k = 3` but motivates growing sensor
//! capabilities (§1). Pool scales structurally with `k` — one more pool per
//! dimension — while DIM's zone codes simply cycle over more attributes.
//! This sweep measures both systems' exact- and partial-match costs from
//! k = 2 to k = 6 at a fixed 600-node network.
//!
//! Run: `cargo run -p pool-bench --bin dimensionality_sweep --release`

use pool_bench::cli::arg_usize;
use pool_bench::harness::{measure, print_header, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

fn main() {
    let queries = arg_usize("--queries", 50);
    let nodes = arg_usize("--nodes", 600);
    print_header(
        &format!("Dimensionality sweep ({nodes} nodes, exponential exact match + 1-partial)"),
        &["k", "pool_exact", "dim_exact", "pool_1partial", "dim_1partial"],
    );
    for k in 2usize..=6 {
        let scenario = Scenario { dims: k, ..Scenario::paper(nodes, 7_000 + k as u64) };
        let mut pair =
            SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
        let exact = measure(
            &mut pair,
            QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 }),
            queries,
        );
        let partial = measure(&mut pair, QueryKind::MPartial(1), queries);
        println!(
            "{k}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            exact.pool.mean, exact.dim.mean, partial.pool.mean, partial.dim.mean
        );
    }
}
