//! §5.2's omitted comparison: data-insertion cost vs network size.
//!
//! The paper drops this plot because "the data insertion cost of both
//! methods are conceptually the same" (both GPSR-route each event to one
//! storage node). This binary verifies that claim empirically; each
//! network size is an independent trial on the execution engine (the
//! serial seeds, `77 + nodes`, are unchanged). Emits
//! `BENCH_insertion.json`.
//!
//! Run: `cargo run -p pool-bench --bin insertion_cost --release
//!       [-- --jobs N --smoke]`

use pool_bench::cli::BenchOpts;
use pool_bench::exec::run_trials;
use pool_bench::harness::Scenario;
use pool_core::config::PoolConfig;
use pool_core::system::PoolSystem;
use pool_dim::system::DimSystem;
use pool_netsim::deployment::Deployment;
use pool_netsim::node::NodeId;
use pool_netsim::stats::Summary;
use pool_netsim::topology::Topology;
use pool_workloads::events::{EventDistribution, EventGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = BenchOpts::from_env();
    let results = run_trials(opts.jobs, opts.network_sizes(), |_, n| {
        let scenario = Scenario::paper(n, 77 + n as u64);
        let mut seed = scenario.seed;
        let (topology, field) = loop {
            let dep = Deployment::paper_setting(n, 40.0, 20.0, seed).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                break (topo, dep.field());
            }
            seed += 0x1000;
        };
        let mut pool = PoolSystem::build(
            topology.clone(),
            field,
            PoolConfig::paper().with_seed(scenario.seed),
        )
        .unwrap();
        let mut dim = DimSystem::build(topology, field, 3).unwrap();

        let mut rng = StdRng::seed_from_u64(scenario.seed);
        let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
        let mut pool_costs = Vec::new();
        let mut dim_costs = Vec::new();
        let mut pool_latencies = Vec::new();
        let mut dim_latencies = Vec::new();
        for node in 0..n as u32 {
            for _ in 0..scenario.events_per_node {
                let event = generator.generate(&mut rng);
                let p = pool.insert_from(NodeId(node), event.clone()).unwrap();
                let d = dim.insert_from(NodeId(node), event).unwrap();
                pool_costs.push(p.messages as f64);
                dim_costs.push(d.messages as f64);
                pool_latencies.push(p.elapsed * 1e3);
                dim_latencies.push(d.elapsed * 1e3);
            }
        }
        (
            n,
            Summary::of(&pool_costs),
            Summary::of(&dim_costs),
            Summary::of(&pool_latencies),
            Summary::of(&dim_latencies),
        )
    });

    // Latency columns report per-insert virtual time in milliseconds.
    let mut columns = vec!["nodes", "pool_mean", "dim_mean", "pool_p95", "dim_p95"];
    columns.extend(pool_bench::LATENCY_COLUMNS);
    let mut table =
        pool_bench::Table::new("Insertion cost (messages per event) vs network size", &columns);
    for (n, ps, ds, pl, dl) in &results {
        table.row(vec![
            (*n).into(),
            ps.mean.into(),
            ds.mean.into(),
            ps.p95.into(),
            ds.p95.into(),
            pl.median.into(),
            pl.p99.into(),
            dl.median.into(),
            dl.p99.into(),
        ]);
    }
    opts.emit("insertion", &table);
}
