//! Ablation: query cost vs range size (selectivity), Pool vs DIM.
//!
//! Figure 6 varies network size at two fixed size *distributions*; this
//! sweep holds the network at 900 nodes and sweeps a constant range size
//! from highly selective to nearly the whole domain, exposing where each
//! system's cost comes from and whether a crossover exists.
//!
//! Run: `cargo run -p pool-bench --bin selectivity_sweep --release`

use pool_bench::cli::arg_usize;
use pool_bench::harness::{measure, print_header, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

fn main() {
    let queries = arg_usize("--queries", 50);
    let nodes = arg_usize("--nodes", 900);
    let scenario = Scenario::paper(nodes, 60_000);
    let mut pair = SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
    print_header(
        &format!("Selectivity sweep ({nodes} nodes, constant range size per dimension)"),
        &["range_size", "pool_msgs", "dim_msgs", "dim/pool", "pool_cells", "dim_zones"],
    );
    for size in [0.02f64, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9] {
        let m =
            measure(&mut pair, QueryKind::Exact(RangeSizeDistribution::Constant { size }), queries);
        println!(
            "{size:.2}\t{:.1}\t{:.1}\t{:.2}\t{:.1}\t{:.1}",
            m.pool.mean,
            m.dim.mean,
            m.dim_over_pool(),
            m.pool_cells,
            m.dim_zones
        );
    }
}
