//! Ablation: query cost vs range size (selectivity), Pool vs DIM.
//!
//! Figure 6 varies network size at two fixed size *distributions*; this
//! sweep holds the network at 900 nodes and sweeps a constant range size
//! from highly selective to nearly the whole domain, exposing where each
//! system's cost comes from and whether a crossover exists.
//!
//! Each range size is an independent trial with a derived seed
//! (`derive_seed(60_000, i)`) — the serial binary reused one deployment
//! and one RNG across all sizes, coupling every point to its
//! predecessors. Emits `BENCH_selectivity.json`.
//!
//! Run: `cargo run -p pool-bench --bin selectivity_sweep --release
//!       [-- --queries N --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::{derive_seed, run_trials};
use pool_bench::harness::{measure, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

fn main() {
    let opts = BenchOpts::from_env();
    let queries = arg_usize("--queries", opts.queries(50));
    let nodes = arg_usize("--nodes", opts.nodes(900));
    let sizes: Vec<f64> = if opts.smoke {
        vec![0.05, 0.2, 0.5]
    } else {
        vec![0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]
    };

    let results = run_trials(opts.jobs, sizes, |i, size| {
        let scenario = Scenario::paper(nodes, derive_seed(60_000, i as u64));
        let mut pair =
            SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
        let m =
            measure(&mut pair, QueryKind::Exact(RangeSizeDistribution::Constant { size }), queries);
        (size, m)
    });

    let mut columns =
        vec!["range_size", "pool_msgs", "dim_msgs", "dim_over_pool", "pool_cells", "dim_zones"];
    columns.extend(pool_bench::LATENCY_COLUMNS);
    let mut table =
        pool_bench::Table::new("Selectivity sweep (constant range size per dimension)", &columns);
    table.meta("nodes", nodes);
    table.meta("queries", queries);
    for (size, m) in &results {
        let mut row: Vec<pool_bench::report::Cell> = vec![
            (*size).into(),
            m.pool.mean.into(),
            m.dim.mean.into(),
            m.dim_over_pool().into(),
            m.pool_cells.into(),
            m.dim_zones.into(),
        ];
        row.extend(m.latency_cells());
        table.row(row);
    }
    opts.emit("selectivity", &table);
}
