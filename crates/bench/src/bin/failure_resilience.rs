//! Failure-injection experiment: event survival and query health as nodes
//! die, with and without Pool's replication.
//!
//! Rounds of random node failures are injected into three deployments over
//! the same network and workload: DIM, plain Pool, and Pool with
//! replication. After every round we report surviving events, the repair
//! bill, and a full-domain query's result size (which doubles as a
//! correctness audit: it must equal the survivor count).
//!
//! Run: `cargo run -p pool-bench --bin failure_resilience --release`

use pool_bench::harness::print_header;
use pool_core::config::PoolConfig;
use pool_core::event::Event;
use pool_core::failure::FailureReport;
use pool_core::query::RangeQuery;
use pool_core::system::PoolSystem;
use pool_dim::system::DimSystem;
use pool_netsim::deployment::Deployment;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use pool_workloads::events::{EventDistribution, EventGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let nodes = 600usize;
    let events = 1200usize;
    let mut seed = 2026u64;
    let (topology, field) = loop {
        let dep = Deployment::paper_setting(nodes, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            break (topo, dep.field());
        }
        seed += 0x1000;
    };

    let mut dim = DimSystem::build(topology.clone(), field, 3).unwrap();
    let mut plain =
        PoolSystem::build(topology.clone(), field, PoolConfig::paper().with_seed(seed)).unwrap();
    let mut replicated = PoolSystem::build(
        topology.clone(),
        field,
        PoolConfig::paper().with_seed(seed).with_replication(),
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(1);
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
    for i in 0..events {
        let event: Event = generator.generate(&mut rng);
        let src = NodeId((i % nodes) as u32);
        dim.insert_from(src, event.clone()).unwrap();
        plain.insert_from(src, event.clone()).unwrap();
        replicated.insert_from(src, event).unwrap();
    }

    print_header(
        &format!("Failure resilience ({nodes} nodes, {events} events, 5 rounds of 2% failures)"),
        &["round", "dead_total", "dim_alive", "pool_alive", "pool_repl_alive", "repl_repair_msgs"],
    );
    let full = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
    let mut dead_total = 0usize;
    let mut campaign = FailureReport::default();
    for round in 1..=5 {
        // Fail 2% of the surviving population, avoiding a network split.
        let victims: Vec<NodeId> = {
            let alive: Vec<NodeId> = plain
                .topology()
                .nodes()
                .iter()
                .filter(|n| plain.topology().is_alive(n.id))
                .map(|n| n.id)
                .collect();
            let count = (alive.len() / 50).max(1);
            let mut picked = Vec::new();
            let mut tries = 0;
            while picked.len() < count && tries < 1000 {
                tries += 1;
                let candidate = alive[rng.gen_range(0..alive.len())];
                if !picked.contains(&candidate)
                    && plain
                        .topology()
                        .without_nodes(&[&picked[..], &[candidate]].concat())
                        .is_connected()
                {
                    picked.push(candidate);
                }
            }
            picked
        };
        dead_total += victims.len();

        dim.fail_nodes(&victims).unwrap();
        plain.fail_nodes(&victims).unwrap();
        let report = replicated.fail_nodes(&victims).unwrap();
        campaign = campaign.merge(&report);

        let sink =
            plain.topology().nodes().iter().find(|n| plain.topology().is_alive(n.id)).unwrap().id;
        let dim_alive = dim.query_from(sink, &full).unwrap().events.len();
        let pool_alive = plain.query_from(sink, &full).unwrap().events.len();
        let repl_alive = replicated.query_from(sink, &full).unwrap().events.len();
        assert_eq!(dim_alive, dim.stored_events());
        assert_eq!(pool_alive, plain.store().len());
        assert_eq!(repl_alive, replicated.store().len());
        println!(
            "{round}\t{dead_total}\t{dim_alive}\t{pool_alive}\t{repl_alive}\t{}",
            report.repair_messages
        );
    }
    println!("\ncampaign (replicated Pool): {campaign}");
}
