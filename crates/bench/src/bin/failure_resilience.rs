//! Failure-injection experiment: event survival and query health as nodes
//! die, with and without Pool's replication.
//!
//! Rounds of random node failures are injected into three deployments over
//! the same network and workload: DIM, plain Pool, and Pool with
//! replication. After every round we report surviving events, the repair
//! bill, and a full-domain query's result size (which doubles as a
//! correctness audit: it must equal the survivor count).
//!
//! Failure rounds are inherently sequential (each round mutates the same
//! three deployments), so the campaign is submitted as a single trial;
//! `--jobs` is accepted for CLI uniformity. Emits `BENCH_failure.json`.
//!
//! Run: `cargo run -p pool-bench --bin failure_resilience --release
//!       [-- --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::run_trials;
use pool_core::config::PoolConfig;
use pool_core::event::Event;
use pool_core::failure::FailureReport;
use pool_core::query::RangeQuery;
use pool_core::system::PoolSystem;
use pool_dim::system::DimSystem;
use pool_netsim::deployment::Deployment;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use pool_workloads::events::{EventDistribution, EventGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let opts = BenchOpts::from_env();
    let nodes = arg_usize("--nodes", opts.nodes(600));
    let events = opts.scale(1200, 300);
    let rounds = opts.scale(5, 2);

    let mut results = run_trials(opts.jobs, vec![()], |_, ()| {
        let mut seed = 2026u64;
        let (topology, field) = loop {
            let dep = Deployment::paper_setting(nodes, 40.0, 20.0, seed).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                break (topo, dep.field());
            }
            seed += 0x1000;
        };

        let mut dim = DimSystem::build(topology.clone(), field, 3).unwrap();
        let mut plain =
            PoolSystem::build(topology.clone(), field, PoolConfig::paper().with_seed(seed))
                .unwrap();
        let mut replicated = PoolSystem::build(
            topology.clone(),
            field,
            PoolConfig::paper().with_seed(seed).with_replication(),
        )
        .unwrap();

        let mut rng = StdRng::seed_from_u64(1);
        let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
        for i in 0..events {
            let event: Event = generator.generate(&mut rng);
            let src = NodeId((i % nodes) as u32);
            dim.insert_from(src, event.clone()).unwrap();
            plain.insert_from(src, event.clone()).unwrap();
            replicated.insert_from(src, event).unwrap();
        }

        let full = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
        let mut dead_total = 0usize;
        let mut campaign = FailureReport::default();
        let mut rows = Vec::new();
        for round in 1..=rounds {
            // Fail 2% of the surviving population, avoiding a network
            // split.
            let victims: Vec<NodeId> = {
                let alive: Vec<NodeId> = plain
                    .topology()
                    .nodes()
                    .iter()
                    .filter(|n| plain.topology().is_alive(n.id))
                    .map(|n| n.id)
                    .collect();
                let count = (alive.len() / 50).max(1);
                let mut picked = Vec::new();
                let mut tries = 0;
                while picked.len() < count && tries < 1000 {
                    tries += 1;
                    let candidate = alive[rng.gen_range(0..alive.len())];
                    if !picked.contains(&candidate)
                        && plain
                            .topology()
                            .without_nodes(&[&picked[..], &[candidate]].concat())
                            .is_connected()
                    {
                        picked.push(candidate);
                    }
                }
                picked
            };
            dead_total += victims.len();

            dim.fail_nodes(&victims).unwrap();
            plain.fail_nodes(&victims).unwrap();
            let report = replicated.fail_nodes(&victims).unwrap();
            campaign = campaign.merge(&report);

            let sink = plain
                .topology()
                .nodes()
                .iter()
                .find(|n| plain.topology().is_alive(n.id))
                .unwrap()
                .id;
            let dim_result = dim.query_from(sink, &full).unwrap();
            let pool_result = plain.query_from(sink, &full).unwrap();
            let repl_result = replicated.query_from(sink, &full).unwrap();
            let (dim_alive, pool_alive, repl_alive) =
                (dim_result.events.len(), pool_result.events.len(), repl_result.events.len());
            assert_eq!(dim_alive, dim.stored_events());
            assert_eq!(pool_alive, plain.store().len());
            assert_eq!(repl_alive, replicated.store().len());
            rows.push((
                round,
                dead_total,
                dim_alive,
                pool_alive,
                repl_alive,
                report.repair_messages,
                pool_result.cost.elapsed * 1e3,
                dim_result.cost.elapsed * 1e3,
            ));
        }
        (rows, campaign)
    });
    let (rows, campaign) = results.pop().expect("one trial");

    // The latency columns time the full-domain audit query on the wounded
    // network, in virtual milliseconds.
    let mut table = pool_bench::Table::new(
        "Failure resilience (rounds of 2% failures)",
        &[
            "round",
            "dead_total",
            "dim_alive",
            "pool_alive",
            "pool_repl_alive",
            "repl_repair_msgs",
            "pool_query_ms",
            "dim_query_ms",
        ],
    );
    table.meta("nodes", nodes);
    table.meta("events", events);
    table.meta("rounds", rounds);
    for (round, dead_total, dim_alive, pool_alive, repl_alive, repair, pool_ms, dim_ms) in &rows {
        table.row(vec![
            (*round).into(),
            (*dead_total).into(),
            (*dim_alive).into(),
            (*pool_alive).into(),
            (*repl_alive).into(),
            (*repair).into(),
            (*pool_ms).into(),
            (*dim_ms).into(),
        ]);
    }
    opts.emit("failure", &table);
    println!("\ncampaign (replicated Pool): {campaign}");
}
