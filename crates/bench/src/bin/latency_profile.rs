//! Latency profile: per-operation virtual time for Pool, DIM, and a
//! replicated GHT across radio regimes, serial vs overlapping fan-out.
//! Thin wrapper over [`pool_bench::figures::latency`]; see that module
//! for the experiment design and regression guards.
//!
//! Run: `cargo run -p pool-bench --bin latency_profile --release
//!       [-- --queries N --nodes N --jobs N --smoke]`

use pool_bench::figures::latency;

fn main() {
    let params = latency::Params::from_env();
    let table = latency::collect(&params);
    params.opts.emit("latency", &table);
}
