//! Network-lifetime experiment: how long until the first sensor dies?
//!
//! The paper's energy argument is indirect (fewer messages = longer life).
//! This experiment makes it direct: both systems serve the same mixed
//! insert/query workload, every transmission drains the first-order radio
//! energy model, and we report how many workload rounds each system
//! sustains before any node's battery empties — plus who was draining
//! fastest, since uneven drain (hotspots) kills networks early.
//!
//! The round loop is inherently sequential (each round extends the same
//! deployments' ledgers), so the whole experiment is submitted as a
//! single trial; `--jobs` is accepted for CLI uniformity. Emits
//! `BENCH_lifetime.json`.
//!
//! Run: `cargo run -p pool-bench --bin lifetime --release
//!       [-- --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::run_trials;
use pool_bench::harness::{Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_netsim::energy::{EnergyLedger, EnergyModel};
use pool_netsim::node::NodeId;
use pool_workloads::events::{EventDistribution, EventGenerator};
use pool_workloads::queries::{exact_query, RangeSizeDistribution};
use rand::Rng;

struct LifetimeResult {
    rows: Vec<(usize, f64, f64, f64, f64)>,
    pool_dead_round: Option<usize>,
    dim_dead_round: Option<usize>,
    pool_busiest: (NodeId, u64),
    dim_busiest: (NodeId, u64),
}

fn main() {
    let opts = BenchOpts::from_env();
    let nodes = arg_usize("--nodes", opts.nodes(600));
    let max_rounds = opts.scale(4000, 150);
    // A small battery so the experiment terminates quickly: ~2000 sends
    // full scale, far fewer in smoke mode.
    let battery_sends = opts.scale(2000, 150) as f64;

    let mut results = run_trials(opts.jobs, vec![()], |_, ()| {
        let scenario = Scenario { events_per_node: 0, ..Scenario::paper(nodes, 515) };
        let mut pair =
            SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
        let capacity = battery_sends * 100e-6;
        let model = EnergyModel::default();
        let mut generator = EventGenerator::new(3, EventDistribution::Uniform);

        let mut rows = Vec::new();
        let mut pool_dead_round = None;
        let mut dim_dead_round = None;
        let mut round = 0usize;
        while (pool_dead_round.is_none() || dim_dead_round.is_none()) && round < max_rounds {
            round += 1;
            // One workload round: 10 insertions and 2 exponential-size
            // queries.
            for _ in 0..10 {
                let src = pair.random_node();
                let event = generator.generate(pair.rng());
                pair.pool.insert_from(src, event.clone()).expect("pool insert");
                pair.dim.insert_from(src, event).expect("dim insert");
            }
            for _ in 0..2 {
                let sink = pair.random_node();
                let q =
                    exact_query(pair.rng(), 3, RangeSizeDistribution::Exponential { mean: 0.1 });
                pair.pool.query_from(sink, &q).expect("pool query");
                pair.dim.query_from(sink, &q).expect("dim query");
            }
            // Re-price the cumulative drain each round from the virtual
            // clock's per-node transmit/receive counts: unlike the message
            // ledger, the clock observes the receiving end of every
            // transmission — ARQ retransmissions included — so batteries
            // drain on both sides of every radio event.
            let pool_clock = pair.pool.transport().clock();
            let mut pool_energy = EnergyLedger::new(nodes, capacity, model);
            pool_energy.charge_counts(pool_clock.tx_counts(), pool_clock.rx_counts());
            let dim_clock = pair.dim.transport().clock();
            let mut dim_energy = EnergyLedger::new(nodes, capacity, model);
            dim_energy.charge_counts(dim_clock.tx_counts(), dim_clock.rx_counts());

            if pool_dead_round.is_none() && pool_energy.min_remaining_fraction() <= 0.0 {
                pool_dead_round = Some(round);
            }
            if dim_dead_round.is_none() && dim_energy.min_remaining_fraction() <= 0.0 {
                dim_dead_round = Some(round);
            }
            if round.is_multiple_of(50) {
                rows.push((
                    round,
                    pool_energy.min_remaining_fraction(),
                    dim_energy.min_remaining_fraction(),
                    pair.pool.transport().clock().now(),
                    pair.dim.transport().clock().now(),
                ));
            }
        }
        // Hotspot context: who is draining fastest?
        let busiest = |t: &pool_netsim::stats::TrafficStats| {
            (0..nodes as u32)
                .map(NodeId)
                .max_by_key(|&n| t.load(n))
                .map(|n| (n, t.load(n)))
                .unwrap()
        };
        let _ = pair.rng().gen::<u8>();
        LifetimeResult {
            rows,
            pool_dead_round,
            dim_dead_round,
            pool_busiest: busiest(pair.pool.traffic()),
            dim_busiest: busiest(pair.dim.traffic()),
        }
    });
    let result = results.pop().expect("one trial");

    // The vtime columns are each system's cumulative virtual clock at the
    // sampled round: the latency cost of having served the same workload.
    let mut table = pool_bench::Table::new(
        "Network lifetime (10 inserts + 2 queries per round)",
        &["round", "pool_min_battery", "dim_min_battery", "pool_vtime_s", "dim_vtime_s"],
    );
    table.meta("nodes", nodes);
    table.meta("battery_sends", battery_sends as usize);
    let dead = |r: Option<usize>| r.map_or("-".to_string(), |v| v.to_string());
    table.meta("pool_first_death_round", dead(result.pool_dead_round));
    table.meta("dim_first_death_round", dead(result.dim_dead_round));
    table.meta("pool_busiest_node", result.pool_busiest.0 .0 as usize);
    table.meta("pool_busiest_sends", result.pool_busiest.1);
    table.meta("dim_busiest_node", result.dim_busiest.0 .0 as usize);
    table.meta("dim_busiest_sends", result.dim_busiest.1);
    for (round, pool_min, dim_min, pool_vtime, dim_vtime) in &result.rows {
        table.row(vec![
            (*round).into(),
            (*pool_min).into(),
            (*dim_min).into(),
            (*pool_vtime).into(),
            (*dim_vtime).into(),
        ]);
    }
    opts.emit("lifetime", &table);

    println!("\nfirst node death:");
    println!("  pool: round {}", dead(result.pool_dead_round));
    println!("  dim : round {}", dead(result.dim_dead_round));
    println!(
        "  pool busiest node {}: {} sends; dim busiest node {}: {} sends",
        result.pool_busiest.0, result.pool_busiest.1, result.dim_busiest.0, result.dim_busiest.1
    );
}
