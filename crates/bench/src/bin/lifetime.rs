//! Network-lifetime experiment: how long until the first sensor dies?
//!
//! The paper's energy argument is indirect (fewer messages = longer life).
//! This experiment makes it direct: both systems serve the same mixed
//! insert/query workload, every transmission drains the first-order radio
//! energy model, and we report how many workload rounds each system
//! sustains before any node's battery empties — plus the residual-energy
//! spread, since uneven drain (hotspots) kills networks early.
//!
//! Run: `cargo run -p pool-bench --bin lifetime --release`

use pool_bench::cli::arg_usize;
use pool_bench::harness::{print_header, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_netsim::energy::{EnergyLedger, EnergyModel};
use pool_netsim::node::NodeId;
use pool_workloads::events::{EventDistribution, EventGenerator};
use pool_workloads::queries::{exact_query, RangeSizeDistribution};
use rand::Rng;

fn main() {
    let nodes = arg_usize("--nodes", 600);
    let scenario = Scenario { events_per_node: 0, ..Scenario::paper(nodes, 515) };
    let mut pair = SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);

    // A small battery so the experiment terminates quickly: ~2000 sends.
    let capacity = 2000.0 * 100e-6;
    let model = EnergyModel::default();
    let mut pool_energy;
    let mut dim_energy;
    let mut generator = EventGenerator::new(3, EventDistribution::Uniform);

    let mut pool_dead_round = None;
    let mut dim_dead_round = None;
    let mut round = 0usize;
    print_header(
        &format!("Network lifetime ({nodes} nodes, 10 inserts + 2 queries per round)"),
        &["round", "pool_min_battery", "dim_min_battery"],
    );
    while (pool_dead_round.is_none() || dim_dead_round.is_none()) && round < 4000 {
        round += 1;
        // One workload round: 10 insertions and 2 exponential-size queries.
        for _ in 0..10 {
            let src = pair.random_node();
            let event = generator.generate(pair.rng());
            pair.pool.insert_from(src, event.clone()).expect("pool insert");
            pair.dim.insert_from(src, event).expect("dim insert");
        }
        for _ in 0..2 {
            let sink = pair.random_node();
            let q = exact_query(pair.rng(), 3, RangeSizeDistribution::Exponential { mean: 0.1 });
            pair.pool.query_from(sink, &q).expect("pool query");
            pair.dim.query_from(sink, &q).expect("dim query");
        }
        // Re-price the cumulative ledgers (charge_traffic is idempotent on
        // fresh ledgers, so rebuild each round).
        pool_energy = EnergyLedger::new(nodes, capacity, model);
        pool_energy.charge_traffic(pair.pool.traffic());
        dim_energy = EnergyLedger::new(nodes, capacity, model);
        dim_energy.charge_traffic(pair.dim.traffic());

        if pool_dead_round.is_none() && pool_energy.min_remaining_fraction() <= 0.0 {
            pool_dead_round = Some(round);
        }
        if dim_dead_round.is_none() && dim_energy.min_remaining_fraction() <= 0.0 {
            dim_dead_round = Some(round);
        }
        if round.is_multiple_of(50) {
            println!(
                "{round}\t{:.3}\t{:.3}",
                pool_energy.min_remaining_fraction(),
                dim_energy.min_remaining_fraction()
            );
        }
    }
    println!("\nfirst node death:");
    println!("  pool: round {}", pool_dead_round.map_or("-".into(), |r| r.to_string()));
    println!("  dim : round {}", dim_dead_round.map_or("-".into(), |r| r.to_string()));
    // Hotspot context: who is draining fastest?
    let busiest = |t: &pool_netsim::stats::TrafficStats| {
        (0..nodes as u32).map(NodeId).max_by_key(|&n| t.load(n)).map(|n| (n, t.load(n))).unwrap()
    };
    let (pn, pl) = busiest(pair.pool.traffic());
    let (dn, dl) = busiest(pair.dim.traffic());
    println!("  pool busiest node {pn}: {pl} sends; dim busiest node {dn}: {dl} sends");
    let _ = pair.rng().gen::<u8>();
}
