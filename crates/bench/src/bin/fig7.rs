//! Figure 7: partial-match query cost at 900 nodes.
//!
//! * 7(a) — 1-partial vs 2-partial match queries: cost rises with the
//!   number of unspecified dimensions; DIM is ~180% / ~250% costlier than
//!   Pool.
//! * 7(b) — 1@1 / 1@2 / 1@3 partial queries: DIM's cost depends strongly on
//!   *which* dimension is unspecified (worst when it is the first, the top
//!   of its k-d split order); Pool is flat.
//!
//! Run: `cargo run -p pool-bench --bin fig7 --release [-- --queries N --nodes N]`

use pool_bench::cli::arg_usize;
use pool_bench::harness::{measure, print_header, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;

fn main() {
    let queries = arg_usize("--queries", 100);
    let nodes = arg_usize("--nodes", 900);
    let scenario = Scenario::paper(nodes, 4242);
    let mut pair = SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);

    print_header(
        &format!("Figure 7(a): partial-match cost by number of unspecified dims ({nodes} nodes)"),
        &["workload", "pool_msgs", "dim_msgs", "dim/pool", "pool_cells", "dim_zones"],
    );
    for m in [1usize, 2] {
        let meas = measure(&mut pair, QueryKind::MPartial(m), queries);
        println!(
            "{m}-partial\t{:.1}\t{:.1}\t{:.2}\t{:.1}\t{:.1}",
            meas.pool.mean,
            meas.dim.mean,
            meas.dim_over_pool(),
            meas.pool_cells,
            meas.dim_zones
        );
    }

    print_header(
        &format!("Figure 7(b): 1@n-partial match cost by unspecified dimension ({nodes} nodes)"),
        &["workload", "pool_msgs", "dim_msgs", "dim/pool", "pool_cells", "dim_zones"],
    );
    for n in 0..3usize {
        let meas = measure(&mut pair, QueryKind::OneAtN(n), queries);
        println!(
            "1@{}-partial\t{:.1}\t{:.1}\t{:.2}\t{:.1}\t{:.1}",
            n + 1,
            meas.pool.mean,
            meas.dim.mean,
            meas.dim_over_pool(),
            meas.pool_cells,
            meas.dim_zones
        );
    }
}
