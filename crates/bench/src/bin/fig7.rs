//! Figure 7: partial-match query cost at 900 nodes.
//!
//! * 7(a) — 1-partial vs 2-partial match queries: cost rises with the
//!   number of unspecified dimensions; DIM is ~180% / ~250% costlier than
//!   Pool.
//! * 7(b) — 1@1 / 1@2 / 1@3 partial queries: DIM's cost depends strongly on
//!   *which* dimension is unspecified (worst when it is the first, the top
//!   of its k-d split order); Pool is flat.
//!
//! Each workload is an independent trial on the execution engine with its
//! own derived seed (`derive_seed(4242, i)`) — the serial binary used to
//! thread one deployment and one RNG through all five measurements, which
//! coupled every point to its predecessors and made the sweep
//! unschedulable. Emits `BENCH_fig7.json`.
//!
//! Run: `cargo run -p pool-bench --bin fig7 --release
//!       [-- --queries N --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::{derive_seed, run_trials};
use pool_bench::harness::{measure, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;

fn main() {
    let opts = BenchOpts::from_env();
    let queries = arg_usize("--queries", opts.queries(100));
    let nodes = arg_usize("--nodes", opts.nodes(900));

    let workloads: Vec<(&str, &str, QueryKind)> = vec![
        ("7a", "1-partial", QueryKind::MPartial(1)),
        ("7a", "2-partial", QueryKind::MPartial(2)),
        ("7b", "1@1-partial", QueryKind::OneAtN(0)),
        ("7b", "1@2-partial", QueryKind::OneAtN(1)),
        ("7b", "1@3-partial", QueryKind::OneAtN(2)),
    ];
    let results = run_trials(opts.jobs, workloads, |i, (panel, label, kind)| {
        let scenario = Scenario::paper(nodes, derive_seed(4242, i as u64));
        let mut pair =
            SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
        (panel, label, measure(&mut pair, kind, queries))
    });

    let mut columns = vec![
        "panel",
        "workload",
        "pool_msgs",
        "dim_msgs",
        "dim_over_pool",
        "pool_cells",
        "dim_zones",
    ];
    columns.extend(pool_bench::LATENCY_COLUMNS);
    let mut table =
        pool_bench::Table::new("Figure 7: partial-match query cost by workload", &columns);
    table.meta("nodes", nodes);
    table.meta("queries", queries);
    for (panel, label, m) in &results {
        let mut row: Vec<pool_bench::report::Cell> = vec![
            (*panel).into(),
            (*label).into(),
            m.pool.mean.into(),
            m.dim.mean.into(),
            m.dim_over_pool().into(),
            m.pool_cells.into(),
            m.dim_zones.into(),
        ];
        row.extend(m.latency_cells());
        table.row(row);
    }
    opts.emit("fig7", &table);
}
