//! Extension experiment: continuous monitoring vs periodic polling.
//!
//! A user who wants fresh matches for a standing range query can either
//! (a) re-issue the query every reporting interval, or (b) install a Pool
//! continuous monitor (§6 extension) and receive per-event notifications.
//! This experiment charges both strategies over the same insertion stream
//! and locates the crossover in match rate.
//!
//! Run: `cargo run -p pool-bench --bin monitor_cost --release`

use pool_bench::harness::print_header;
use pool_core::config::PoolConfig;
use pool_core::event::Event;
use pool_core::query::RangeQuery;
use pool_core::system::PoolSystem;
use pool_netsim::deployment::Deployment;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let nodes = 600usize;
    let mut seed = 808u64;
    let (topology, field) = loop {
        let dep = Deployment::paper_setting(nodes, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            break (topo, dep.field());
        }
        seed += 0x1000;
    };

    print_header(
        &format!("Continuous monitor vs polling ({nodes} nodes, 500 insertions, poll every 50)"),
        &["selectivity", "matches", "monitor_msgs", "polling_msgs", "poll/monitor"],
    );

    // Wider query ranges -> more matches -> more notifications.
    for width in [0.02f64, 0.05, 0.1, 0.2, 0.4] {
        let query =
            RangeQuery::from_bounds(vec![Some((0.5 - width / 2.0, 0.5 + width / 2.0)), None, None])
                .unwrap();
        let sink = NodeId(3);

        // Strategy A: continuous monitor.
        let mut monitored =
            PoolSystem::build(topology.clone(), field, PoolConfig::paper().with_seed(seed))
                .unwrap();
        let install = monitored.install_monitor(sink, query.clone()).unwrap();
        let mut monitor_msgs = install.cost.total();
        let mut matches = 0usize;
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..500 {
            let event = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
            let receipt = monitored.insert_from(NodeId((i % nodes) as u32), event).unwrap();
            matches += receipt.notifications.len();
            monitor_msgs += receipt.notifications.iter().map(|n| n.messages).sum::<u64>();
        }

        // Strategy B: poll every 50 insertions (10 polls).
        let mut polled =
            PoolSystem::build(topology.clone(), field, PoolConfig::paper().with_seed(seed))
                .unwrap();
        let mut polling_msgs = 0u64;
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..500 {
            let event = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
            polled.insert_from(NodeId((i % nodes) as u32), event).unwrap();
            if (i + 1) % 50 == 0 {
                polling_msgs += polled.query_from(sink, &query).unwrap().cost.total();
            }
        }

        println!(
            "{width:.2}\t{matches}\t{monitor_msgs}\t{polling_msgs}\t{:.2}",
            polling_msgs as f64 / monitor_msgs.max(1) as f64
        );
    }
}
