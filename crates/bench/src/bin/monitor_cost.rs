//! Extension experiment: continuous monitoring vs periodic polling.
//!
//! A user who wants fresh matches for a standing range query can either
//! (a) re-issue the query every reporting interval, or (b) install a Pool
//! continuous monitor (§6 extension) and receive per-event notifications.
//! This experiment charges both strategies over the same insertion stream
//! and locates the crossover in match rate. Each query width is an
//! independent trial (the serial seeds — topology 808, streams 9 — are
//! unchanged). Emits `BENCH_monitor.json`.
//!
//! Run: `cargo run -p pool-bench --bin monitor_cost --release
//!       [-- --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::run_trials;
use pool_core::config::PoolConfig;
use pool_core::event::Event;
use pool_core::query::RangeQuery;
use pool_core::system::PoolSystem;
use pool_netsim::deployment::Deployment;
use pool_netsim::node::NodeId;
use pool_netsim::stats::Summary;
use pool_netsim::topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let opts = BenchOpts::from_env();
    let nodes = arg_usize("--nodes", opts.nodes(600));
    let insertions = opts.scale(500, 100);
    let poll_every = opts.scale(50, 25);
    let widths: Vec<f64> =
        if opts.smoke { vec![0.05, 0.2] } else { vec![0.02, 0.05, 0.1, 0.2, 0.4] };

    let results = run_trials(opts.jobs, widths, |_, width| {
        let mut seed = 808u64;
        let (topology, field) = loop {
            let dep = Deployment::paper_setting(nodes, 40.0, 20.0, seed).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                break (topo, dep.field());
            }
            seed += 0x1000;
        };
        let query =
            RangeQuery::from_bounds(vec![Some((0.5 - width / 2.0, 0.5 + width / 2.0)), None, None])
                .unwrap();
        let sink = NodeId(3);

        // Strategy A: continuous monitor.
        let mut monitored =
            PoolSystem::build(topology.clone(), field, PoolConfig::paper().with_seed(seed))
                .unwrap();
        let install = monitored.install_monitor(sink, query.clone()).unwrap();
        let mut monitor_msgs = install.cost.total();
        let mut matches = 0usize;
        let mut insert_latencies = Vec::with_capacity(insertions);
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..insertions {
            let event = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
            let receipt = monitored.insert_from(NodeId((i % nodes) as u32), event).unwrap();
            matches += receipt.notifications.len();
            monitor_msgs += receipt.notifications.iter().map(|n| n.messages).sum::<u64>();
            insert_latencies.push(receipt.elapsed * 1e3);
        }

        // Strategy B: poll every `poll_every` insertions.
        let mut polled =
            PoolSystem::build(topology, field, PoolConfig::paper().with_seed(seed)).unwrap();
        let mut polling_msgs = 0u64;
        let mut poll_latencies = Vec::new();
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..insertions {
            let event = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
            polled.insert_from(NodeId((i % nodes) as u32), event).unwrap();
            if (i + 1) % poll_every == 0 {
                let result = polled.query_from(sink, &query).unwrap();
                polling_msgs += result.cost.total();
                poll_latencies.push(result.cost.elapsed * 1e3);
            }
        }
        (
            width,
            matches,
            monitor_msgs,
            polling_msgs,
            Summary::of(&insert_latencies),
            Summary::of(&poll_latencies),
        )
    });

    // Latency columns: per-insert (with notification fan-out) vs per-poll
    // query virtual time, in milliseconds.
    let mut table = pool_bench::Table::new(
        "Continuous monitor vs periodic polling",
        &[
            "selectivity",
            "matches",
            "monitor_msgs",
            "polling_msgs",
            "poll_over_monitor",
            "insert_p50_ms",
            "insert_p99_ms",
            "poll_p50_ms",
            "poll_p99_ms",
        ],
    );
    table.meta("nodes", nodes);
    table.meta("insertions", insertions);
    table.meta("poll_every", poll_every);
    for (width, matches, monitor_msgs, polling_msgs, insert_lat, poll_lat) in &results {
        table.row(vec![
            (*width).into(),
            (*matches).into(),
            (*monitor_msgs).into(),
            (*polling_msgs).into(),
            (*polling_msgs as f64 / (*monitor_msgs).max(1) as f64).into(),
            insert_lat.median.into(),
            insert_lat.p99.into(),
            poll_lat.median.into(),
            poll_lat.p99.into(),
        ]);
    }
    opts.emit("monitor", &table);
}
