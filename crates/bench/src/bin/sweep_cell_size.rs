//! Ablation: cell size α.
//!
//! α controls index-node granularity: smaller cells mean more index nodes
//! per pool (finer spatial resolution, more fan-out legs), larger cells
//! collapse several cells onto the same physical sensor (free intra-node
//! hops but coarser placement). The paper fixes α = 5 m. Each α is an
//! independent trial (serial seeds `11_000 + 10α` unchanged). Emits
//! `BENCH_cell_size.json`.
//!
//! Run: `cargo run -p pool-bench --bin sweep_cell_size --release
//!       [-- --queries N --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::run_trials;
use pool_bench::harness::{measure, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

fn main() {
    let opts = BenchOpts::from_env();
    let queries = arg_usize("--queries", opts.queries(50));
    let nodes = arg_usize("--nodes", opts.nodes(600));
    let alphas: Vec<f64> =
        if opts.smoke { vec![5.0, 10.0] } else { vec![2.5, 5.0, 7.5, 10.0, 15.0] };

    let results = run_trials(opts.jobs, alphas, |_, alpha| {
        let scenario = Scenario::paper(nodes, 11_000 + (alpha * 10.0) as u64);
        let config = PoolConfig::paper().with_alpha(alpha);
        let mut pair = SystemPair::build(&scenario, config, EventDistribution::Uniform);
        let exact = measure(
            &mut pair,
            QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 }),
            queries,
        );
        let partial = measure(&mut pair, QueryKind::MPartial(1), queries);
        (alpha, exact, partial)
    });

    // Latency columns report the exact-match workload's virtual time.
    let mut columns = vec!["alpha_m", "pool_msgs", "pool_cells", "pool_msgs_1partial"];
    columns.extend(pool_bench::LATENCY_COLUMNS);
    let mut table =
        pool_bench::Table::new("Cell size sweep (l = 10, exponential exact-match)", &columns);
    table.meta("nodes", nodes);
    table.meta("queries", queries);
    for (alpha, exact, partial) in &results {
        let mut row: Vec<pool_bench::Cell> = vec![
            (*alpha).into(),
            exact.pool.mean.into(),
            exact.pool_cells.into(),
            partial.pool.mean.into(),
        ];
        row.extend(exact.latency_cells());
        table.row(row);
    }
    opts.emit("cell_size", &table);
}
