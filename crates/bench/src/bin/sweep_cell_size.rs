//! Ablation: cell size α.
//!
//! α controls index-node granularity: smaller cells mean more index nodes
//! per pool (finer spatial resolution, more fan-out legs), larger cells
//! collapse several cells onto the same physical sensor (free intra-node
//! hops but coarser placement). The paper fixes α = 5 m.
//!
//! Run: `cargo run -p pool-bench --bin sweep_cell_size --release`

use pool_bench::cli::arg_usize;
use pool_bench::harness::{measure, print_header, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

fn main() {
    let queries = arg_usize("--queries", 50);
    let nodes = arg_usize("--nodes", 600);
    print_header(
        &format!("Cell size sweep ({nodes} nodes, l = 10, exponential exact-match)"),
        &["alpha_m", "pool_msgs", "pool_cells", "pool_msgs_1partial"],
    );
    for alpha in [2.5f64, 5.0, 7.5, 10.0, 15.0] {
        let scenario = Scenario::paper(nodes, 11_000 + (alpha * 10.0) as u64);
        let config = PoolConfig::paper().with_alpha(alpha);
        let mut pair = SystemPair::build(&scenario, config, EventDistribution::Uniform);
        let exact = measure(
            &mut pair,
            QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 }),
            queries,
        );
        let partial = measure(&mut pair, QueryKind::MPartial(1), queries);
        println!(
            "{alpha:.1}\t{:.1}\t{:.1}\t{:.1}",
            exact.pool.mean, exact.pool_cells, partial.pool.mean
        );
    }
}
