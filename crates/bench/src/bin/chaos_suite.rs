//! Chaos campaigns: structured fault injection with adaptive recovery,
//! executed end to end on Pool, DIM, and GHT.
//!
//! Four campaigns run the same insert + query workload per system:
//!
//! * **control** — an empty fault plan over a perfect link. Pinned: the
//!   fault decorator must charge byte-identically to the bare lossy
//!   substrate and answer every query completely.
//! * **kill mid-query** — nodes scouted from the interiors of live query
//!   routes crash partway through the query phase. Run twice: with detour
//!   rerouting (adaptive recovery + operation retry around the failed
//!   hop) and with the detour disabled (same-path retries only) — the
//!   ablation column shows how much completeness detouring buys back.
//! * **partition + heal** — links crossing a region boundary die for a
//!   window inside the query phase, then heal; queries issued after the
//!   heal must succeed again.
//! * **burst loss** — every link is overlaid with a Gilbert–Elliott burst
//!   channel for the rest of the run; hop-level ARQ plus backoff (priced
//!   on the virtual clock) and operation retries carry queries through.
//!
//! Every campaign is an independent trial (own deployment, RNG streams,
//! ledger), so the artifact is byte-identical for any `--jobs` count.
//!
//! Run: `cargo run -p pool-bench --bin chaos_suite --release
//!       [-- --queries N --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::run_trials;
use pool_bench::harness::{QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_core::query::RangeQuery;
use pool_core::system::QueryCost;
use pool_ght::GhtTable;
use pool_gpsr::Planarization;
use pool_netsim::deployment::Deployment;
use pool_netsim::geometry::{Point, Rect};
use pool_netsim::node::NodeId;
use pool_netsim::stats::Summary;
use pool_netsim::topology::Topology;
use pool_transport::{
    Fault, FaultPlan, FaultyTransport, GilbertElliott, LossyConfig, LossyTransport, OpRetryPolicy,
    RecoveryConfig, TrafficLayer, Transport, TransportKind,
};
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Campaign {
    Control,
    Kill,
    Partition,
    Burst,
}

impl Campaign {
    fn label(self) -> &'static str {
        match self {
            Campaign::Control => "control (no faults)",
            Campaign::Kill => "kill mid-query",
            Campaign::Partition => "partition + heal",
            Campaign::Burst => "burst loss",
        }
    }
}

/// One system's measurements under one retry arm.
struct ArmStats {
    completeness_sum: f64,
    ops_complete: usize,
    costs: Vec<QueryCost>,
    detour_routes: u64,
    rtx_messages: u64,
    total_messages: u64,
    latencies_ms: Vec<f64>,
}

/// One emitted row: a system under one campaign, detour arm vs ablation.
struct SystemRow {
    system: &'static str,
    completeness: f64,
    completeness_no_detour: f64,
    ops_complete: usize,
    detour_routes: u64,
    rtx_messages: u64,
    total_messages: u64,
    latency: Summary,
}

struct CampaignResult {
    label: &'static str,
    rows: Vec<SystemRow>,
}

/// The shared per-campaign workload: the same sinks and queries hit every
/// arm of every system, so arms differ only in the fault plan and policy.
fn workload(scenario: &Scenario, queries: usize) -> Vec<(NodeId, RangeQuery)> {
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0xC4A0_5EED);
    let kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.12 });
    (0..queries)
        .map(|_| {
            let sink = NodeId(rng.gen_range(0..scenario.nodes as u32));
            let query = kind.generate(&mut rng, scenario.dims);
            (sink, query)
        })
        .collect()
}

fn lossy_for(scenario: &Scenario) -> LossyConfig {
    // A perfect link: the only disturbances are the injected faults, so
    // every completeness loss is attributable to the campaign.
    LossyConfig::fixed(1.0, scenario.seed ^ 0xC405)
}

/// What the scout run learns from a fault-free replay of the workload:
/// the query phase's virtual-time window per system, the field bounds,
/// and crash victims drawn from the interiors of live query routes.
struct ScoutReport {
    window_lo: f64,
    window_hi: f64,
    field: Rect,
    victims: Vec<NodeId>,
}

fn scout(scenario: &Scenario, work: &[(NodeId, RangeQuery)], victims_wanted: usize) -> ScoutReport {
    let config = PoolConfig::paper().with_lossy(lossy_for(scenario));
    let mut pair = SystemPair::build(scenario, config, EventDistribution::Uniform);
    // The fault plan is shared by both systems but each runs its own
    // clock, and their insert phases cost different amounts of virtual
    // time. Seek both clocks to a common epoch before the query phase so
    // one scheduled window is live mid-query for both.
    let t_sync = sync_epoch(&mut pair);

    // Victims come from the middles of real sink → splitter routes, so a
    // crash is guaranteed to sit on paths the campaign actually uses.
    // Index nodes (which include every splitter) are exempt: a dead
    // destination cannot be detoured around, and the contrast under study
    // is route recovery, not data loss.
    let topology = pair.pool.topology().clone();
    let mut index_nodes: HashSet<NodeId> = HashSet::new();
    for dim in 0..scenario.dims {
        for cell in pair.pool.layout().pool(dim).cells() {
            if let Some(node) = pair.pool.index_node_of(cell) {
                index_nodes.insert(node);
            }
        }
    }
    let mut victims: Vec<NodeId> = Vec::new();
    // A query visits only the pools where it resolves relevant cells, so
    // victims come from the middles of the sink → splitter routes those
    // pools will actually walk — a crash there is guaranteed to sit on
    // paths the campaign uses.
    for (sink, query) in work {
        if victims.len() >= victims_wanted {
            break;
        }
        let relevant = pool_core::resolve::relevant_cells(pair.pool.layout(), query);
        for (dim, _) in pool_core::resolve::group_by_pool(&relevant) {
            if victims.len() >= victims_wanted {
                break;
            }
            let splitter = pair.pool.splitter_of(dim, *sink);
            let Ok(route) = pair.pool.transport_mut().route_to_node(&topology, *sink, splitter)
            else {
                continue;
            };
            if route.path.len() < 3 {
                continue;
            }
            let mid = route.path[route.path.len() / 2];
            if !index_nodes.contains(&mid) && !victims.contains(&mid) {
                victims.push(mid);
            }
        }
    }

    for (sink, query) in work {
        pair.pool.query_from(*sink, query).expect("scout pool query");
        pair.dim.query_from(*sink, query).expect("scout dim query");
    }
    let t1_pool = pair.pool.transport().clock().now();
    let t1_dim = pair.dim.transport().clock().now();

    let window_lo = t_sync;
    let window_hi = t1_pool.min(t1_dim).max(window_lo);
    if std::env::var_os("CHAOS_DEBUG").is_some() {
        eprintln!(
            "scout: victims={victims:?} window=[{window_lo:.4}, {window_hi:.4}] \
             t1_pool={t1_pool:.4} t1_dim={t1_dim:.4}"
        );
    }
    ScoutReport { window_lo, window_hi, field: topology.bounds(), victims }
}

/// Seeks both systems' clocks forward to the later of the two (the query
/// phase's common epoch) and returns it. Every campaign arm applies the
/// same sync, so scouted fault windows line up across systems and arms.
fn sync_epoch(pair: &mut SystemPair) -> f64 {
    let t_sync = pair.pool.transport().clock().now().max(pair.dim.transport().clock().now());
    pair.pool.transport_mut().clock_mut().seek(t_sync);
    pair.dim.transport_mut().clock_mut().seek(t_sync);
    t_sync
}

fn plan_for(campaign: Campaign, scout: &ScoutReport) -> FaultPlan {
    let span = scout.window_hi - scout.window_lo;
    match campaign {
        Campaign::Control => FaultPlan::new(),
        Campaign::Kill => {
            // Crash at the query phase's opening instant: every scouted
            // route is then guaranteed to meet its dead interior node.
            let at = scout.window_lo;
            scout
                .victims
                .iter()
                .fold(FaultPlan::new(), |plan, &node| plan.with(Fault::Crash { node, at }))
        }
        Campaign::Partition => {
            let f = scout.field;
            let region =
                Rect::new(f.min, Point::new(f.min.x + 0.35 * (f.max.x - f.min.x), f.max.y));
            FaultPlan::new().with(Fault::Partition {
                region,
                from: scout.window_lo + 0.10 * span,
                until: scout.window_lo + 0.55 * span,
            })
        }
        Campaign::Burst => FaultPlan::new().with(Fault::BurstLoss {
            channel: GilbertElliott { p_gb: 0.08, p_bg: 0.25, good_prr: 1.0, bad_prr: 0.15 },
            from: scout.window_lo,
            until: f64::INFINITY,
        }),
    }
}

/// Runs the workload on a fresh Pool + DIM pair under `config`, returning
/// one [`ArmStats`] per system.
fn run_pair_arm(
    scenario: &Scenario,
    config: PoolConfig,
    work: &[(NodeId, RangeQuery)],
    synced: bool,
) -> (ArmStats, ArmStats) {
    let mut pair = SystemPair::build(scenario, config, EventDistribution::Uniform);
    if synced {
        sync_epoch(&mut pair);
    }
    let queries = work.len() as f64;
    let mut pool = ArmStats {
        completeness_sum: 0.0,
        ops_complete: 0,
        costs: Vec::with_capacity(work.len()),
        detour_routes: 0,
        rtx_messages: 0,
        total_messages: 0,
        latencies_ms: Vec::with_capacity(work.len()),
    };
    let mut dim = ArmStats {
        completeness_sum: 0.0,
        ops_complete: 0,
        costs: Vec::with_capacity(work.len()),
        detour_routes: 0,
        rtx_messages: 0,
        total_messages: 0,
        latencies_ms: Vec::with_capacity(work.len()),
    };
    for (sink, query) in work {
        let p = pair.pool.query_from(*sink, query).expect("pool query");
        pool.completeness_sum += p.completeness.ratio();
        pool.ops_complete += usize::from(p.completeness.is_complete());
        pool.latencies_ms.push(p.cost.elapsed * 1e3);
        pool.costs.push(p.cost);
        let d = pair.dim.query_from(*sink, query).expect("dim query");
        let ratio = if d.zones_visited == 0 {
            1.0
        } else {
            d.zones_reached as f64 / d.zones_visited as f64
        };
        dim.completeness_sum += ratio;
        dim.ops_complete += usize::from(d.zones_reached == d.zones_visited);
        dim.latencies_ms.push(d.cost.elapsed * 1e3);
        dim.costs.push(d.cost);
    }
    pool.completeness_sum /= queries;
    dim.completeness_sum /= queries;
    pool.detour_routes = pair.pool.transport().delivery_stats().detour_routes;
    dim.detour_routes = pair.dim.transport().delivery_stats().detour_routes;
    pool.rtx_messages = pair.pool.ledger().layer_total(TrafficLayer::Retransmit);
    dim.rtx_messages = pair.dim.ledger().layer_total(TrafficLayer::Retransmit);
    pool.total_messages = pair.pool.ledger().total_messages();
    dim.total_messages = pair.dim.ledger().total_messages();
    (pool, dim)
}

fn row_from(system: &'static str, detour: ArmStats, ablation: &ArmStats) -> SystemRow {
    SystemRow {
        system,
        completeness: detour.completeness_sum,
        completeness_no_detour: ablation.completeness_sum,
        ops_complete: detour.ops_complete,
        detour_routes: detour.detour_routes,
        rtx_messages: detour.rtx_messages,
        total_messages: detour.total_messages,
        latency: Summary::of(&detour.latencies_ms),
    }
}

// ----- GHT campaign ------------------------------------------------------

/// The GHT leg of a campaign: the same topology discipline as the pair
/// (paper deployment, connectivity retries), `puts` keyed values, then the
/// query phase issues gets under the campaign's fault plan.
struct GhtWorkload {
    topology: Topology,
    puts: Vec<(NodeId, String)>,
    gets: Vec<(NodeId, String)>,
}

fn ght_workload(scenario: &Scenario, gets: usize) -> GhtWorkload {
    let mut seed = scenario.seed;
    let topology = loop {
        let dep = Deployment::paper_setting(
            scenario.nodes,
            scenario.radio_range,
            scenario.avg_neighbors,
            seed,
        )
        .expect("valid deployment parameters");
        let topo =
            Topology::build(dep.nodes(), scenario.radio_range).expect("valid topology parameters");
        if topo.is_connected() {
            break topo;
        }
        seed = seed.wrapping_add(0x1000);
    };
    let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0x6417_0000);
    let n = topology.len() as u32;
    let keys = (gets / 2).clamp(8, 64);
    let puts: Vec<(NodeId, String)> =
        (0..keys).map(|i| (NodeId(rng.gen_range(0..n)), format!("key-{i}"))).collect();
    let gets: Vec<(NodeId, String)> = (0..gets)
        .map(|_| {
            let key = rng.gen_range(0..keys);
            (NodeId(rng.gen_range(0..n)), format!("key-{key}"))
        })
        .collect();
    GhtWorkload { topology, puts, gets }
}

struct GhtScout {
    window_lo: f64,
    window_hi: f64,
    field: Rect,
    victims: Vec<NodeId>,
}

fn ght_scout(scenario: &Scenario, work: &GhtWorkload, victims_wanted: usize) -> GhtScout {
    let gpsr = TransportKind::Gpsr.build(&work.topology, Planarization::Gabriel);
    let mut transport = LossyTransport::wrap(gpsr, lossy_for(scenario));
    let mut ght: GhtTable<u64> = GhtTable::new(&work.topology);
    for (i, (source, key)) in work.puts.iter().enumerate() {
        ght.put(&work.topology, &mut transport, *source, key, i as u64).expect("scout ght put");
    }
    let window_lo = transport.clock().now();

    // Victims: interiors of real get routes, never a home node (a dead
    // home loses the data outright — no detour can recover that).
    let homes: HashSet<NodeId> = work
        .puts
        .iter()
        .map(|(_, key)| {
            let loc = ght.key_location(&work.topology, key);
            transport
                .route_to_location(&work.topology, NodeId(0), loc)
                .expect("home route")
                .delivered
        })
        .collect();
    let mut victims: Vec<NodeId> = Vec::new();
    for (sink, key) in &work.gets {
        if victims.len() >= victims_wanted {
            break;
        }
        let loc = ght.key_location(&work.topology, key);
        let Ok(route) = transport.route_to_location(&work.topology, *sink, loc) else {
            continue;
        };
        if route.path.len() < 3 {
            continue;
        }
        let mid = route.path[route.path.len() / 2];
        if !homes.contains(&mid) && !victims.contains(&mid) {
            victims.push(mid);
        }
    }

    for (sink, key) in &work.gets {
        ght.get(&work.topology, &mut transport, *sink, key).expect("scout ght get");
    }
    let window_hi = transport.clock().now().max(window_lo);
    GhtScout { window_lo, window_hi, field: work.topology.bounds(), victims }
}

struct GhtArm {
    completeness: f64,
    detour_routes: u64,
    rtx_messages: u64,
    total_messages: u64,
    latencies_ms: Vec<f64>,
}

fn run_ght_arm(
    scenario: &Scenario,
    work: &GhtWorkload,
    plan: FaultPlan,
    recovery: Option<RecoveryConfig>,
    retry: Option<OpRetryPolicy>,
) -> GhtArm {
    let gpsr = TransportKind::Gpsr.build(&work.topology, Planarization::Gabriel);
    let mut transport: Box<dyn Transport> = match recovery {
        Some(recovery) => {
            Box::new(FaultyTransport::wrap_adaptive(gpsr, lossy_for(scenario), plan, recovery))
        }
        None => Box::new(FaultyTransport::wrap(gpsr, lossy_for(scenario), plan)),
    };
    let mut ght: GhtTable<u64> = GhtTable::new(&work.topology);
    for (i, (source, key)) in work.puts.iter().enumerate() {
        // Puts precede every fault window, so the stored state matches the
        // scout run exactly; the campaign stresses reads.
        ght.put(&work.topology, transport.as_mut(), *source, key, i as u64).expect("ght put");
    }
    let mut delivered = 0usize;
    let mut latencies_ms = Vec::with_capacity(work.gets.len());
    for (sink, key) in &work.gets {
        let (values, receipt) = match retry {
            Some(policy) => ght
                .get_with_retry(&work.topology, transport.as_mut(), *sink, key, policy)
                .expect("ght get"),
            None => ght.get(&work.topology, transport.as_mut(), *sink, key).expect("ght get"),
        };
        // Every key was stored (puts precede the faults), so an empty
        // answer always means a lost leg, not a missing key.
        delivered += usize::from(receipt.delivered && !values.is_empty());
        latencies_ms.push(receipt.elapsed * 1e3);
    }
    GhtArm {
        completeness: delivered as f64 / work.gets.len() as f64,
        detour_routes: transport.delivery_stats().detour_routes,
        rtx_messages: transport.ledger().layer_total(TrafficLayer::Retransmit),
        total_messages: transport.ledger().total_messages(),
        latencies_ms,
    }
}

fn run_ght_campaign(scenario: &Scenario, campaign: Campaign, gets: usize) -> SystemRow {
    let work = ght_workload(scenario, gets);
    if campaign == Campaign::Control {
        // Pinned: the fault decorator with an empty plan must be
        // byte-identical to the bare lossy substrate, and every get must
        // come back complete.
        let gpsr = TransportKind::Gpsr.build(&work.topology, Planarization::Gabriel);
        let mut bare = LossyTransport::wrap(gpsr, lossy_for(scenario));
        let mut ght: GhtTable<u64> = GhtTable::new(&work.topology);
        for (i, (source, key)) in work.puts.iter().enumerate() {
            ght.put(&work.topology, &mut bare, *source, key, i as u64).expect("ght put");
        }
        for (sink, key) in &work.gets {
            ght.get(&work.topology, &mut bare, *sink, key).expect("ght get");
        }
        let arm = run_ght_arm(scenario, &work, FaultPlan::new(), None, None);
        let wrapped = run_ght_control_ledger(scenario, &work);
        assert_eq!(
            bare.ledger(),
            wrapped.ledger(),
            "ght control: empty fault plan diverged from the bare lossy substrate"
        );
        assert!(
            (arm.completeness - 1.0).abs() < 1e-12,
            "ght control incomplete: {}",
            arm.completeness
        );
        let latency = Summary::of(&arm.latencies_ms);
        return SystemRow {
            system: "ght",
            completeness: arm.completeness,
            completeness_no_detour: arm.completeness,
            ops_complete: work.gets.len(),
            detour_routes: arm.detour_routes,
            rtx_messages: arm.rtx_messages,
            total_messages: arm.total_messages,
            latency,
        };
    }
    let scout = ght_scout(scenario, &work, 6);
    let span = scout.window_hi - scout.window_lo;
    let plan = match campaign {
        Campaign::Control => unreachable!("handled above"),
        Campaign::Kill => {
            let at = scout.window_lo + 0.10 * span;
            scout
                .victims
                .iter()
                .fold(FaultPlan::new(), |plan, &node| plan.with(Fault::Crash { node, at }))
        }
        Campaign::Partition => {
            let f = scout.field;
            let region =
                Rect::new(f.min, Point::new(f.min.x + 0.35 * (f.max.x - f.min.x), f.max.y));
            FaultPlan::new().with(Fault::Partition {
                region,
                from: scout.window_lo + 0.10 * span,
                until: scout.window_lo + 0.55 * span,
            })
        }
        Campaign::Burst => FaultPlan::new().with(Fault::BurstLoss {
            channel: GilbertElliott { p_gb: 0.08, p_bg: 0.25, good_prr: 1.0, bad_prr: 0.15 },
            from: scout.window_lo,
            until: f64::INFINITY,
        }),
    };
    let recovery = RecoveryConfig::default();
    let detour = run_ght_arm(
        scenario,
        &work,
        plan.clone(),
        Some(recovery),
        Some(OpRetryPolicy::detouring(2)),
    );
    let ablation =
        run_ght_arm(scenario, &work, plan, Some(recovery), Some(OpRetryPolicy::same_path(2)));
    let latency = Summary::of(&detour.latencies_ms);
    SystemRow {
        system: "ght",
        completeness: detour.completeness,
        completeness_no_detour: ablation.completeness,
        ops_complete: (detour.completeness * work.gets.len() as f64).round() as usize,
        detour_routes: detour.detour_routes,
        rtx_messages: detour.rtx_messages,
        total_messages: detour.total_messages,
        latency,
    }
}

/// Replays the control workload over the wrapped-but-empty fault transport
/// so its ledger can be compared against the bare substrate's.
fn run_ght_control_ledger(scenario: &Scenario, work: &GhtWorkload) -> Box<dyn Transport> {
    let gpsr = TransportKind::Gpsr.build(&work.topology, Planarization::Gabriel);
    let mut transport: Box<dyn Transport> =
        Box::new(FaultyTransport::wrap(gpsr, lossy_for(scenario), FaultPlan::new()));
    let mut ght: GhtTable<u64> = GhtTable::new(&work.topology);
    for (i, (source, key)) in work.puts.iter().enumerate() {
        ght.put(&work.topology, transport.as_mut(), *source, key, i as u64).expect("ght put");
    }
    for (sink, key) in &work.gets {
        ght.get(&work.topology, transport.as_mut(), *sink, key).expect("ght get");
    }
    transport
}

// ----- campaign driver ---------------------------------------------------

fn run_campaign(scenario: &Scenario, campaign: Campaign, queries: usize) -> CampaignResult {
    let work = workload(scenario, queries);
    let lossy = lossy_for(scenario);
    let mut rows = Vec::with_capacity(3);
    if campaign == Campaign::Control {
        // Pinned byte-identity: an empty fault plan (no recovery, no op
        // retry) must charge exactly like the bare lossy substrate, query
        // by query, and answer everything.
        let bare = PoolConfig::paper().with_lossy(lossy);
        let wrapped = PoolConfig::paper().with_lossy(lossy).with_faults(FaultPlan::new());
        let (bare_pool, bare_dim) = run_pair_arm(scenario, bare, &work, false);
        let (pool, dim) = run_pair_arm(scenario, wrapped, &work, false);
        assert_eq!(pool.costs, bare_pool.costs, "control pool costs diverged from bare lossy");
        assert_eq!(dim.costs, bare_dim.costs, "control dim costs diverged from bare lossy");
        assert_eq!(pool.total_messages, bare_pool.total_messages);
        assert_eq!(dim.total_messages, bare_dim.total_messages);
        assert!((pool.completeness_sum - 1.0).abs() < 1e-12, "control pool incomplete");
        assert!((dim.completeness_sum - 1.0).abs() < 1e-12, "control dim incomplete");
        let pool_row = row_from("pool", pool, &bare_pool);
        let dim_row = row_from("dim", dim, &bare_dim);
        rows.push(SystemRow { completeness_no_detour: pool_row.completeness, ..pool_row });
        rows.push(SystemRow { completeness_no_detour: dim_row.completeness, ..dim_row });
        rows.push(run_ght_campaign(scenario, campaign, queries.max(8)));
        return CampaignResult { label: campaign.label(), rows };
    }

    let report = scout(scenario, &work, 8);
    let plan = plan_for(campaign, &report);
    if std::env::var_os("CHAOS_DEBUG").is_some() {
        eprintln!("campaign {}: plan={:?}", campaign.label(), plan);
    }
    let recovery = RecoveryConfig::default();
    let base = PoolConfig::paper().with_lossy(lossy).with_faults(plan).with_recovery(recovery);
    let detour_config = base.clone().with_op_retry(OpRetryPolicy::detouring(2));
    let ablation_config = base.with_op_retry(OpRetryPolicy::same_path(2));
    let (pool_detour, dim_detour) = run_pair_arm(scenario, detour_config, &work, true);
    let (pool_ablation, dim_ablation) = run_pair_arm(scenario, ablation_config, &work, true);
    rows.push(row_from("pool", pool_detour, &pool_ablation));
    rows.push(row_from("dim", dim_detour, &dim_ablation));
    rows.push(run_ght_campaign(scenario, campaign, queries.max(8)));
    CampaignResult { label: campaign.label(), rows }
}

fn main() {
    let opts = BenchOpts::from_env();
    let queries = arg_usize("--queries", opts.queries(40)).max(1);
    let nodes = arg_usize("--nodes", opts.nodes(400));
    let scenario = Scenario::paper(nodes, 90_000);

    let campaigns = vec![Campaign::Control, Campaign::Kill, Campaign::Partition, Campaign::Burst];
    let results =
        run_trials(opts.jobs, campaigns, |_, campaign| run_campaign(&scenario, campaign, queries));

    let mut table = pool_bench::Table::new(
        "Chaos suite: fault injection, adaptive recovery, detour ablation",
        &[
            "campaign",
            "system",
            "completeness",
            "completeness_no_detour",
            "ops_complete",
            "detour_routes",
            "rtx_messages",
            "total_messages",
            "query_p50_ms",
            "query_p99_ms",
        ],
    );
    table.meta("nodes", nodes);
    table.meta("queries", queries);
    for result in &results {
        for row in &result.rows {
            table.row(vec![
                result.label.into(),
                row.system.into(),
                row.completeness.into(),
                row.completeness_no_detour.into(),
                row.ops_complete.into(),
                row.detour_routes.into(),
                row.rtx_messages.into(),
                row.total_messages.into(),
                row.latency.median.into(),
                row.latency.p99.into(),
            ]);
        }
    }
    opts.emit("chaos", &table);

    // The kill campaign is the tentpole claim: detour rerouting must never
    // hurt, and at full scale it must demonstrably buy completeness back
    // versus the same-path ablation.
    let kill = &results[1];
    for row in &kill.rows {
        assert!(
            row.completeness >= row.completeness_no_detour - 1e-12,
            "{}: detouring reduced completeness ({} < {})",
            row.system,
            row.completeness,
            row.completeness_no_detour
        );
    }
    if !opts.smoke {
        assert!(
            kill.rows.iter().any(|r| r.completeness > r.completeness_no_detour + 1e-12),
            "kill campaign: detour routing recovered nothing over the ablation"
        );
    }
}
