//! Ablation: the paper's results under a realistic lossy radio — executed,
//! not re-priced.
//!
//! Both systems are built over a [`pool_transport::LossyTransport`] and
//! actually run their insert and query workloads through per-hop loss with
//! bounded hop-by-hop ARQ. Three link regimes are compared:
//!
//! * **ideal** — every hop succeeds (`prr = 1`); must reproduce the
//!   loss-free numbers exactly.
//! * **mild** — logistic PRR, perfect inside 30 m, dead past 45 m.
//! * **harsh** — perfect inside 15 m, dead past 42 m; many links sit deep
//!   in the transitional region and deliveries start failing outright.
//!
//! For each regime and system the run records how much of the workload
//! survived (insert delivery, end-to-end packet delivery, mean query
//! completeness) and what the ARQ paid for it (retransmission overhead),
//! then writes the table to `BENCH_lossy.json`.
//!
//! Run: `cargo run -p pool-bench --bin lossy_radio --release
//!       [-- --queries N --nodes N]`

use pool_bench::cli::arg_usize;
use pool_bench::harness::{print_header, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_netsim::radio::PrrModel;
use pool_transport::{LinkQuality, LossyConfig, TrafficLayer};
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

/// What one system delivered (and spent) under one link regime.
struct SystemStats {
    insert_delivery: f64,
    packet_delivery: f64,
    retransmission_overhead: f64,
    mean_completeness: f64,
    complete_queries: usize,
    mean_query_messages: f64,
    retransmit_messages: u64,
}

impl SystemStats {
    fn json(&self, queries: usize) -> String {
        format!(
            "{{\"insert_delivery\": {:.4}, \"packet_delivery\": {:.4}, \
             \"retransmission_overhead\": {:.4}, \"mean_completeness\": {:.4}, \
             \"complete_queries\": \"{}/{}\", \"mean_query_messages\": {:.1}, \
             \"retransmit_messages\": {}}}",
            self.insert_delivery,
            self.packet_delivery,
            self.retransmission_overhead,
            self.mean_completeness,
            self.complete_queries,
            queries,
            self.mean_query_messages,
            self.retransmit_messages,
        )
    }
}

struct LevelResult {
    label: &'static str,
    pool: SystemStats,
    dim: SystemStats,
}

fn run_level(
    scenario: &Scenario,
    quality: LinkQuality,
    queries: usize,
    label: &'static str,
) -> LevelResult {
    let lossy = LossyConfig { quality, ..LossyConfig::fixed(1.0, scenario.seed ^ 0x10557) };
    let config = PoolConfig::paper().with_lossy(lossy);
    let mut pair = SystemPair::build(scenario, config, EventDistribution::Uniform);

    let attempted = pair.inserts_attempted as f64;
    let pool_insert = (pair.inserts_attempted - pair.pool_insert_drops) as f64 / attempted;
    let dim_insert = (pair.inserts_attempted - pair.dim_insert_drops) as f64 / attempted;

    // Query phase. The same sinks and queries hit both systems; under loss
    // the result sets may legitimately diverge, so instead of asserting
    // equality (as `measure` does) we record each system's self-reported
    // completeness.
    let dims = pair.pool.config().dims;
    let kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 });
    let mut pool_ratio = 0.0;
    let mut dim_ratio = 0.0;
    let mut pool_complete = 0usize;
    let mut dim_complete = 0usize;
    let mut pool_msgs = 0u64;
    let mut dim_msgs = 0u64;
    for _ in 0..queries {
        let sink = pair.random_node();
        let query = kind.generate(pair.rng(), dims);
        let p = pair.pool.query_from(sink, &query).expect("pool query");
        pool_ratio += p.completeness.ratio();
        pool_complete += usize::from(p.completeness.is_complete());
        pool_msgs += p.cost.total();
        let d = pair.dim.query_from(sink, &query).expect("dim query");
        let ratio = if d.zones_visited == 0 {
            1.0
        } else {
            d.zones_reached as f64 / d.zones_visited as f64
        };
        dim_ratio += ratio;
        dim_complete += usize::from(d.zones_reached == d.zones_visited);
        dim_msgs += d.cost.total();
    }

    let ps = pair.pool.transport().delivery_stats();
    let ds = pair.dim.transport().delivery_stats();
    LevelResult {
        label,
        pool: SystemStats {
            insert_delivery: pool_insert,
            packet_delivery: ps.delivery_rate(),
            retransmission_overhead: ps.retransmission_overhead(),
            mean_completeness: pool_ratio / queries as f64,
            complete_queries: pool_complete,
            mean_query_messages: pool_msgs as f64 / queries as f64,
            retransmit_messages: pair.pool.ledger().layer_total(TrafficLayer::Retransmit),
        },
        dim: SystemStats {
            insert_delivery: dim_insert,
            packet_delivery: ds.delivery_rate(),
            retransmission_overhead: ds.retransmission_overhead(),
            mean_completeness: dim_ratio / queries as f64,
            complete_queries: dim_complete,
            mean_query_messages: dim_msgs as f64 / queries as f64,
            retransmit_messages: pair.dim.ledger().layer_total(TrafficLayer::Retransmit),
        },
    }
}

fn write_snapshot(nodes: usize, queries: usize, levels: &[LevelResult]) {
    let per_level: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    \"{}\": {{\n      \"pool\": {},\n      \"dim\": {}\n    }}",
                l.label,
                l.pool.json(queries),
                l.dim.json(queries)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"figure\": \"lossy radio: hop-by-hop ARQ, delivery and completeness\",\n  \"nodes\": {nodes},\n  \"queries\": {queries},\n  \"levels\": {{\n{}\n  }}\n}}\n",
        per_level.join(",\n")
    );
    std::fs::write("BENCH_lossy.json", &json).expect("write BENCH_lossy.json");
    print!("\n{json}");
}

fn main() {
    // At least one query: the completeness means below divide by the count.
    let queries = arg_usize("--queries", 60).max(1);
    let nodes = arg_usize("--nodes", 600);
    let scenario = Scenario::paper(nodes, 90_000);

    print_header(
        &format!("Lossy-radio execution ({nodes} nodes, exponential exact-match)"),
        &[
            "radio",
            "system",
            "insert_ok",
            "pkt_ok",
            "rtx_overhead",
            "completeness",
            "complete",
            "query_msgs",
        ],
    );
    let levels = [
        ("ideal (prr = 1)", LinkQuality::Fixed(1.0)),
        ("mild loss (30/45 m)", LinkQuality::Model(PrrModel::new(30.0, 45.0))),
        ("harsh loss (15/42 m)", LinkQuality::Model(PrrModel::new(15.0, 42.0))),
    ];
    let mut results = Vec::new();
    for (label, quality) in levels {
        let r = run_level(&scenario, quality, queries, label);
        for (system, s) in [("pool", &r.pool), ("dim", &r.dim)] {
            println!(
                "{label}\t{system}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{}/{queries}\t{:.1}",
                s.insert_delivery,
                s.packet_delivery,
                s.retransmission_overhead,
                s.mean_completeness,
                s.complete_queries,
                s.mean_query_messages,
            );
        }
        results.push(r);
    }
    write_snapshot(nodes, queries, &results);

    // The ideal regime is the regression guard: a perfect link must be
    // indistinguishable from the loss-free seed.
    let ideal = &results[0];
    assert_eq!(ideal.pool.retransmit_messages, 0, "ideal radio retransmitted (pool)");
    assert_eq!(ideal.dim.retransmit_messages, 0, "ideal radio retransmitted (dim)");
    assert!((ideal.pool.mean_completeness - 1.0).abs() < 1e-12, "ideal pool incomplete");
    assert!((ideal.dim.mean_completeness - 1.0).abs() < 1e-12, "ideal dim incomplete");
}
