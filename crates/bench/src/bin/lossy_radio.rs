//! Ablation: the paper's results under a realistic lossy radio.
//!
//! Ideal unit-disk message counts are re-priced as expected transmissions
//! under a logistic packet-reception-ratio model with link-layer
//! retransmission (see `pool_netsim::radio`). Both systems inflate by the
//! same mean-ETX factor if their hop-length distributions match; a
//! divergence here would indicate one system leans on longer (weaker)
//! links.
//!
//! Run: `cargo run -p pool-bench --bin lossy_radio --release`

use pool_bench::cli::arg_usize;
use pool_bench::harness::{measure, print_header, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_netsim::radio::{mean_link_etx, PrrModel};
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

fn main() {
    let queries = arg_usize("--queries", 60);
    let nodes = arg_usize("--nodes", 900);
    let scenario = Scenario::paper(nodes, 90_000);
    let mut pair = SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
    let m = measure(
        &mut pair,
        QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 }),
        queries,
    );
    print_header(
        &format!("Lossy-radio re-pricing ({nodes} nodes, exponential exact-match)"),
        &["radio", "mean_link_etx", "pool_msgs", "dim_msgs"],
    );
    for (label, model) in [
        ("ideal unit disk", PrrModel::ideal(40.0)),
        ("mild loss (30/45 m)", PrrModel::new(30.0, 45.0)),
        ("harsh loss (15/42 m)", PrrModel::new(15.0, 42.0)),
    ] {
        let etx = mean_link_etx(pair.pool.topology(), model);
        println!("{label}\t{etx:.2}\t{:.1}\t{:.1}", m.pool.mean * etx, m.dim.mean * etx);
    }
}
