//! Ablation: the paper's results under a realistic lossy radio — executed,
//! not re-priced.
//!
//! Both systems are built over a [`pool_transport::LossyTransport`] and
//! actually run their insert and query workloads through per-hop loss with
//! bounded hop-by-hop ARQ. Three link regimes are compared:
//!
//! * **ideal** — every hop succeeds (`prr = 1`); must reproduce the
//!   loss-free numbers exactly.
//! * **mild** — logistic PRR, perfect inside 30 m, dead past 45 m.
//! * **harsh** — perfect inside 15 m, dead past 42 m; many links sit deep
//!   in the transitional region and deliveries start failing outright.
//!
//! Each regime is an independent trial on the execution engine (it owns
//! its deployment, link RNG, ledger, and tracer), so the three levels run
//! concurrently under `--jobs` and `BENCH_lossy.json` is byte-identical
//! for any worker count.
//!
//! Run: `cargo run -p pool-bench --bin lossy_radio --release
//!       [-- --queries N --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::run_trials;
use pool_bench::harness::{QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_netsim::radio::PrrModel;
use pool_netsim::stats::Summary;
use pool_transport::{LinkQuality, LossyConfig, TrafficLayer};
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

/// What one system delivered (and spent) under one link regime.
struct SystemStats {
    insert_delivery: f64,
    packet_delivery: f64,
    retransmission_overhead: f64,
    mean_completeness: f64,
    complete_queries: usize,
    mean_query_messages: f64,
    retransmit_messages: u64,
    latency: Summary,
}

struct LevelResult {
    label: &'static str,
    pool: SystemStats,
    dim: SystemStats,
}

fn run_level(
    scenario: &Scenario,
    quality: LinkQuality,
    queries: usize,
    label: &'static str,
) -> LevelResult {
    let lossy = LossyConfig { quality, ..LossyConfig::fixed(1.0, scenario.seed ^ 0x10557) };
    let config = PoolConfig::paper().with_lossy(lossy);
    let mut pair = SystemPair::build(scenario, config, EventDistribution::Uniform);

    let attempted = pair.inserts_attempted as f64;
    let pool_insert = (pair.inserts_attempted - pair.pool_insert_drops) as f64 / attempted;
    let dim_insert = (pair.inserts_attempted - pair.dim_insert_drops) as f64 / attempted;

    // Query phase. The same sinks and queries hit both systems; under loss
    // the result sets may legitimately diverge, so instead of asserting
    // equality (as `measure` does) we record each system's self-reported
    // completeness.
    let dims = pair.pool.config().dims;
    let kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 });
    let mut pool_ratio = 0.0;
    let mut dim_ratio = 0.0;
    let mut pool_complete = 0usize;
    let mut dim_complete = 0usize;
    let mut pool_msgs = 0u64;
    let mut dim_msgs = 0u64;
    let mut pool_latencies = Vec::with_capacity(queries);
    let mut dim_latencies = Vec::with_capacity(queries);
    for _ in 0..queries {
        let sink = pair.random_node();
        let query = kind.generate(pair.rng(), dims);
        let p = pair.pool.query_from(sink, &query).expect("pool query");
        pool_ratio += p.completeness.ratio();
        pool_complete += usize::from(p.completeness.is_complete());
        pool_msgs += p.cost.total();
        pool_latencies.push(p.cost.elapsed * 1e3);
        let d = pair.dim.query_from(sink, &query).expect("dim query");
        let ratio = if d.zones_visited == 0 {
            1.0
        } else {
            d.zones_reached as f64 / d.zones_visited as f64
        };
        dim_ratio += ratio;
        dim_complete += usize::from(d.zones_reached == d.zones_visited);
        dim_msgs += d.cost.total();
        dim_latencies.push(d.cost.elapsed * 1e3);
    }

    let ps = pair.pool.transport().delivery_stats();
    let ds = pair.dim.transport().delivery_stats();
    LevelResult {
        label,
        pool: SystemStats {
            insert_delivery: pool_insert,
            packet_delivery: ps.delivery_rate(),
            retransmission_overhead: ps.retransmission_overhead(),
            mean_completeness: pool_ratio / queries as f64,
            complete_queries: pool_complete,
            mean_query_messages: pool_msgs as f64 / queries as f64,
            retransmit_messages: pair.pool.ledger().layer_total(TrafficLayer::Retransmit),
            latency: Summary::of(&pool_latencies),
        },
        dim: SystemStats {
            insert_delivery: dim_insert,
            packet_delivery: ds.delivery_rate(),
            retransmission_overhead: ds.retransmission_overhead(),
            mean_completeness: dim_ratio / queries as f64,
            complete_queries: dim_complete,
            mean_query_messages: dim_msgs as f64 / queries as f64,
            retransmit_messages: pair.dim.ledger().layer_total(TrafficLayer::Retransmit),
            latency: Summary::of(&dim_latencies),
        },
    }
}

fn main() {
    // At least one query: the completeness means divide by the count.
    let opts = BenchOpts::from_env();
    let queries = arg_usize("--queries", opts.queries(60)).max(1);
    let nodes = arg_usize("--nodes", opts.nodes(600));
    let scenario = Scenario::paper(nodes, 90_000);

    let levels: Vec<(&'static str, LinkQuality)> = vec![
        ("ideal (prr = 1)", LinkQuality::Fixed(1.0)),
        ("mild loss (30/45 m)", LinkQuality::Model(PrrModel::new(30.0, 45.0))),
        ("harsh loss (15/42 m)", LinkQuality::Model(PrrModel::new(15.0, 42.0))),
    ];
    let results = run_trials(opts.jobs, levels, |_, (label, quality)| {
        run_level(&scenario, quality, queries, label)
    });

    let mut table = pool_bench::Table::new(
        "Lossy radio: hop-by-hop ARQ, delivery and completeness",
        &[
            "radio",
            "system",
            "insert_delivery",
            "packet_delivery",
            "rtx_overhead",
            "mean_completeness",
            "complete_queries",
            "mean_query_msgs",
            "rtx_messages",
            "query_p50_ms",
            "query_p99_ms",
        ],
    );
    table.meta("nodes", nodes);
    table.meta("queries", queries);
    for level in &results {
        for (system, s) in [("pool", &level.pool), ("dim", &level.dim)] {
            table.row(vec![
                level.label.into(),
                system.into(),
                s.insert_delivery.into(),
                s.packet_delivery.into(),
                s.retransmission_overhead.into(),
                s.mean_completeness.into(),
                s.complete_queries.into(),
                s.mean_query_messages.into(),
                s.retransmit_messages.into(),
                s.latency.median.into(),
                s.latency.p99.into(),
            ]);
        }
    }
    opts.emit("lossy", &table);

    // The ideal regime is the regression guard: a perfect link must be
    // indistinguishable from the loss-free seed.
    let ideal = &results[0];
    assert_eq!(ideal.pool.retransmit_messages, 0, "ideal radio retransmitted (pool)");
    assert_eq!(ideal.dim.retransmit_messages, 0, "ideal radio retransmitted (dim)");
    assert!((ideal.pool.mean_completeness - 1.0).abs() < 1e-12, "ideal pool incomplete");
    assert!((ideal.dim.mean_completeness - 1.0).abs() < 1e-12, "ideal dim incomplete");
}
