//! Observability experiment: per-node load balance under a skewed workload.
//!
//! The paper argues (§5) that Pool spreads both storage and traffic more
//! evenly than DIM once the event distribution is skewed: hot cells hand
//! overflow to delegation chains (§4.2) instead of piling everything on one
//! zone owner. This experiment runs both systems over the *same* hotspot
//! workload and reads each system's [`pool_transport::LoadReport`]:
//!
//! * max / mean / Gini over per-node **message** load (all layers),
//! * max / mean / Gini over per-node **storage** load (events held),
//! * Reply-layer traffic relayed by Pool **delegation-chain members** —
//!   nonzero only because chain replies are actually routed hop-by-hop and
//!   ledgered on the relaying delegates (not priced as a phantom constant).
//!
//! Two link regimes (ideal and harsh) show that the picture survives a
//! lossy radio. The table is written to `BENCH_load.json`.
//!
//! Run: `cargo run -p pool-bench --bin load_balance --release
//!       [-- --queries N --nodes N]`

use pool_bench::cli::arg_usize;
use pool_bench::harness::{print_header, QueryKind, Scenario, SystemPair};
use pool_core::config::{PoolConfig, SharingPolicy};
use pool_core::query::RangeQuery;
use pool_netsim::radio::PrrModel;
use pool_transport::{LinkQuality, LoadDistribution, LossyConfig, NodeRole, TrafficLayer};
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

/// The hotspot: most readings cluster here, so one α-cell's index node
/// overflows its sharing capacity and grows a delegation chain.
const HOTSPOT: [f64; 3] = [0.85, 0.15, 0.5];

/// How one system's load spread out under one link regime.
struct SystemStats {
    messages: LoadDistribution,
    storage: LoadDistribution,
    reply: LoadDistribution,
    delegate_reply_messages: u64,
    hottest_node: u32,
    hottest_messages: u64,
    retransmit_messages: u64,
}

impl SystemStats {
    fn json(&self) -> String {
        format!(
            "{{\"messages\": {}, \"storage\": {}, \"reply\": {}, \
             \"delegate_reply_messages\": {}, \
             \"hottest_node\": {{\"id\": {}, \"messages\": {}}}, \
             \"retransmit_messages\": {}}}",
            self.messages.json(),
            self.storage.json(),
            self.reply.json(),
            self.delegate_reply_messages,
            self.hottest_node,
            self.hottest_messages,
            self.retransmit_messages,
        )
    }
}

struct LevelResult {
    label: &'static str,
    pool: SystemStats,
    dim: SystemStats,
}

fn run_level(
    scenario: &Scenario,
    quality: LinkQuality,
    queries: usize,
    label: &'static str,
) -> LevelResult {
    let lossy = LossyConfig { quality, ..LossyConfig::fixed(1.0, scenario.seed ^ 0x70AD) };
    let config = PoolConfig::paper().with_sharing(SharingPolicy::new(25)).with_lossy(lossy);
    let events = EventDistribution::Hotspot { center: HOTSPOT.to_vec(), std_dev: 0.04 };
    let mut pair = SystemPair::build(scenario, config, events);

    // Query phase: a mix of random exact-match ranges (the §5 workload) and
    // queries aimed at the hotspot itself — the latter are what walk the
    // delegation chains and generate Delegate-relayed Reply traffic.
    let dims = pair.pool.config().dims;
    let kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 });
    let hot_query =
        RangeQuery::exact(HOTSPOT.iter().map(|&c| (c - 0.06, c + 0.06)).collect::<Vec<_>>())
            .expect("hotspot query");
    for i in 0..queries {
        let sink = pair.random_node();
        let query = if i % 3 == 0 { hot_query.clone() } else { kind.generate(pair.rng(), dims) };
        pair.pool.query_from(sink, &query).expect("pool query");
        pair.dim.query_from(sink, &query).expect("dim query");
    }

    let stats = |report: &pool_transport::LoadReport, retransmit: u64| {
        let hottest = report.hottest(1);
        let (hottest_node, hottest_messages) =
            hottest.first().map(|n| (n.node.0, n.messages)).unwrap_or((0, 0));
        SystemStats {
            messages: report.message_distribution(),
            storage: report.storage_distribution(),
            reply: report.layer_distribution(TrafficLayer::Reply),
            delegate_reply_messages: report
                .role_layer_total(NodeRole::Delegate, TrafficLayer::Reply),
            hottest_node,
            hottest_messages,
            retransmit_messages: retransmit,
        }
    };
    let pool =
        stats(&pair.pool.load_report(), pair.pool.ledger().layer_total(TrafficLayer::Retransmit));
    let dim =
        stats(&pair.dim.load_report(), pair.dim.ledger().layer_total(TrafficLayer::Retransmit));
    LevelResult { label, pool, dim }
}

fn write_snapshot(nodes: usize, queries: usize, levels: &[LevelResult]) {
    let per_level: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    \"{}\": {{\n      \"pool\": {},\n      \"dim\": {}\n    }}",
                l.label,
                l.pool.json(),
                l.dim.json()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"figure\": \"per-node load balance under a hotspot workload\",\n  \"nodes\": {nodes},\n  \"queries\": {queries},\n  \"levels\": {{\n{}\n  }}\n}}\n",
        per_level.join(",\n")
    );
    std::fs::write("BENCH_load.json", &json).expect("write BENCH_load.json");
    print!("\n{json}");
}

fn main() {
    let queries = arg_usize("--queries", 45).max(1);
    let nodes = arg_usize("--nodes", 600);
    let scenario = Scenario::paper(nodes, 91_000);

    print_header(
        &format!("Per-node load balance ({nodes} nodes, hotspot events, sharing capacity 25)"),
        &[
            "radio",
            "system",
            "msg_max",
            "msg_gini",
            "store_max",
            "store_gini",
            "delegate_reply",
            "rtx",
        ],
    );
    let levels = [
        ("ideal (prr = 1)", LinkQuality::Fixed(1.0)),
        ("harsh loss (15/42 m)", LinkQuality::Model(PrrModel::new(15.0, 42.0))),
    ];
    let mut results = Vec::new();
    for (label, quality) in levels {
        let r = run_level(&scenario, quality, queries, label);
        for (system, s) in [("pool", &r.pool), ("dim", &r.dim)] {
            println!(
                "{label}\t{system}\t{:.0}\t{:.3}\t{:.0}\t{:.3}\t{}\t{}",
                s.messages.max,
                s.messages.gini,
                s.storage.max,
                s.storage.gini,
                s.delegate_reply_messages,
                s.retransmit_messages,
            );
        }
        results.push(r);
    }
    write_snapshot(nodes, queries, &results);

    // Regression guards. Ideal radio: no ARQ traffic, and the delegation
    // chains *must* show up as Reply-layer load on the delegates — this is
    // the observable form of the chain-reply fix (phantom costs never
    // landed on any node's ledger row).
    let ideal = &results[0];
    assert_eq!(ideal.pool.retransmit_messages, 0, "ideal radio retransmitted (pool)");
    assert_eq!(ideal.dim.retransmit_messages, 0, "ideal radio retransmitted (dim)");
    assert!(
        ideal.pool.delegate_reply_messages > 0,
        "hotspot queries walked no delegation chain — chain replies are not being ledgered"
    );
    // The skew story itself: under a hotspot, Pool's sharing keeps storage
    // strictly better balanced than DIM's zone ownership.
    assert!(
        ideal.pool.storage.max < ideal.dim.storage.max,
        "pool sharing should cap per-node storage below DIM's hot zone owner ({} vs {})",
        ideal.pool.storage.max,
        ideal.dim.storage.max
    );
}
