//! Observability experiment: per-node load balance under a skewed
//! workload. Thin wrapper over [`pool_bench::figures::load_balance`];
//! see that module for the experiment design and regression guards.
//!
//! Run: `cargo run -p pool-bench --bin load_balance --release
//!       [-- --queries N --nodes N --jobs N --smoke]`

use pool_bench::figures::load_balance;

fn main() {
    let params = load_balance::Params::from_env();
    let table = load_balance::collect(&params);
    params.opts.emit("load", &table);
}
