//! Ablation: value of reply aggregation at splitters (§3.2.3).
//!
//! The paper argues the splitter tree "enables the system to consume
//! sensor energy more efficiently than by unicasting ... individually" and
//! that aggregation "significantly reduces" reply traffic. This experiment
//! compares Pool's reply cost with aggregation on and off as result-set
//! sizes grow. Each range size is an independent trial with its own pair
//! of deployments and a derived query seed (`derive_seed(31_337, i)`) —
//! the serial binary threaded one RNG across all sizes. Emits
//! `BENCH_forwarding.json`.
//!
//! Run: `cargo run -p pool-bench --bin forwarding_ablation --release
//!       [-- --nodes N --jobs N --smoke]`

use pool_bench::cli::{arg_usize, BenchOpts};
use pool_bench::exec::{derive_seed, run_trials};
use pool_bench::harness::Scenario;
use pool_core::config::PoolConfig;
use pool_core::query::RangeQuery;
use pool_core::system::PoolSystem;
use pool_netsim::deployment::Deployment;
use pool_netsim::node::NodeId;
use pool_netsim::stats::Summary;
use pool_netsim::topology::Topology;
use pool_workloads::events::{EventDistribution, EventGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let opts = BenchOpts::from_env();
    let nodes = arg_usize("--nodes", opts.nodes(600));
    let trials_per_size = opts.scale(25, 5);
    let sizes: Vec<f64> =
        if opts.smoke { vec![0.1, 0.4] } else { vec![0.05, 0.1, 0.2, 0.4, 0.6, 0.8] };
    let scenario = Scenario::paper(nodes, 31337);

    let results = run_trials(opts.jobs, sizes, |trial_index, size| {
        let mut seed = scenario.seed;
        let (topology, field) = loop {
            let dep = Deployment::paper_setting(nodes, 40.0, 20.0, seed).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                break (topo, dep.field());
            }
            seed += 0x1000;
        };
        let build = |aggregate: bool| -> PoolSystem {
            let mut config = PoolConfig::paper().with_seed(scenario.seed);
            if !aggregate {
                config = config.without_reply_aggregation();
            }
            let mut pool = PoolSystem::build(topology.clone(), field, config).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
            for i in 0..(nodes * 3) {
                let event = generator.generate(&mut rng);
                pool.insert_from(NodeId((i % nodes) as u32), event).unwrap();
            }
            pool
        };
        let mut with_agg = build(true);
        let mut without_agg = build(false);

        let mut rng = StdRng::seed_from_u64(derive_seed(31_337, trial_index as u64));
        let mut agg_total = 0u64;
        let mut raw_total = 0u64;
        let mut matches = 0usize;
        let mut agg_latencies = Vec::with_capacity(trials_per_size);
        let mut raw_latencies = Vec::with_capacity(trials_per_size);
        for _ in 0..trials_per_size {
            let bounds = (0..3)
                .map(|_| {
                    let lo = rng.gen_range(0.0..=(1.0 - size));
                    Some((lo, lo + size))
                })
                .collect();
            let q = RangeQuery::from_bounds(bounds).unwrap();
            let sink = NodeId(rng.gen_range(0..nodes as u32));
            let a = with_agg.query_from(sink, &q).unwrap();
            let b = without_agg.query_from(sink, &q).unwrap();
            assert_eq!(a.events.len(), b.events.len());
            matches += a.events.len();
            agg_total += a.cost.reply_messages;
            raw_total += b.cost.reply_messages;
            agg_latencies.push(a.cost.elapsed * 1e3);
            raw_latencies.push(b.cost.elapsed * 1e3);
        }
        (
            size,
            matches,
            agg_total,
            raw_total,
            Summary::of(&agg_latencies),
            Summary::of(&raw_latencies),
        )
    });

    // Latency columns: whole-query virtual time with and without reply
    // aggregation, in milliseconds.
    let mut table = pool_bench::Table::new(
        "Reply aggregation ablation (growing query selectivity)",
        &[
            "range_size",
            "matches",
            "reply_aggregated",
            "reply_unaggregated",
            "ratio",
            "agg_p50_ms",
            "agg_p99_ms",
            "raw_p50_ms",
            "raw_p99_ms",
        ],
    );
    table.meta("nodes", nodes);
    table.meta("trials", trials_per_size);
    for (size, matches, agg_total, raw_total, agg_lat, raw_lat) in &results {
        table.row(vec![
            (*size).into(),
            (*matches as f64 / trials_per_size as f64).into(),
            (*agg_total as f64 / trials_per_size as f64).into(),
            (*raw_total as f64 / trials_per_size as f64).into(),
            (*raw_total as f64 / (*agg_total).max(1) as f64).into(),
            agg_lat.median.into(),
            agg_lat.p99.into(),
            raw_lat.median.into(),
            raw_lat.p99.into(),
        ]);
    }
    opts.emit("forwarding", &table);
}
