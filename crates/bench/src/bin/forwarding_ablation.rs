//! Ablation: value of reply aggregation at splitters (§3.2.3).
//!
//! The paper argues the splitter tree "enables the system to consume
//! sensor energy more efficiently than by unicasting ... individually" and
//! that aggregation "significantly reduces" reply traffic. This experiment
//! compares Pool's reply cost with aggregation on and off as result-set
//! sizes grow.
//!
//! Run: `cargo run -p pool-bench --bin forwarding_ablation --release`

use pool_bench::harness::{print_header, Scenario};
use pool_core::config::PoolConfig;
use pool_core::query::RangeQuery;
use pool_core::system::PoolSystem;
use pool_netsim::deployment::Deployment;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use pool_workloads::events::{EventDistribution, EventGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let nodes = 600usize;
    let scenario = Scenario::paper(nodes, 31337);
    let mut seed = scenario.seed;
    let (topology, field) = loop {
        let dep = Deployment::paper_setting(nodes, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            break (topo, dep.field());
        }
        seed += 0x1000;
    };

    let build = |aggregate: bool| -> PoolSystem {
        let mut config = PoolConfig::paper().with_seed(scenario.seed);
        if !aggregate {
            config = config.without_reply_aggregation();
        }
        let mut pool = PoolSystem::build(topology.clone(), field, config).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut generator = EventGenerator::new(3, EventDistribution::Uniform);
        for i in 0..(nodes * 3) {
            let event = generator.generate(&mut rng);
            pool.insert_from(NodeId((i % nodes) as u32), event).unwrap();
        }
        pool
    };
    let mut with_agg = build(true);
    let mut without_agg = build(false);

    print_header(
        &format!("Reply aggregation ablation ({nodes} nodes, growing query selectivity)"),
        &["range_size", "matches", "reply_aggregated", "reply_unaggregated", "ratio"],
    );
    let mut rng = StdRng::seed_from_u64(2);
    for size in [0.05f64, 0.1, 0.2, 0.4, 0.6, 0.8] {
        let mut agg_total = 0u64;
        let mut raw_total = 0u64;
        let mut matches = 0usize;
        let trials = 25;
        for _ in 0..trials {
            let bounds = (0..3)
                .map(|_| {
                    let lo = rng.gen_range(0.0..=(1.0 - size));
                    Some((lo, lo + size))
                })
                .collect();
            let q = RangeQuery::from_bounds(bounds).unwrap();
            let sink = NodeId(rng.gen_range(0..nodes as u32));
            let a = with_agg.query_from(sink, &q).unwrap();
            let b = without_agg.query_from(sink, &q).unwrap();
            assert_eq!(a.events.len(), b.events.len());
            matches += a.events.len();
            agg_total += a.cost.reply_messages;
            raw_total += b.cost.reply_messages;
        }
        println!(
            "{size:.2}\t{:.1}\t{:.1}\t{:.1}\t{:.2}",
            matches as f64 / trials as f64,
            agg_total as f64 / trials as f64,
            raw_total as f64 / trials as f64,
            raw_total as f64 / agg_total.max(1) as f64
        );
    }
}
