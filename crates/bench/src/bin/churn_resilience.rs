//! Churn resilience: query completeness, repair traffic, and latency for
//! Pool, DIM, and GHT under epoch-stepped joins, deaths, and moves with a
//! per-epoch repair budget. Thin wrapper over
//! [`pool_bench::figures::churn`]; see that module for the experiment
//! design and regression guards.
//!
//! Run: `cargo run -p pool-bench --bin churn_resilience --release
//!       [-- --nodes N --epochs N --queries N --keys N --gets N
//!        --budget N --jobs N --smoke]`

use pool_bench::figures::churn;

fn main() {
    let params = churn::Params::from_env();
    let table = churn::collect(&params);
    params.opts.emit("churn", &table);
}
