//! Figure 6: exact-match query cost vs network size, for the uniform and
//! exponential range-size distributions.
//!
//! Regenerates both panels:
//! * 6(a) — uniform range sizes: costs are high; DIM grows with network
//!   size while Pool stays nearly flat.
//! * 6(b) — exponential range sizes: both much cheaper, same ordering.
//!
//! Run: `cargo run -p pool-bench --bin fig6 --release [-- --queries N]`

use pool_bench::harness::{measure, print_header, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;
use pool_bench::cli::arg_usize;

fn main() {
    let queries = arg_usize("--queries", 100);
    let sizes = [300usize, 600, 900, 1200];
    for (panel, dist, label) in [
        ('a', RangeSizeDistribution::Uniform, "uniform"),
        ('b', RangeSizeDistribution::Exponential { mean: 0.1 }, "exponential"),
    ] {
        print_header(
            &format!("Figure 6({panel}): exact-match query cost, {label} range sizes"),
            &["nodes", "pool_msgs", "dim_msgs", "dim/pool", "pool_cells", "dim_zones"],
        );
        for &n in &sizes {
            let scenario = Scenario::paper(n, 42 + n as u64);
            let mut pair =
                SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
            let m = measure(&mut pair, QueryKind::Exact(dist), queries);
            println!(
                "{n}\t{:.1}\t{:.1}\t{:.2}\t{:.1}\t{:.1}",
                m.pool.mean,
                m.dim.mean,
                m.dim_over_pool(),
                m.pool_cells,
                m.dim_zones
            );
        }
    }
}

