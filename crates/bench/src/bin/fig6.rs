//! Figure 6: exact-match query cost vs network size, for the uniform and
//! exponential range-size distributions, plus the routing-substrate
//! ablation. Thin wrapper over [`pool_bench::figures::fig6`].
//!
//! Every measurement point is an independent trial on the parallel
//! execution engine; the emitted `BENCH_fig6.json` is byte-identical for
//! any `--jobs` value (wall-clock timings go to stdout only).
//!
//! Run: `cargo run -p pool-bench --bin fig6 --release
//!       [-- --queries N --rounds N --ablation-nodes N
//!           --transport gpsr|cached --jobs N --smoke]`

use pool_bench::figures::fig6;

fn main() {
    let params = fig6::Params::from_env();
    let report = fig6::collect(&params);
    params.opts.emit("fig6", &report.table);
    println!();
    for line in &report.timing_lines {
        println!("{line}");
    }
}
