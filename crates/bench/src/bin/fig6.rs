//! Figure 6: exact-match query cost vs network size, for the uniform and
//! exponential range-size distributions.
//!
//! Regenerates both panels:
//! * 6(a) — uniform range sizes: costs are high; DIM grows with network
//!   size while Pool stays nearly flat.
//! * 6(b) — exponential range sizes: both much cheaper, same ordering.
//!
//! Also runs the routing-substrate ablation: the same repeated-query
//! workload over plain GPSR and over the memoizing route cache, asserting
//! identical message totals and recording wall-clock times, written to
//! `BENCH_fig6.json`.
//!
//! Run: `cargo run -p pool-bench --bin fig6 --release
//!       [-- --queries N --transport gpsr|cached]`

use pool_bench::cli::{arg_transport, arg_usize};
use pool_bench::harness::{measure, print_header, QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_netsim::node::NodeId;
use pool_transport::TransportKind;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;
use std::time::Instant;

/// One substrate's leg of the ablation: total messages and wall-clock time
/// for `rounds` passes over the same fixed query set.
struct AblationRun {
    kind: TransportKind,
    pool_messages: u64,
    dim_messages: u64,
    elapsed_secs: f64,
}

fn run_ablation(nodes: usize, queries: usize, rounds: usize) -> Vec<AblationRun> {
    let scenario = Scenario::paper(nodes, 42 + nodes as u64);
    let kinds = [TransportKind::Gpsr, TransportKind::Cached];
    let mut pairs: Vec<SystemPair> = kinds
        .iter()
        .map(|&kind| {
            let config = PoolConfig::paper().with_transport(kind);
            SystemPair::build(&scenario, config, EventDistribution::Uniform)
        })
        .collect();
    let dims = pairs[0].pool.config().dims;

    // Fixed sinks and queries, replayed `rounds` times: the repeated-query
    // workload where memoization pays off. Identical RNG streams across
    // substrates guarantee identical workloads.
    let query_kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 });
    let sinks: Vec<NodeId> = (0..queries).map(|_| pairs[0].random_node()).collect();
    let query_set: Vec<_> =
        (0..queries).map(|_| query_kind.generate(pairs[0].rng(), dims)).collect();

    // The timed replay drives the harness pair's DIM leg: its query cost is
    // almost entirely routing, so it isolates the substrate's contribution.
    // (Pool's query time is dominated by Theorem 3.2 cell resolution, which
    // no routing substrate can touch.) Message totals for both systems are
    // still recorded and must match across substrates.
    let replay = |pair: &mut SystemPair| {
        for (sink, query) in sinks.iter().zip(&query_set) {
            pair.dim.query_from(*sink, query).expect("dim query");
        }
    };

    // One untimed pass reaches steady state (primes the route memo for the
    // cached substrate); the timed trials interleave the substrates so CPU
    // frequency drift hits both equally, and each keeps its best trial.
    let mut elapsed = [f64::INFINITY; 2];
    for pair in pairs.iter_mut() {
        // Warm-up also runs the Pool leg once, so both systems' query
        // traffic participates in the cross-substrate totals check.
        for (sink, query) in sinks.iter().zip(&query_set) {
            pair.pool.query_from(*sink, query).expect("pool query");
        }
        replay(pair);
    }
    for _trial in 0..5 {
        for (i, pair) in pairs.iter_mut().enumerate() {
            let start = Instant::now();
            for _ in 0..rounds {
                replay(pair);
            }
            elapsed[i] = elapsed[i].min(start.elapsed().as_secs_f64());
        }
    }

    kinds
        .iter()
        .zip(pairs.iter())
        .zip(elapsed)
        .map(|((&kind, pair), elapsed_secs)| AblationRun {
            kind,
            pool_messages: pair.pool.traffic().total_messages(),
            dim_messages: pair.dim.traffic().total_messages(),
            elapsed_secs,
        })
        .collect()
}

fn write_snapshot(nodes: usize, queries: usize, rounds: usize, runs: &[AblationRun]) {
    let per_transport: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    \"{}\": {{\"pool_messages\": {}, \"dim_messages\": {}, \"elapsed_secs\": {:.4}}}",
                r.kind, r.pool_messages, r.dim_messages, r.elapsed_secs
            )
        })
        .collect();
    let speedup = runs[0].elapsed_secs / runs[1].elapsed_secs;
    let identical = runs[0].pool_messages == runs[1].pool_messages
        && runs[0].dim_messages == runs[1].dim_messages;
    let json = format!
(
        "{{\n  \"figure\": \"fig6 transport ablation (DIM leg, repeated queries)\",\n  \"nodes\": {nodes},\n  \"queries\": {queries},\n  \"rounds\": {rounds},\n  \"transports\": {{\n{}\n  }},\n  \"cached_speedup\": {speedup:.2},\n  \"identical_message_totals\": {identical}\n}}\n",
        per_transport.join(",\n")
    );
    std::fs::write("BENCH_fig6.json", &json).expect("write BENCH_fig6.json");
    println!("\n# Routing-substrate ablation ({nodes} nodes, {queries} queries x {rounds} rounds)");
    print!("{json}");
    assert!(identical, "substrates disagree on message totals");
}

fn main() {
    let queries = arg_usize("--queries", 100);
    let transport = arg_transport("--transport", TransportKind::Gpsr);
    let sizes = [300usize, 600, 900, 1200];
    for (panel, dist, label) in [
        ('a', RangeSizeDistribution::Uniform, "uniform"),
        ('b', RangeSizeDistribution::Exponential { mean: 0.1 }, "exponential"),
    ] {
        print_header(
            &format!(
                "Figure 6({panel}): exact-match query cost, {label} range sizes [{transport}]"
            ),
            &["nodes", "pool_msgs", "dim_msgs", "dim/pool", "pool_cells", "dim_zones"],
        );
        for &n in &sizes {
            let scenario = Scenario::paper(n, 42 + n as u64);
            let config = PoolConfig::paper().with_transport(transport);
            let mut pair = SystemPair::build(&scenario, config, EventDistribution::Uniform);
            let m = measure(&mut pair, QueryKind::Exact(dist), queries);
            println!(
                "{n}\t{:.1}\t{:.1}\t{:.2}\t{:.1}\t{:.1}",
                m.pool.mean,
                m.dim.mean,
                m.dim_over_pool(),
                m.pool_cells,
                m.dim_zones
            );
        }
    }

    let rounds = arg_usize("--rounds", 20);
    let ablation_nodes = arg_usize("--ablation-nodes", 1200);
    let runs = run_ablation(ablation_nodes, queries, rounds);
    write_snapshot(ablation_nodes, queries, rounds, &runs);
}
