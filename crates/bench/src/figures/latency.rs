//! Latency-profile driver: the virtual-time cost of one operation on each
//! system — Pool, DIM, and a replicated GHT — across radio regimes,
//! contrasting serial with overlapping fan-out.
//!
//! Message-count figures answer "how much energy does an operation spend";
//! this figure answers "how long does it take". Every row reports the
//! per-operation virtual time (p50/p99/mean, milliseconds) under one of
//! three link regimes (ideal / mild / harsh, matching `lossy_radio`) and
//! one of two fan-out disciplines:
//!
//! * **overlapping** — what the systems actually do: Pool's splitter
//!   fan-out, reply returns, and GHT's mirror writes launch together and
//!   serialize only where they share a radio, so the operation's elapsed
//!   time is its critical path ([`QueryCost::elapsed`],
//!   [`ReplicatedReceipt::elapsed`]).
//! * **serial** — the counterfactual where every leg runs back to back:
//!   for Pool and DIM the per-leg latency sums
//!   (`forward_latency + reply_latency`); for GHT the same mirror routes
//!   delivered one after another on an identically configured shadow
//!   transport.
//!
//! DIM's query walk is a serial chain by construction, so its two rows
//! nearly coincide — that is the point of including it: the gap between
//! the disciplines is the concurrency each system's structure exposes.
//!
//! Each link regime is an independent trial (own deployment, link RNG,
//! ledger), so the three levels run concurrently under `--jobs` and
//! `BENCH_latency.json` is byte-identical for any worker count.
//!
//! [`QueryCost::elapsed`]: pool_core::forward::QueryCost
//! [`ReplicatedReceipt::elapsed`]: pool_ght::replication::ReplicatedReceipt

use crate::cli::{arg_usize, BenchOpts};
use crate::exec::run_trials;
use crate::harness::{QueryKind, Scenario, SystemPair};
use crate::report::Table;
use pool_core::config::PoolConfig;
use pool_ght::replication::ReplicatedGht;
use pool_gpsr::Planarization;
use pool_netsim::node::NodeId;
use pool_netsim::radio::PrrModel;
use pool_netsim::stats::Summary;
use pool_transport::{
    LinkQuality, LossyConfig, LossyTransport, TrafficLayer, Transport, TransportKind,
};
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

/// Mirrors per key for the GHT leg (GHT §4.3 uses `2^d`; d = 2).
const GHT_MIRRORS: u32 = 4;

/// The binary's parameter surface (CLI flags + smoke scaling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Engine options (`--jobs`, `--smoke`).
    pub opts: BenchOpts,
    /// Operations timed per system per level.
    pub queries: usize,
    /// Network size.
    pub nodes: usize,
}

impl Params {
    /// Parses the binary's CLI: explicit flags override smoke defaults.
    pub fn from_env() -> Self {
        let opts = BenchOpts::from_env();
        Params {
            opts,
            queries: arg_usize("--queries", opts.queries(40)).max(1),
            nodes: arg_usize("--nodes", opts.nodes(600)),
        }
    }

    /// The exact configuration `latency_profile --smoke --jobs N` runs
    /// with (used by the determinism regression test).
    pub fn smoke(jobs: usize) -> Self {
        let opts = BenchOpts::smoke_with_jobs(jobs);
        Params { opts, queries: opts.queries(40).max(1), nodes: opts.nodes(600) }
    }
}

/// One (system, fan-out discipline) measurement under one link regime.
struct SystemRow {
    system: &'static str,
    fanout: &'static str,
    mean_msgs: f64,
    latency: Summary,
}

struct LevelResult {
    label: &'static str,
    rows: Vec<SystemRow>,
}

fn run_level(
    scenario: &Scenario,
    quality: LinkQuality,
    queries: usize,
    label: &'static str,
) -> LevelResult {
    let lossy = LossyConfig { quality, ..LossyConfig::fixed(1.0, scenario.seed ^ 0x1A7) };
    let config = PoolConfig::paper().with_lossy(lossy);
    let mut pair = SystemPair::build(scenario, config, EventDistribution::Uniform);

    // Pool and DIM: the same sinks and queries hit both systems; each
    // query yields its critical path (overlapping) and its per-leg sum
    // (serial counterfactual) from the same execution.
    let dims = pair.pool.config().dims;
    let kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 });
    let mut pool_overlap = Vec::with_capacity(queries);
    let mut pool_serial = Vec::with_capacity(queries);
    let mut dim_overlap = Vec::with_capacity(queries);
    let mut dim_serial = Vec::with_capacity(queries);
    let mut pool_msgs = 0u64;
    let mut dim_msgs = 0u64;
    for _ in 0..queries {
        let sink = pair.random_node();
        let query = kind.generate(pair.rng(), dims);
        let p = pair.pool.query_from(sink, &query).expect("pool query");
        pool_overlap.push(p.cost.elapsed * 1e3);
        pool_serial.push((p.cost.forward_latency + p.cost.reply_latency) * 1e3);
        pool_msgs += p.cost.total();
        let d = pair.dim.query_from(sink, &query).expect("dim query");
        dim_overlap.push(d.cost.elapsed * 1e3);
        dim_serial.push((d.cost.forward_latency + d.cost.reply_latency) * 1e3);
        dim_msgs += d.cost.total();
    }

    // GHT: replicated puts over the same deployment. The overlapped
    // transport runs the real mirror fan-out; the shadow transport —
    // identically configured, including the loss seed — delivers the same
    // mirror routes strictly one after another.
    let topology = pair.pool.topology().clone();
    let ght_lossy = LossyConfig { quality, ..LossyConfig::fixed(1.0, scenario.seed ^ 0x647) };
    let mut overlapped = LossyTransport::wrap(
        TransportKind::Gpsr.build(&topology, Planarization::Gabriel),
        ght_lossy,
    );
    let mut shadow = LossyTransport::wrap(
        TransportKind::Gpsr.build(&topology, Planarization::Gabriel),
        ght_lossy,
    );
    let mut ght: ReplicatedGht<u64> = ReplicatedGht::new(&topology, GHT_MIRRORS);
    let n = topology.len() as u32;
    let mut ght_overlap = Vec::with_capacity(queries);
    let mut ght_serial = Vec::with_capacity(queries);
    let mut ght_msgs = 0u64;
    let mut shadow_msgs = 0u64;
    for i in 0..queries {
        let key = format!("evt-{i}");
        let from = NodeId((i as u32).wrapping_mul(37) % n);
        let receipt = ght.put(&topology, &mut overlapped, from, &key, i as u64).expect("ght put");
        ght_overlap.push(receipt.elapsed * 1e3);
        ght_msgs += receipt.messages;
        let before = shadow.clock().now();
        for r in 0..GHT_MIRRORS {
            let loc =
                pool_ght::hash::hash_to_replica_location(key.as_bytes(), r, topology.bounds());
            let route = shadow.route_to_location(&topology, from, loc).expect("ght route");
            let layer = if r == 0 { TrafficLayer::Insert } else { TrafficLayer::Replication };
            let outcome = shadow.deliver(&topology, &route.path, layer);
            shadow_msgs += outcome.transmissions;
        }
        ght_serial.push((shadow.clock().now() - before) * 1e3);
    }

    let per_op = |total: u64| total as f64 / queries as f64;
    LevelResult {
        label,
        rows: vec![
            SystemRow {
                system: "pool",
                fanout: "overlapping",
                mean_msgs: per_op(pool_msgs),
                latency: Summary::of(&pool_overlap),
            },
            SystemRow {
                system: "pool",
                fanout: "serial",
                mean_msgs: per_op(pool_msgs),
                latency: Summary::of(&pool_serial),
            },
            SystemRow {
                system: "dim",
                fanout: "overlapping",
                mean_msgs: per_op(dim_msgs),
                latency: Summary::of(&dim_overlap),
            },
            SystemRow {
                system: "dim",
                fanout: "serial",
                mean_msgs: per_op(dim_msgs),
                latency: Summary::of(&dim_serial),
            },
            SystemRow {
                system: "ght",
                fanout: "overlapping",
                mean_msgs: per_op(ght_msgs),
                latency: Summary::of(&ght_overlap),
            },
            SystemRow {
                system: "ght",
                fanout: "serial",
                mean_msgs: per_op(shadow_msgs),
                latency: Summary::of(&ght_serial),
            },
        ],
    }
}

/// Runs the three link regimes on `params.opts.jobs` workers and
/// aggregates the deterministic table.
///
/// # Panics
///
/// Panics if a regression guard trips: an overlapped operation taking
/// longer than its serial counterfactual (the critical path is a subset
/// of the legs, so it can never exceed their sum), or GHT's mirror
/// fan-out failing to beat sequential mirror writes on the ideal radio.
pub fn collect(params: &Params) -> Table {
    let scenario = Scenario::paper(params.nodes, 92_000);
    let queries = params.queries;
    let levels: Vec<(&'static str, LinkQuality)> = vec![
        ("ideal (prr = 1)", LinkQuality::Fixed(1.0)),
        ("mild loss (30/45 m)", LinkQuality::Model(PrrModel::new(30.0, 45.0))),
        ("harsh loss (15/42 m)", LinkQuality::Model(PrrModel::new(15.0, 42.0))),
    ];
    let results = run_trials(params.opts.jobs, levels, |_, (label, quality)| {
        run_level(&scenario, quality, queries, label)
    });

    let mut table = Table::new(
        "Per-operation latency: virtual time across radio regimes and fan-out disciplines",
        &["radio", "system", "fanout", "mean_msgs", "p50_ms", "p99_ms", "mean_ms"],
    );
    table.meta("nodes", params.nodes);
    table.meta("queries", queries);
    table.meta("ght_mirrors", GHT_MIRRORS as usize);
    for level in &results {
        for row in &level.rows {
            table.row(vec![
                level.label.into(),
                row.system.into(),
                row.fanout.into(),
                row.mean_msgs.into(),
                row.latency.median.into(),
                row.latency.p99.into(),
                row.latency.mean.into(),
            ]);
        }
    }

    // Regression guards. The critical path of an operation is a chain of
    // its legs, each of which also appears in the serial sum — overlapped
    // can never exceed serial.
    for level in &results {
        for pair in level.rows.chunks(2) {
            let (overlap, serial) = (&pair[0], &pair[1]);
            assert!(
                overlap.latency.mean <= serial.latency.mean + 1e-9,
                "{} on {}: overlapped mean {} ms exceeds serial mean {} ms",
                overlap.system,
                level.label,
                overlap.latency.mean,
                serial.latency.mean
            );
        }
    }
    // On the ideal radio GHT's 4-way mirror fan-out must show real
    // concurrency: strictly faster than writing the mirrors one by one.
    let ideal = &results[0];
    let (ght_overlap, ght_serial) = (&ideal.rows[4], &ideal.rows[5]);
    assert!(
        ght_overlap.latency.mean < ght_serial.latency.mean,
        "ideal-radio GHT fan-out shows no overlap ({} vs {} ms)",
        ght_overlap.latency.mean,
        ght_serial.latency.mean
    );
    table
}
