//! Library-level figure drivers.
//!
//! The figure binaries under `src/bin/` used to own their experiment
//! logic; the drivers that gate CI now live here so tests can run them
//! in-process. Each driver exposes a `Params` struct (mirroring the
//! binary's CLI surface, including smoke scaling) and a `collect` function
//! returning the deterministic [`Table`](crate::report::Table) the binary
//! prints and serializes — which is what lets the determinism regression
//! test assert byte-identical JSON across `--jobs` values without shelling
//! out to cargo.

pub mod churn;
pub mod fig6;
pub mod latency;
pub mod load_balance;
pub mod scale;
pub mod service;
