//! Scale sweep: wall-clock and peak memory for Pool, DIM, and GHT from
//! 1 000 to 100 000 nodes.
//!
//! Every other figure measures *message* cost, which the determinism
//! contract keeps byte-identical across machines. This one measures the
//! simulator itself: how long building a deployment, inserting a fixed
//! workload, answering a fixed query batch, and absorbing one churn epoch
//! take as the network grows — the numbers that justify the flat CSR
//! topology arenas and the bounded route cache. Each size also runs a
//! direct incremental-mutation probe: failing a handful of nodes on the
//! freshly built topology must leave a *small* patched-row overlay
//! (`Topology::patched_rows`), proving churn no longer pays a full-arena
//! rebuild per event.
//!
//! **Determinism exception.** The `*_ms` and `rss_kb` columns are
//! wall-clock and peak-RSS measurements — they vary run to run and
//! machine to machine, unlike every other checked-in artifact column.
//! All remaining columns (message totals, match counts, overlay sizes)
//! stay fully deterministic, and `scripts/bench_compare.sh` diffs the two
//! kinds accordingly: exact for counts, ratio-thresholded for timings.
//!
//! The sweep runs strictly serially regardless of `--jobs` — concurrent
//! trials would contend for cores and poison each other's timings.
//!
//! Guards: query spot-checks against brute force over the inserted
//! events, the route-cache bound (`cached_routes() ≤ capacity`), the
//! overlay bound, and — across each 10× size pair — a sub-quadratic
//! scaling assertion: 10× the nodes may cost at most 15× the build+query
//! wall-clock.

use crate::cli::{arg_usize, BenchOpts};
use crate::exec::derive_seed;
use crate::harness::QueryKind;
use crate::report::Table;
use pool_core::config::PoolConfig;
use pool_core::dynamics::{ChurnConfig, ChurnPlanner, RepairQueue};
use pool_core::event::Event;
use pool_core::system::PoolSystem;
use pool_dim::churn::DimRepairQueue;
use pool_dim::system::DimSystem;
use pool_ght::churn::GhtRepairQueue;
use pool_ght::table::GhtTable;
use pool_gpsr::Planarization;
use pool_netsim::deployment::Deployment;
use pool_netsim::geometry::Rect;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use pool_transport::TransportKind;
use pool_workloads::events::{EventDistribution, EventGenerator};
use pool_workloads::queries::RangeSizeDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Base seed for the sweep's derived streams.
const BASE_SEED: u64 = 52_007;
/// Event dimensionality (the paper's k = 3).
const DIMS: usize = 3;
/// Radio range in meters (§5.1).
const RADIO: f64 = 40.0;
/// Target mean neighborhood size (§5.1).
const NEIGHBORS: f64 = 20.0;
/// Per-epoch repair budget for the churn step.
const CHURN_BUDGET: u64 = 400;
/// A 10× size step may cost at most this factor in build+query time.
const SUBQUADRATIC_FACTOR: f64 = 15.0;
/// Timings below this floor (seconds) are noise; scaling ratios divide by
/// at least this much.
const TIMING_FLOOR: f64 = 0.05;

/// The binary's parameter surface (CLI flags + smoke scaling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Params {
    /// Engine options (`--smoke`; `--jobs` is accepted but the sweep is
    /// always serial).
    pub opts: BenchOpts,
    /// Network sizes to sweep, ascending.
    pub sizes: Vec<usize>,
    /// Events inserted per system at every size.
    pub inserts: usize,
    /// Queries (range queries / key lookups) per system at every size.
    pub queries: usize,
}

impl Params {
    /// Parses the binary's CLI: explicit flags override smoke defaults.
    /// `--max-nodes N` truncates the sweep for quick local runs.
    pub fn from_env() -> Self {
        let opts = BenchOpts::from_env();
        let cap = arg_usize("--max-nodes", usize::MAX);
        let mut sizes = Self::sizes_for(opts);
        sizes.retain(|&n| n <= cap);
        assert!(!sizes.is_empty(), "--max-nodes leaves an empty sweep");
        Params {
            opts,
            sizes,
            inserts: arg_usize("--inserts", opts.scale(10_000, 200)).max(1),
            queries: arg_usize("--queries", opts.scale(1_000, 20)).max(1),
        }
    }

    /// The exact configuration `sweep_scale --smoke --jobs N` runs with
    /// (used by the determinism regression test).
    pub fn smoke(jobs: usize) -> Self {
        let opts = BenchOpts::smoke_with_jobs(jobs);
        Params { opts, sizes: Self::sizes_for(opts), inserts: 200, queries: 20 }
    }

    fn sizes_for(opts: BenchOpts) -> Vec<usize> {
        if opts.smoke {
            vec![300, 600]
        } else {
            vec![1_000, 3_000, 10_000, 30_000, 100_000]
        }
    }
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`); 0 on platforms without procfs. Monotone across
/// the sweep — each row reports the high-water mark so far.
fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    return rest.trim().trim_end_matches(" kB").trim().parse().unwrap_or(0);
                }
            }
        }
    }
    0
}

fn elapsed_ms(since: Instant) -> f64 {
    since.elapsed().as_secs_f64() * 1e3
}

/// One system's measurements at one size.
struct SystemRow {
    system: &'static str,
    build_ms: f64,
    insert_ms: f64,
    query_ms: f64,
    churn_ms: f64,
    insert_messages: u64,
    query_messages: u64,
    repair_messages: u64,
    matches: u64,
}

struct SizeResult {
    nodes: usize,
    patched_rows: usize,
    rows: Vec<SystemRow>,
    rss_kb: u64,
}

/// Builds a connected §5.1 deployment of `n` nodes, retrying the seed
/// until connected (same policy as the harness).
fn build_topology(n: usize, mut seed: u64) -> (Topology, Rect) {
    loop {
        let dep = Deployment::paper_setting(n, RADIO, NEIGHBORS, seed).expect("valid parameters");
        let topo = Topology::build(dep.nodes(), RADIO).expect("valid topology");
        if topo.is_connected() {
            return (topo, dep.field());
        }
        seed = seed.wrapping_add(0x1000);
    }
}

/// The incremental-mutation probe: failing a few nodes on a fresh arena
/// must patch only the touched rows, and compaction must fold the overlay
/// away completely.
fn probe_incremental_mutation(topology: &Topology, n: usize) -> usize {
    let mut probe = topology.clone();
    let k = (n / 200).clamp(1, 50);
    let victims: Vec<NodeId> =
        (0..k).map(|i| NodeId((i * (n / k)) as u32)).filter(|id| probe.is_alive(*id)).collect();
    probe.fail_nodes(&victims);
    let patched = probe.patched_rows();
    assert!(patched > 0, "failing {k} nodes must touch the overlay");
    assert!(
        patched < n / 2,
        "incremental mutation patched {patched} of {n} rows — that is a rebuild, not a patch"
    );
    probe.compact();
    assert_eq!(probe.patched_rows(), 0, "compaction must fold the overlay away");
    patched
}

/// Shared workload for one size: every system sees the same sources and
/// (for Pool/DIM) the same events.
struct Workload {
    events: Vec<Event>,
    sources: Vec<NodeId>,
}

fn workload(params: &Params, n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE7E7_E7E7);
    let mut generator = EventGenerator::new(DIMS, EventDistribution::Uniform);
    let events: Vec<Event> = (0..params.inserts).map(|_| generator.generate(&mut rng)).collect();
    let sources: Vec<NodeId> =
        (0..params.inserts).map(|_| NodeId(rng.gen_range(0..n as u32))).collect();
    Workload { events, sources }
}

fn churn_plan(topology: &Topology, field: Rect, seed: u64) -> pool_core::dynamics::EpochPlan {
    // Same seed at every call site: Pool, DIM, and GHT all absorb the
    // identical epoch on identical topologies.
    let mut planner = ChurnPlanner::new(ChurnConfig::new(seed ^ 0x51).with_rates(2, 4, 3));
    planner.plan(topology, field)
}

fn run_pool(
    params: &Params,
    topology: &Topology,
    field: Rect,
    seed: u64,
    w: &Workload,
) -> SystemRow {
    let start = Instant::now();
    let config =
        PoolConfig::paper().with_dims(DIMS).with_seed(seed).with_transport(TransportKind::Cached);
    let mut pool = PoolSystem::build(topology.clone(), field, config).expect("pool builds");
    let build_ms = elapsed_ms(start);

    let start = Instant::now();
    let mut insert_messages = 0;
    for (event, &source) in w.events.iter().zip(&w.sources) {
        let receipt = pool.insert_from(source, event.clone()).expect("pool insert");
        insert_messages += receipt.messages;
    }
    let insert_ms = elapsed_ms(start);

    let kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BB5);
    let start = Instant::now();
    let (mut query_messages, mut matches) = (0u64, 0u64);
    for q in 0..params.queries {
        let sink = NodeId(rng.gen_range(0..topology.len() as u32));
        let query = kind.generate(&mut rng, DIMS);
        let result = pool.query_from(sink, &query).expect("pool query");
        query_messages += result.cost.forward_messages + result.cost.reply_messages;
        matches += result.events.len() as u64;
        if q % 50 == 0 {
            // Brute-force spot check: on a loss-free radio Pool returns
            // exactly the inserted events that match.
            let truth = w.events.iter().filter(|e| query.matches(e)).count();
            assert_eq!(result.events.len(), truth, "pool result diverges from brute force");
        }
    }
    let query_ms = elapsed_ms(start);

    let start = Instant::now();
    let plan = churn_plan(pool.topology(), field, seed);
    let mut queue = RepairQueue::default();
    let report = pool.apply_epoch(&plan, &mut queue, CHURN_BUDGET).expect("pool epoch");
    let churn_ms = elapsed_ms(start);

    SystemRow {
        system: "pool",
        build_ms,
        insert_ms,
        query_ms,
        churn_ms,
        insert_messages,
        query_messages,
        repair_messages: report.repair_messages,
        matches,
    }
}

fn run_dim(
    params: &Params,
    topology: &Topology,
    field: Rect,
    seed: u64,
    w: &Workload,
) -> SystemRow {
    let start = Instant::now();
    let mut dim =
        DimSystem::build_with_substrate(topology.clone(), field, DIMS, TransportKind::Cached, None)
            .expect("dim builds");
    let build_ms = elapsed_ms(start);

    let start = Instant::now();
    let mut insert_messages = 0;
    for (event, &source) in w.events.iter().zip(&w.sources) {
        let receipt = dim.insert_from(source, event.clone()).expect("dim insert");
        insert_messages += receipt.messages;
    }
    let insert_ms = elapsed_ms(start);

    let kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 });
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BB5);
    let start = Instant::now();
    let (mut query_messages, mut matches) = (0u64, 0u64);
    for q in 0..params.queries {
        let sink = NodeId(rng.gen_range(0..topology.len() as u32));
        let query = kind.generate(&mut rng, DIMS);
        let result = dim.query_from(sink, &query).expect("dim query");
        query_messages += result.cost.forward_messages + result.cost.reply_messages;
        matches += result.events.len() as u64;
        if q % 50 == 0 {
            let truth = w.events.iter().filter(|e| query.matches(e)).count();
            assert_eq!(result.events.len(), truth, "dim result diverges from brute force");
        }
    }
    let query_ms = elapsed_ms(start);

    let start = Instant::now();
    let plan = churn_plan(dim.topology(), field, seed);
    let mut queue = DimRepairQueue::default();
    let report = dim.apply_epoch(&plan, &mut queue, CHURN_BUDGET).expect("dim epoch");
    let churn_ms = elapsed_ms(start);

    SystemRow {
        system: "dim",
        build_ms,
        insert_ms,
        query_ms,
        churn_ms,
        insert_messages,
        query_messages,
        repair_messages: report.repair_messages,
        matches,
    }
}

fn run_ght(
    params: &Params,
    topology: &Topology,
    field: Rect,
    seed: u64,
    w: &Workload,
) -> SystemRow {
    let start = Instant::now();
    let mut topo = topology.clone();
    let mut transport = TransportKind::Cached.build(&topo, Planarization::Gabriel);
    let mut table: GhtTable<u64> = GhtTable::new(&topo);
    let build_ms = elapsed_ms(start);

    let start = Instant::now();
    let mut insert_messages = 0;
    for (i, &source) in w.sources.iter().enumerate() {
        let receipt = table
            .put(&topo, transport.as_mut(), source, &format!("evt-{i}"), i as u64)
            .expect("ght put");
        insert_messages += receipt.messages;
    }
    let insert_ms = elapsed_ms(start);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x0BB5);
    let start = Instant::now();
    let (mut query_messages, mut matches) = (0u64, 0u64);
    for _ in 0..params.queries {
        let sink = NodeId(rng.gen_range(0..topo.len() as u32));
        let key = rng.gen_range(0..params.inserts);
        let (values, receipt) =
            table.get(&topo, transport.as_mut(), sink, &format!("evt-{key}")).expect("ght get");
        query_messages += receipt.messages;
        // Loss-free pristine network: every stored key must be found.
        assert!(!values.is_empty(), "ght lost key evt-{key} on a pristine network");
        matches += values.len() as u64;
    }
    let query_ms = elapsed_ms(start);

    let start = Instant::now();
    let plan = churn_plan(&topo, field, seed);
    let mut queue: GhtRepairQueue<u64> = GhtRepairQueue::default();
    let report = table.apply_epoch(
        &mut topo,
        transport.as_mut(),
        &plan.joins,
        &plan.deaths,
        &plan.moves,
        &mut queue,
        CHURN_BUDGET,
    );
    let churn_ms = elapsed_ms(start);

    SystemRow {
        system: "ght",
        build_ms,
        insert_ms,
        query_ms,
        churn_ms,
        insert_messages,
        query_messages,
        repair_messages: report.repair_messages,
        matches,
    }
}

fn run_size(params: &Params, index: usize, n: usize) -> SizeResult {
    let seed = derive_seed(BASE_SEED, index as u64);
    let (topology, field) = build_topology(n, seed);
    let patched_rows = probe_incremental_mutation(&topology, n);
    let w = workload(params, n, seed);
    let rows = vec![
        run_pool(params, &topology, field, seed, &w),
        run_dim(params, &topology, field, seed, &w),
        run_ght(params, &topology, field, seed, &w),
    ];
    SizeResult { nodes: n, patched_rows, rows, rss_kb: peak_rss_kb() }
}

/// Runs the sweep serially and aggregates the table.
///
/// # Panics
///
/// Panics if a regression guard trips: a brute-force query mismatch, a
/// lost GHT key, an incremental-mutation overlay that grew to rebuild
/// size, or a 10× size step costing more than 15× the build+query
/// wall-clock (super-quadratic scaling).
pub fn collect(params: &Params) -> Table {
    let mut results = Vec::with_capacity(params.sizes.len());
    for (index, &n) in params.sizes.iter().enumerate() {
        // Serial on purpose: timing trials must not contend for cores.
        results.push(run_size(params, index, n));
    }

    let mut table = Table::new(
        "Scale sweep: wall-clock and peak RSS vs network size \
         (timing columns are the documented determinism exception)",
        &[
            "nodes",
            "system",
            "build_ms",
            "insert_ms",
            "query_ms",
            "churn_ms",
            "insert_msgs",
            "query_msgs",
            "repair_msgs",
            "matches",
            "patched_rows",
            "rss_kb",
        ],
    );
    table.meta("inserts", params.inserts);
    table.meta("queries", params.queries);
    table.meta("churn_budget", CHURN_BUDGET as usize);
    for size in &results {
        for row in &size.rows {
            table.row(vec![
                size.nodes.into(),
                row.system.into(),
                row.build_ms.into(),
                row.insert_ms.into(),
                row.query_ms.into(),
                row.churn_ms.into(),
                row.insert_messages.into(),
                row.query_messages.into(),
                row.repair_messages.into(),
                row.matches.into(),
                size.patched_rows.into(),
                size.rss_kb.into(),
            ]);
        }
    }

    // The scaling guard: across every 10× size pair in the sweep, the
    // build+query cost may grow at most 15×. A quadratic core would grow
    // 100×. The floor keeps sub-50ms small-end timings from amplifying
    // noise into false failures (smoke sizes never form a 10× pair, so
    // smoke runs skip this guard entirely).
    for small in &results {
        let Some(big) = results.iter().find(|r| r.nodes == small.nodes * 10) else { continue };
        for (s, b) in small.rows.iter().zip(&big.rows) {
            let t_small = ((s.build_ms + s.query_ms) / 1e3).max(TIMING_FLOOR);
            let t_big = (b.build_ms + b.query_ms) / 1e3;
            assert!(
                t_big <= SUBQUADRATIC_FACTOR * t_small,
                "{}: {} -> {} nodes scaled build+query {:.2}s -> {:.2}s (> {SUBQUADRATIC_FACTOR}x)",
                s.system,
                small.nodes,
                big.nodes,
                t_small,
                t_big,
            );
        }
    }
    table
}
