//! Load-balance driver: per-node message/storage load under a skewed
//! workload, Pool vs DIM, on ideal and harsh radios.
//!
//! Each (link-regime) level is an independent trial — it builds its own
//! deployment, lossy link layer, ledger, and tracer from the scenario
//! seed — so the two levels run concurrently under `--jobs` and aggregate
//! into a byte-identical table regardless of worker count. The regression
//! guards (no ARQ traffic on the ideal radio, delegation chains visibly
//! ledgered, Pool's sharing beating DIM's hot zone owner) run after
//! aggregation, exactly as the serial binary always asserted them.

use crate::cli::{arg_usize, BenchOpts};
use crate::exec::run_trials;
use crate::harness::{QueryKind, Scenario, SystemPair};
use crate::report::Table;
use pool_core::config::{PoolConfig, SharingPolicy};
use pool_core::query::RangeQuery;
use pool_netsim::radio::PrrModel;
use pool_transport::{LinkQuality, LoadDistribution, LossyConfig, NodeRole, TrafficLayer};
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

/// The hotspot: most readings cluster here, so one α-cell's index node
/// overflows its sharing capacity and grows a delegation chain.
const HOTSPOT: [f64; 3] = [0.85, 0.15, 0.5];

/// The binary's parameter surface (CLI flags + smoke scaling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Engine options (`--jobs`, `--smoke`).
    pub opts: BenchOpts,
    /// Queries per level.
    pub queries: usize,
    /// Network size.
    pub nodes: usize,
}

impl Params {
    /// Parses the binary's CLI: explicit flags override smoke defaults.
    pub fn from_env() -> Self {
        let opts = BenchOpts::from_env();
        Params {
            opts,
            queries: arg_usize("--queries", opts.queries(45)).max(1),
            nodes: arg_usize("--nodes", opts.nodes(600)),
        }
    }

    /// The exact configuration `load_balance --smoke --jobs N` runs with
    /// (used by the determinism regression test).
    pub fn smoke(jobs: usize) -> Self {
        let opts = BenchOpts::smoke_with_jobs(jobs);
        Params { opts, queries: opts.queries(45), nodes: opts.nodes(600) }
    }
}

/// How one system's load spread out under one link regime.
struct SystemStats {
    messages: LoadDistribution,
    storage: LoadDistribution,
    reply: LoadDistribution,
    busy: LoadDistribution,
    delegate_reply_messages: u64,
    hottest_node: u32,
    hottest_messages: u64,
    retransmit_messages: u64,
}

struct LevelResult {
    label: &'static str,
    pool: SystemStats,
    dim: SystemStats,
}

fn run_level(
    scenario: &Scenario,
    quality: LinkQuality,
    queries: usize,
    label: &'static str,
) -> LevelResult {
    let lossy = LossyConfig { quality, ..LossyConfig::fixed(1.0, scenario.seed ^ 0x70AD) };
    let config = PoolConfig::paper().with_sharing(SharingPolicy::new(25)).with_lossy(lossy);
    let events = EventDistribution::Hotspot { center: HOTSPOT.to_vec(), std_dev: 0.04 };
    let mut pair = SystemPair::build(scenario, config, events);

    // Query phase: a mix of random exact-match ranges (the §5 workload)
    // and queries aimed at the hotspot itself — the latter are what walk
    // the delegation chains and generate Delegate-relayed Reply traffic.
    let dims = pair.pool.config().dims;
    let kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 });
    let hot_query =
        RangeQuery::exact(HOTSPOT.iter().map(|&c| (c - 0.06, c + 0.06)).collect::<Vec<_>>())
            .expect("hotspot query");
    for i in 0..queries {
        let sink = pair.random_node();
        let query = if i % 3 == 0 { hot_query.clone() } else { kind.generate(pair.rng(), dims) };
        pair.pool.query_from(sink, &query).expect("pool query");
        pair.dim.query_from(sink, &query).expect("dim query");
    }

    let stats = |report: &pool_transport::LoadReport, retransmit: u64| {
        let hottest = report.hottest(1);
        let (hottest_node, hottest_messages) =
            hottest.first().map(|n| (n.node.0, n.messages)).unwrap_or((0, 0));
        SystemStats {
            messages: report.message_distribution(),
            storage: report.storage_distribution(),
            reply: report.layer_distribution(TrafficLayer::Reply),
            busy: report.busy_distribution(),
            delegate_reply_messages: report
                .role_layer_total(NodeRole::Delegate, TrafficLayer::Reply),
            hottest_node,
            hottest_messages,
            retransmit_messages: retransmit,
        }
    };
    let pool =
        stats(&pair.pool.load_report(), pair.pool.ledger().layer_total(TrafficLayer::Retransmit));
    let dim =
        stats(&pair.dim.load_report(), pair.dim.ledger().layer_total(TrafficLayer::Retransmit));
    LevelResult { label, pool, dim }
}

/// Runs both link regimes on `params.opts.jobs` workers and aggregates
/// the deterministic table.
///
/// # Panics
///
/// Panics if a regression guard trips: ARQ traffic on an ideal radio,
/// delegation chains missing from the Reply-layer ledger, or Pool's
/// sharing failing to cap storage below DIM's hot zone owner.
pub fn collect(params: &Params) -> Table {
    let scenario = Scenario::paper(params.nodes, 91_000);
    let queries = params.queries;
    let levels: Vec<(&'static str, LinkQuality)> = vec![
        ("ideal (prr = 1)", LinkQuality::Fixed(1.0)),
        ("harsh loss (15/42 m)", LinkQuality::Model(PrrModel::new(15.0, 42.0))),
    ];
    let results = run_trials(params.opts.jobs, levels, |_, (label, quality)| {
        run_level(&scenario, quality, queries, label)
    });

    let mut table = Table::new(
        "Per-node load balance under a hotspot workload (sharing capacity 25)",
        &[
            "radio",
            "system",
            "msg_max",
            "msg_mean",
            "msg_gini",
            "store_max",
            "store_mean",
            "store_gini",
            "reply_max",
            "reply_gini",
            "busy_max_s",
            "busy_gini",
            "delegate_reply",
            "hottest_node",
            "hottest_msgs",
            "rtx",
        ],
    );
    table.meta("nodes", params.nodes);
    table.meta("queries", queries);
    for level in &results {
        for (system, s) in [("pool", &level.pool), ("dim", &level.dim)] {
            table.row(vec![
                level.label.into(),
                system.into(),
                s.messages.max.into(),
                s.messages.mean.into(),
                s.messages.gini.into(),
                s.storage.max.into(),
                s.storage.mean.into(),
                s.storage.gini.into(),
                s.reply.max.into(),
                s.reply.gini.into(),
                s.busy.max.into(),
                s.busy.gini.into(),
                s.delegate_reply_messages.into(),
                s.hottest_node.into(),
                s.hottest_messages.into(),
                s.retransmit_messages.into(),
            ]);
        }
    }

    // Regression guards. Ideal radio: no ARQ traffic, and the delegation
    // chains *must* show up as Reply-layer load on the delegates — this is
    // the observable form of the chain-reply fix (phantom costs never
    // landed on any node's ledger row).
    let ideal = &results[0];
    assert_eq!(ideal.pool.retransmit_messages, 0, "ideal radio retransmitted (pool)");
    assert_eq!(ideal.dim.retransmit_messages, 0, "ideal radio retransmitted (dim)");
    assert!(
        ideal.pool.delegate_reply_messages > 0,
        "hotspot queries walked no delegation chain — chain replies are not being ledgered"
    );
    // The skew story itself: under a hotspot, Pool's sharing keeps storage
    // strictly better balanced than DIM's zone ownership.
    assert!(
        ideal.pool.storage.max < ideal.dim.storage.max,
        "pool sharing should cap per-node storage below DIM's hot zone owner ({} vs {})",
        ideal.pool.storage.max,
        ideal.dim.storage.max
    );
    table
}
