//! Service-load driver: sustained concurrent load on the sharded front
//! end, Pool vs DIM vs GHT, with a coalescing-disabled ablation.
//!
//! Every other figure measures one operation at a time; this one measures
//! the *service*: an open-loop virtual-time schedule of mixed reads and
//! writes replayed through a [`ServiceHandle`] — admission windows,
//! query coalescing, per-shard queueing, parallel shard execution — and
//! reports throughput (requests per virtual second) and request latency
//! (p50/p99 virtual milliseconds, arrival to completion, so queueing and
//! admission delay are priced in).
//!
//! Three load profiles run against three backends:
//!
//! * **burst** — clients arrive in tight same-sink bursts (dashboard
//!   refresh): the best case for coalescing, which collapses each burst
//!   into one delivery.
//! * **sustained** — a steady open-loop stream with occasional writes:
//!   coalescing only catches same-window neighbours.
//! * **chaos** — the sustained stream while a [`FaultPlan`] crashes
//!   scouted victims mid-load (adaptive recovery + operation retries
//!   on); the completeness column reports what the service honestly
//!   failed to answer.
//!
//! Each profile × system arm runs twice — coalescing on (the `reqps` /
//! `p50_ms` / `p99_ms` / `messages` columns) and the admission-disabled
//! ablation (`nc_*` columns) — on freshly built deployments, so the two
//! arms differ only in the admission policy. Pool and DIM serve the
//! *identical* schedule over the same topology; GHT serves a key-value
//! translation with the same arrival process.
//!
//! Every arm is an independent trial and [`ServiceHandle::serve`] is
//! jobs-invariant by construction, so `BENCH_service.json` is
//! byte-identical for any `--jobs` count. Every serve call additionally
//! audits the conservation identity (attributed messages == exact shard
//! ledger growth) — the benchmark doubles as a concurrency correctness
//! gate.
//!
//! [`ServiceHandle`]: pool_service::ServiceHandle
//! [`ServiceHandle::serve`]: pool_service::ServiceHandle::serve
//! [`FaultPlan`]: pool_transport::FaultPlan

use crate::cli::{arg_usize, BenchOpts};
use crate::exec::{derive_seed, run_trials};
use crate::report::Table;
use pool_core::config::PoolConfig;
use pool_core::event::Event;
use pool_core::query::RangeQuery;
use pool_netsim::deployment::Deployment;
use pool_netsim::geometry::Rect;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use pool_service::{
    AdmissionConfig, DimBackend, GhtBackend, PoolBackend, Request, ScheduledRequest, ServeOutcome,
    ServiceBackend, ServiceHandle,
};
use pool_transport::{Fault, FaultPlan, OpRetryPolicy, RecoveryConfig, TransportKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base seed for the per-profile RNG streams.
const SEED: u64 = 0x5E21_1CE0;

/// Shards per backend: Pool shards by pool dimension (= dims), DIM and
/// GHT split four ways.
const POOL_DIMS: usize = 3;
const DIM_SHARDS: usize = 4;
const GHT_SHARDS: usize = 4;

/// Hot key-space size for the GHT leg (all preloaded, so every get has
/// an answer to fetch).
const HOT_KEYS: usize = 8;

/// The binary's parameter surface (CLI flags + smoke scaling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Engine options (`--jobs`, `--smoke`).
    pub opts: BenchOpts,
    /// Scheduled requests per profile.
    pub requests: usize,
    /// Network size.
    pub nodes: usize,
    /// Events (and puts) preloaded before the measured window.
    pub events: usize,
}

impl Params {
    /// Parses the binary's CLI: explicit flags override smoke defaults.
    pub fn from_env() -> Self {
        let opts = BenchOpts::from_env();
        Params {
            opts,
            requests: arg_usize("--requests", opts.scale(240, 40)).max(8),
            nodes: arg_usize("--nodes", opts.nodes(300)),
            events: arg_usize("--events", opts.scale(300, 60)).max(HOT_KEYS),
        }
    }

    /// The exact configuration `service_load --smoke --jobs N` runs with
    /// (used by the determinism regression test).
    pub fn smoke(jobs: usize) -> Self {
        let opts = BenchOpts::smoke_with_jobs(jobs);
        Params { opts, requests: 40, nodes: opts.nodes(300), events: 60 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Profile {
    Burst,
    Sustained,
    Chaos,
}

impl Profile {
    fn label(self) -> &'static str {
        match self {
            Profile::Burst => "burst",
            Profile::Sustained => "sustained",
            Profile::Chaos => "chaos",
        }
    }

    fn index(self) -> usize {
        match self {
            Profile::Burst => 0,
            Profile::Sustained => 1,
            Profile::Chaos => 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SystemKind {
    Pool,
    Dim,
    Ght,
}

impl SystemKind {
    fn label(self) -> &'static str {
        match self {
            SystemKind::Pool => "pool",
            SystemKind::Dim => "dim",
            SystemKind::Ght => "ght",
        }
    }
}

/// Everything one profile shares across its three system arms: the
/// topology, the preload, the range and key-value schedules (identical
/// arrival processes), and the chaos victims.
struct ProfileSetup {
    topology: Topology,
    field: Rect,
    seed: u64,
    preload_range: Vec<Request>,
    preload_kv: Vec<Request>,
    schedule_range: Vec<ScheduledRequest>,
    schedule_kv: Vec<ScheduledRequest>,
    victims: Vec<NodeId>,
    horizon: f64,
}

fn connected_topology(nodes: usize, mut seed: u64) -> (Topology, Rect) {
    loop {
        let dep = Deployment::paper_setting(nodes, 40.0, 20.0, seed)
            .expect("valid deployment parameters");
        let topo = Topology::build(dep.nodes(), 40.0).expect("valid topology parameters");
        if topo.is_connected() {
            return (topo, dep.field());
        }
        seed = seed.wrapping_add(0x1000);
    }
}

fn setup_profile(params: &Params, profile: Profile) -> ProfileSetup {
    let seed = derive_seed(SEED, profile.index() as u64);
    let (topology, field) =
        connected_topology(params.nodes, derive_seed(SEED, 100 + profile.index() as u64));
    let n = topology.len() as u32;
    let mut rng = StdRng::seed_from_u64(seed);

    // A small gateway set: realistic (few egress points) and the
    // precondition for coalescing (merges require a shared sink).
    let gateways: Vec<NodeId> = (0..4).map(|_| NodeId(rng.gen_range(0..n))).collect();

    // Hot query templates; bursts replay one template with small jitter.
    let templates: Vec<Vec<(f64, f64)>> = (0..3)
        .map(|_| {
            (0..POOL_DIMS)
                .map(|_| {
                    let c = rng.gen_range(0.25..0.75);
                    (c - 0.12, c + 0.12)
                })
                .collect()
        })
        .collect();

    let mut preload_range = Vec::with_capacity(params.events);
    let mut preload_kv = Vec::with_capacity(params.events);
    for i in 0..params.events {
        let source = NodeId(rng.gen_range(0..n));
        let values: Vec<f64> = (0..POOL_DIMS).map(|_| rng.gen_range(0.0..1.0)).collect();
        preload_range.push(Request::Insert { source, event: Event::new(values).unwrap() });
        preload_kv.push(Request::Put {
            source,
            key: format!("key-{}", i % HOT_KEYS),
            value: i as u64,
        });
    }

    let mut schedule_range = Vec::with_capacity(params.requests);
    let mut schedule_kv = Vec::with_capacity(params.requests);
    for i in 0..params.requests {
        let arrival = match profile {
            // Tight same-template bursts of 8, each inside one admission
            // window (bursts start on multiples of 0.4 = 8 windows).
            Profile::Burst => (i / 8) as f64 * 0.4 + (i % 8) as f64 * 0.004,
            Profile::Sustained | Profile::Chaos => i as f64 * 0.03,
        };
        if i % 5 == 4 {
            // A write: always travels alone through admission.
            let source = NodeId(rng.gen_range(0..n));
            let values: Vec<f64> = (0..POOL_DIMS).map(|_| rng.gen_range(0.0..1.0)).collect();
            schedule_range.push(ScheduledRequest {
                arrival,
                request: Request::Insert { source, event: Event::new(values).unwrap() },
            });
            schedule_kv.push(ScheduledRequest {
                arrival,
                request: Request::Put {
                    source,
                    key: format!("key-{}", rng.gen_range(0..HOT_KEYS)),
                    value: i as u64,
                },
            });
        } else {
            let t = match profile {
                Profile::Burst => (i / 8) % templates.len(),
                Profile::Sustained | Profile::Chaos => rng.gen_range(0..templates.len()),
            };
            let sink = gateways[t % gateways.len()];
            let ranges: Vec<(f64, f64)> = templates[t]
                .iter()
                .map(|&(lo, hi)| (lo + rng.gen_range(-0.03..0.03), hi + rng.gen_range(-0.03..0.03)))
                .collect();
            schedule_range.push(ScheduledRequest {
                arrival,
                request: Request::Query { sink, query: RangeQuery::exact(ranges).unwrap() },
            });
            schedule_kv.push(ScheduledRequest {
                arrival,
                request: Request::Get { sink, key: format!("key-{}", rng.gen_range(0..HOT_KEYS)) },
            });
        }
    }
    let horizon = schedule_range.last().map_or(0.0, |sr| sr.arrival);

    // Chaos victims: a deterministic stride across the id space, steered
    // off the gateways (a dead sink measures nothing but its own death).
    let mut victims = Vec::new();
    if profile == Profile::Chaos {
        for f in [1u32, 3, 5, 7] {
            let mut id = n * f / 8;
            while gateways.contains(&NodeId(id)) || victims.contains(&NodeId(id)) {
                id = (id + 1) % n;
            }
            victims.push(NodeId(id));
        }
    }

    ProfileSetup {
        topology,
        field,
        seed,
        preload_range,
        preload_kv,
        schedule_range,
        schedule_kv,
        victims,
        horizon,
    }
}

/// Serially preloads state through [`ServiceHandle::submit`]; preloads
/// run on perfect links before any fault window, so every one must land.
fn preload<B: ServiceBackend>(handle: &ServiceHandle<B>, requests: &[Request]) {
    for request in requests {
        let response = handle.submit(request);
        assert!(response.delivered, "preload {request:?} did not land");
    }
}

/// The latest shard-clock position — where the next serve call's base
/// time will sit after a preload.
fn base_time<B: ServiceBackend>(handle: &ServiceHandle<B>) -> f64 {
    (0..handle.shard_count())
        .map(|s| handle.with_shard(s, |shard| handle.backend().now(shard)))
        .fold(0.0, f64::max)
}

/// Runs one system's coalesced and ablation arms on freshly built
/// deployments. `build` constructs the handle under an optional fault
/// plan; for the chaos profile a scout build (empty plan) measures where
/// the preload ends so the crash lands 40% into the measured window.
fn measure_system<B, F>(
    build: F,
    preload_ops: &[Request],
    schedule: &[ScheduledRequest],
    victims: &[NodeId],
    horizon: f64,
    jobs: usize,
) -> (ServeOutcome, ServeOutcome)
where
    B: ServiceBackend,
    F: Fn(Option<FaultPlan>) -> ServiceHandle<B>,
{
    let plan = if victims.is_empty() {
        None
    } else {
        let scout = build(Some(FaultPlan::new()));
        preload(&scout, preload_ops);
        let at = base_time(&scout) + 0.4 * horizon;
        Some(
            victims
                .iter()
                .fold(FaultPlan::new(), |plan, &node| plan.with(Fault::Crash { node, at })),
        )
    };
    let coalesced = {
        let handle = build(plan.clone());
        preload(&handle, preload_ops);
        handle.serve(schedule, &AdmissionConfig::default(), jobs)
    };
    let ablation = {
        let handle = build(plan);
        preload(&handle, preload_ops);
        handle.serve(schedule, &AdmissionConfig::no_coalescing(), jobs)
    };
    (coalesced, ablation)
}

/// One emitted row: a system under one profile, both admission arms.
struct ArmRow {
    profile: &'static str,
    system: &'static str,
    requests: usize,
    reqps: f64,
    p50_ms: f64,
    p99_ms: f64,
    messages: u64,
    completeness: f64,
    coalesced: usize,
    nc_reqps: f64,
    nc_p50_ms: f64,
    nc_p99_ms: f64,
    nc_messages: u64,
}

fn run_arm(params: &Params, profile: Profile, system: SystemKind) -> ArmRow {
    let setup = setup_profile(params, profile);
    let jobs = params.opts.jobs;
    let recovery = (!setup.victims.is_empty()).then(RecoveryConfig::default);
    let op_retry = (!setup.victims.is_empty()).then(|| OpRetryPolicy::detouring(2));

    let (coalesced, ablation) = match system {
        SystemKind::Pool => {
            let base_config = PoolConfig::paper().with_dims(POOL_DIMS).with_seed(setup.seed);
            measure_system(
                |plan| {
                    let mut config = base_config.clone();
                    if let Some(plan) = plan {
                        config = config.with_faults(plan).with_recovery(recovery.unwrap());
                        config = config.with_op_retry(op_retry.unwrap());
                    }
                    let (backend, shards) =
                        PoolBackend::build(setup.topology.clone(), setup.field, config, POOL_DIMS)
                            .expect("pool backend builds");
                    ServiceHandle::new(backend, shards)
                },
                &setup.preload_range,
                &setup.schedule_range,
                &setup.victims,
                setup.horizon,
                jobs,
            )
        }
        SystemKind::Dim => measure_system(
            |plan| {
                let (backend, shards) = DimBackend::build(
                    setup.topology.clone(),
                    setup.field,
                    POOL_DIMS,
                    TransportKind::Gpsr,
                    None,
                    plan,
                    recovery,
                    op_retry,
                    DIM_SHARDS,
                )
                .expect("dim backend builds");
                ServiceHandle::new(backend, shards)
            },
            &setup.preload_range,
            &setup.schedule_range,
            &setup.victims,
            setup.horizon,
            jobs,
        ),
        SystemKind::Ght => measure_system(
            |plan| {
                let (backend, shards) = GhtBackend::build(
                    setup.topology.clone(),
                    TransportKind::Gpsr,
                    None,
                    plan,
                    recovery,
                    op_retry,
                    GHT_SHARDS,
                );
                ServiceHandle::new(backend, shards)
            },
            &setup.preload_kv,
            &setup.schedule_kv,
            &setup.victims,
            setup.horizon,
            jobs,
        ),
    };

    assert_eq!(coalesced.responses.len(), params.requests);
    assert_eq!(ablation.responses.len(), params.requests);
    assert_eq!(
        ablation.units, params.requests,
        "the ablation arm must execute every request alone"
    );
    if profile != Profile::Chaos {
        // Perfect links, every node alive: the service must answer
        // everything it was asked, coalesced or not.
        assert!(
            (coalesced.mean_completeness() - 1.0).abs() < 1e-12,
            "{} {}: incomplete answers without faults",
            profile.label(),
            system.label()
        );
        assert!((ablation.mean_completeness() - 1.0).abs() < 1e-12);
    }

    ArmRow {
        profile: profile.label(),
        system: system.label(),
        requests: params.requests,
        reqps: coalesced.requests_per_second(),
        p50_ms: coalesced.latency_quantile(0.5) * 1e3,
        p99_ms: coalesced.latency_quantile(0.99) * 1e3,
        messages: coalesced.total_messages,
        completeness: coalesced.mean_completeness(),
        coalesced: coalesced.coalesced_requests,
        nc_reqps: ablation.requests_per_second(),
        nc_p50_ms: ablation.latency_quantile(0.5) * 1e3,
        nc_p99_ms: ablation.latency_quantile(0.99) * 1e3,
        nc_messages: ablation.total_messages,
    }
}

/// Runs the full profile × system grid and returns the artifact table.
/// Deterministic for any `params.opts.jobs` (DESIGN.md §11).
pub fn collect(params: &Params) -> Table {
    let arms: Vec<(Profile, SystemKind)> = [Profile::Burst, Profile::Sustained, Profile::Chaos]
        .into_iter()
        .flat_map(|p| [SystemKind::Pool, SystemKind::Dim, SystemKind::Ght].map(|s| (p, s)))
        .collect();
    let rows =
        run_trials(params.opts.jobs, arms, |_, (profile, system)| run_arm(params, profile, system));

    let mut table = Table::new(
        "Service load: sharded front end under burst / sustained / chaos, coalescing ablation",
        &[
            "profile",
            "system",
            "requests",
            "reqps",
            "p50_ms",
            "p99_ms",
            "messages",
            "completeness",
            "coalesced",
            "nc_reqps",
            "nc_p50_ms",
            "nc_p99_ms",
            "nc_messages",
        ],
    );
    table.meta("nodes", params.nodes);
    table.meta("requests", params.requests);
    table.meta("events", params.events);
    table.meta("pool_shards", POOL_DIMS);
    table.meta("dim_shards", DIM_SHARDS);
    table.meta("ght_shards", GHT_SHARDS);
    for row in &rows {
        table.row(vec![
            row.profile.into(),
            row.system.into(),
            row.requests.into(),
            row.reqps.into(),
            row.p50_ms.into(),
            row.p99_ms.into(),
            row.messages.into(),
            row.completeness.into(),
            row.coalesced.into(),
            row.nc_reqps.into(),
            row.nc_p50_ms.into(),
            row.nc_p99_ms.into(),
            row.nc_messages.into(),
        ]);
    }

    // The tentpole claims, checked on every run: bursts must actually
    // coalesce, and sharing a burst's delivery must not cost more
    // messages than delivering its members separately.
    for row in rows.iter().filter(|r| r.profile == "burst") {
        assert!(row.coalesced > 0, "burst {}: nothing coalesced", row.system);
        assert!(
            row.messages <= row.nc_messages,
            "burst {}: coalescing cost more messages ({} > {})",
            row.system,
            row.messages,
            row.nc_messages
        );
    }
    table
}
