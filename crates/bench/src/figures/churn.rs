//! Churn-resilience driver: query completeness, repair traffic, and query
//! latency for Pool, DIM, and GHT under continuous deployment churn.
//!
//! Each churn level is one independent trial: a fresh deployment loaded
//! with the same workload into all three systems, then advanced through
//! epochs of joins, deaths, and waypoint moves drawn by one shared
//! [`ChurnPlanner`] — all three systems see the *identical* plan on the
//! *identical* evolving topology, so their numbers are directly
//! comparable. After every epoch a batch of mid-churn range queries (Pool
//! and DIM) and key lookups (GHT) runs from sinks in the largest surviving
//! component; completeness is measured against the originally loaded data,
//! so events lost to dead nodes, still parked in a deferred-repair queue,
//! or stranded behind a partition all honestly lower the score.
//!
//! Repair is budgeted: every system gets the same per-epoch message
//! allowance, and the trial asserts (loss-free radio: the bound is strict)
//! that no epoch ever exceeds it — the acceptance pin for incremental
//! repair. Pool runs with one-backup replication, which is the interesting
//! comparison: DIM and plain GHT lose whatever a dead node held, while
//! Pool can heal from backups if the budget lets it.
//!
//! The zero-churn control level doubles as a regression guard: with no
//! joins, deaths, or moves, all three systems must report completeness
//! exactly 1.0.

use crate::cli::{arg_usize, BenchOpts};
use crate::exec::{derive_seed, run_trials};
use crate::harness::{QueryKind, Scenario, SystemPair};
use crate::report::Table;
use pool_core::config::PoolConfig;
use pool_core::dynamics::{ChurnConfig, ChurnPlanner, RepairQueue};
use pool_core::event::Event;
use pool_core::failure::FailureReport;
use pool_dim::churn::DimRepairQueue;
use pool_ght::churn::{GhtChurnReport, GhtRepairQueue};
use pool_ght::table::GhtTable;
use pool_gpsr::Planarization;
use pool_netsim::node::NodeId;
use pool_netsim::stats::Summary;
use pool_transport::TransportKind;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base seed for the churn trials' derived streams.
const BASE_SEED: u64 = 87_341;

/// The binary's parameter surface (CLI flags + smoke scaling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Engine options (`--jobs`, `--smoke`).
    pub opts: BenchOpts,
    /// Network size at deployment time.
    pub nodes: usize,
    /// Churn epochs per level.
    pub epochs: usize,
    /// Range queries per system per epoch.
    pub queries: usize,
    /// Keys loaded into the GHT.
    pub keys: usize,
    /// Key lookups per epoch.
    pub gets: usize,
    /// Per-epoch repair message budget (shared by all three systems).
    pub budget: u64,
}

impl Params {
    /// Parses the binary's CLI: explicit flags override smoke defaults.
    pub fn from_env() -> Self {
        let opts = BenchOpts::from_env();
        let keys = arg_usize("--keys", opts.scale(240, 60)).max(1);
        Params {
            opts,
            nodes: arg_usize("--nodes", opts.nodes(600)),
            epochs: arg_usize("--epochs", opts.scale(8, 3)).max(1),
            queries: arg_usize("--queries", opts.scale(10, 3)).max(1),
            keys,
            gets: arg_usize("--gets", opts.scale(40, 10)).clamp(1, keys),
            budget: arg_usize("--budget", 150) as u64,
        }
    }

    /// The exact configuration `churn_resilience --smoke --jobs N` runs
    /// with (used by the determinism regression test).
    pub fn smoke(jobs: usize) -> Self {
        let opts = BenchOpts::smoke_with_jobs(jobs);
        let keys = opts.scale(240, 60).max(1);
        Params {
            opts,
            nodes: opts.nodes(600),
            epochs: opts.scale(8, 3).max(1),
            queries: opts.scale(10, 3).max(1),
            keys,
            gets: opts.scale(40, 10).clamp(1, keys),
            budget: 150,
        }
    }
}

/// The swept churn levels: per-epoch (joins, deaths, moves) rates.
const LEVELS: [(&str, (usize, usize, usize)); 4] = [
    ("none (0/0/0)", (0, 0, 0)),
    ("low (1/1/1)", (1, 1, 1)),
    ("medium (2/3/3)", (2, 3, 3)),
    ("high (4/8/6)", (4, 8, 6)),
];

/// One system's aggregate outcome across a level's epochs.
struct SystemRow {
    system: &'static str,
    completeness: f64,
    repair_messages: u64,
    deferred: u64,
    events_lost: usize,
    latency: Summary,
}

struct LevelResult {
    label: &'static str,
    rows: Vec<SystemRow>,
}

/// Mid-churn latencies can be an empty sample set when every query in a
/// level failed to route (extreme partition); summarize as zeros rather
/// than panicking so the artifact stays honest about the degraded run.
fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        Summary::of(&[0.0])
    } else {
        Summary::of(samples)
    }
}

fn run_level(
    params: &Params,
    index: usize,
    label: &'static str,
    rates: (usize, usize, usize),
) -> LevelResult {
    let seed = derive_seed(BASE_SEED, index as u64);
    let scenario = Scenario::paper(params.nodes, seed);
    let config = PoolConfig::paper().with_replication();
    let mut pair = SystemPair::build(&scenario, config, EventDistribution::Uniform);
    let dims = pair.pool.config().dims;

    // Everything ever loaded, for honest completeness: lost, deferred, and
    // partition-stranded events all count against the systems.
    let original: Vec<Event> = pair
        .pool
        .store()
        .iter()
        .flat_map(|(_, stored)| stored.iter().map(|s| s.event.clone()))
        .collect();

    // GHT rides its own copy of the same deployment (it is externally
    // driven: the table owns only storage).
    let mut ght_topology = pair.pool.topology().clone();
    let mut ght_transport = TransportKind::Gpsr.build(&ght_topology, Planarization::Gabriel);
    let mut ght: GhtTable<u64> = GhtTable::new(&ght_topology);
    let n = ght_topology.len() as u32;
    for i in 0..params.keys {
        let from = NodeId((i as u32).wrapping_mul(37) % n);
        ght.put(&ght_topology, ght_transport.as_mut(), from, &format!("evt-{i}"), i as u64)
            .expect("ght put on the pristine network");
    }

    let (joins, deaths, moves) = rates;
    let mut planner = ChurnPlanner::new(ChurnConfig::new(seed).with_rates(joins, deaths, moves));
    let mut pool_queue = RepairQueue::default();
    let mut dim_queue = DimRepairQueue::default();
    let mut ght_queue: GhtRepairQueue<u64> = GhtRepairQueue::default();
    let mut pool_report = FailureReport::default();
    let mut dim_report = FailureReport::default();
    let mut ght_report = GhtChurnReport::default();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51_4B);
    let kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 });

    let mut pool_comp = Vec::new();
    let mut dim_comp = Vec::new();
    let mut ght_comp = Vec::new();
    let mut pool_lat = Vec::new();
    let mut dim_lat = Vec::new();
    let mut ght_lat = Vec::new();

    for epoch in 0..params.epochs {
        let plan = planner.plan(pair.pool.topology(), pair.pool.field());
        let p = pair.pool.apply_epoch(&plan, &mut pool_queue, params.budget).expect("pool epoch");
        let d = pair.dim.apply_epoch(&plan, &mut dim_queue, params.budget).expect("dim epoch");
        let g = ght.apply_epoch(
            &mut ght_topology,
            ght_transport.as_mut(),
            &plan.joins,
            &plan.deaths,
            &plan.moves,
            &mut ght_queue,
            params.budget,
        );
        // The acceptance pin: per-epoch repair traffic never exceeds the
        // budget (strict on the loss-free radio).
        for (system, spent) in
            [("pool", p.repair_messages), ("dim", d.repair_messages), ("ght", g.repair_messages)]
        {
            assert!(
                spent <= params.budget,
                "{label} epoch {epoch}: {system} spent {spent} > budget {}",
                params.budget
            );
        }
        // All three systems applied the same plan: they stay in lockstep.
        assert_eq!(ght_topology.len(), pair.pool.topology().len());
        pool_report = pool_report.merge(&p);
        dim_report = dim_report.merge(&d);
        ght_report = ght_report.merge(&g);

        // Mid-churn measurement round from sinks that can still talk to
        // the bulk of the network.
        let members = pair.pool.topology().largest_component_members();
        for _ in 0..params.queries {
            let sink = members[rng.gen_range(0..members.len())];
            let query = kind.generate(&mut rng, dims);
            let truth = original.iter().filter(|e| query.matches(e)).count();
            let score = |got: usize| if truth == 0 { 1.0 } else { got as f64 / truth as f64 };
            match pair.pool.query_from(sink, &query) {
                Ok(r) => {
                    pool_comp.push(score(r.events.len()));
                    pool_lat.push(r.cost.elapsed * 1e3);
                }
                Err(_) => pool_comp.push(0.0),
            }
            match pair.dim.query_from(sink, &query) {
                Ok(r) => {
                    dim_comp.push(score(r.events.len()));
                    dim_lat.push(r.cost.elapsed * 1e3);
                }
                Err(_) => dim_comp.push(0.0),
            }
        }
        for _ in 0..params.gets {
            let sink = members[rng.gen_range(0..members.len())];
            let key = rng.gen_range(0..params.keys);
            match ght.get(&ght_topology, ght_transport.as_mut(), sink, &format!("evt-{key}")) {
                Ok((values, receipt)) => {
                    ght_comp.push(f64::from(!values.is_empty()));
                    ght_lat.push(receipt.elapsed * 1e3);
                }
                Err(_) => ght_comp.push(0.0),
            }
        }
    }

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    LevelResult {
        label,
        rows: vec![
            SystemRow {
                system: "pool",
                completeness: mean(&pool_comp),
                repair_messages: pool_report.repair_messages,
                deferred: pool_report.deferred_repairs,
                events_lost: pool_report.events_lost,
                latency: summarize(&pool_lat),
            },
            SystemRow {
                system: "dim",
                completeness: mean(&dim_comp),
                repair_messages: dim_report.repair_messages,
                deferred: dim_report.deferred_repairs,
                events_lost: dim_report.events_lost,
                latency: summarize(&dim_lat),
            },
            SystemRow {
                system: "ght",
                completeness: mean(&ght_comp),
                repair_messages: ght_report.repair_messages,
                deferred: ght_report.deferred_repairs,
                events_lost: ght_report.values_lost,
                latency: summarize(&ght_lat),
            },
        ],
    }
}

/// Runs the churn levels on `params.opts.jobs` workers and aggregates the
/// deterministic table.
///
/// # Panics
///
/// Panics if a regression guard trips: per-epoch repair traffic exceeding
/// the budget on any system, a completeness score outside `[0, 1]`, or
/// the zero-churn control failing to score exactly 1.0 everywhere.
pub fn collect(params: &Params) -> Table {
    let levels: Vec<(usize, &'static str, (usize, usize, usize))> =
        LEVELS.iter().enumerate().map(|(i, &(label, rates))| (i, label, rates)).collect();
    let results = run_trials(params.opts.jobs, levels, |_, (index, label, rates)| {
        run_level(params, index, label, rates)
    });

    let mut table = Table::new(
        "Churn resilience: completeness, repair traffic, and latency vs churn rate",
        &[
            "churn",
            "system",
            "completeness",
            "repair_msgs",
            "deferred",
            "events_lost",
            "p50_ms",
            "p99_ms",
        ],
    );
    table.meta("nodes", params.nodes);
    table.meta("epochs", params.epochs);
    table.meta("queries_per_epoch", params.queries);
    table.meta("ght_keys", params.keys);
    table.meta("repair_budget", params.budget as usize);
    for level in &results {
        for row in &level.rows {
            table.row(vec![
                level.label.into(),
                row.system.into(),
                row.completeness.into(),
                row.repair_messages.into(),
                row.deferred.into(),
                row.events_lost.into(),
                row.latency.median.into(),
                row.latency.p99.into(),
            ]);
        }
    }

    // Regression guards. Completeness is a fraction of ground truth — a
    // value above 1 means a system fabricated results.
    for level in &results {
        for row in &level.rows {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&row.completeness),
                "{} on {}: completeness {} out of range",
                row.system,
                level.label,
                row.completeness
            );
        }
    }
    // The zero-churn control: with nothing changing, nothing may degrade.
    for row in &results[0].rows {
        assert!(
            (row.completeness - 1.0).abs() < 1e-12,
            "{} lost data without churn (completeness {})",
            row.system,
            row.completeness
        );
        assert_eq!(row.events_lost, 0, "{} lost events without churn", row.system);
    }
    table
}
