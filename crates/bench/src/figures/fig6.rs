//! Figure 6 driver: exact-match query cost vs network size, plus the
//! routing-substrate ablation.
//!
//! Every (panel, network-size) point and each ablation substrate is an
//! independent trial submitted to the execution engine, so the whole
//! figure parallelizes across `--jobs` workers. Seeds are the same ones
//! the serial loops always used (`42 + nodes`), each trial owns its
//! deployment and RNG streams, and rows are aggregated by submission
//! index — the emitted JSON is byte-identical for any worker count.
//!
//! Wall-clock numbers from the ablation (the route-memo speedup) are
//! inherently non-deterministic, so they are returned separately and go
//! to stdout only, never into the JSON artifact.

use crate::cli::{arg_transport, arg_usize, BenchOpts};
use crate::exec::run_trials;
use crate::harness::{measure, QueryKind, Scenario, SystemPair};
use crate::report::Table;
use pool_core::config::PoolConfig;
use pool_netsim::node::NodeId;
use pool_transport::TransportKind;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;
use std::time::Instant;

/// The figure's full parameter surface (CLI flags + smoke scaling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Engine options (`--jobs`, `--smoke`).
    pub opts: BenchOpts,
    /// Queries per measurement point.
    pub queries: usize,
    /// Replay rounds per timed ablation trial.
    pub rounds: usize,
    /// Network size of the substrate ablation.
    pub ablation_nodes: usize,
    /// Routing substrate for the panel measurements.
    pub transport: TransportKind,
}

impl Params {
    /// Parses the binary's CLI: explicit flags override smoke defaults.
    pub fn from_env() -> Self {
        let opts = BenchOpts::from_env();
        Params {
            opts,
            queries: arg_usize("--queries", opts.queries(100)),
            rounds: arg_usize("--rounds", opts.scale(20, 2)),
            ablation_nodes: arg_usize("--ablation-nodes", opts.nodes(1200)),
            transport: arg_transport("--transport", TransportKind::Gpsr),
        }
    }

    /// The exact configuration `fig6 --smoke --jobs N` runs with (used by
    /// the determinism regression test).
    pub fn smoke(jobs: usize) -> Self {
        let opts = BenchOpts::smoke_with_jobs(jobs);
        Params {
            opts,
            queries: opts.queries(100),
            rounds: opts.scale(20, 2),
            ablation_nodes: opts.nodes(1200),
            transport: TransportKind::Gpsr,
        }
    }
}

/// What [`collect`] produces: the deterministic table plus the
/// non-deterministic wall-clock lines for stdout.
#[derive(Debug)]
pub struct Fig6Report {
    /// Panel measurements + ablation message totals; fully deterministic.
    pub table: Table,
    /// Human-readable timing summary (varies run to run).
    pub timing_lines: Vec<String>,
    /// The measured GPSR/cached wall-clock ratio (> 1 when the memo wins).
    pub cached_speedup: f64,
}

/// One trial of the figure: either a (panel, size) measurement point or
/// one substrate's leg of the timed ablation.
enum TrialInput {
    Panel { panel: char, dist: RangeSizeDistribution, label: &'static str, nodes: usize },
    Ablation { kind: TransportKind },
}

enum TrialOutput {
    Panel {
        panel: char,
        label: &'static str,
        nodes: usize,
        // Boxed: Measurement carries four Summary blocks and dwarfs the
        // ablation variant.
        measurement: Box<crate::harness::Measurement>,
    },
    Ablation {
        kind: TransportKind,
        pool_messages: u64,
        dim_messages: u64,
        elapsed_secs: f64,
    },
}

/// Runs one substrate's ablation leg: build the pair, replay a fixed
/// query set `rounds` times, and keep the best of five timed trials.
///
/// Sinks and queries are drawn from the trial's own pair RNG; both
/// substrates' pairs are built from the same scenario and so carry
/// identical RNG streams, guaranteeing identical workloads without any
/// cross-trial sharing.
fn run_ablation_leg(
    kind: TransportKind,
    nodes: usize,
    queries: usize,
    rounds: usize,
) -> TrialOutput {
    let scenario = Scenario::paper(nodes, 42 + nodes as u64);
    let config = PoolConfig::paper().with_transport(kind);
    let mut pair = SystemPair::build(&scenario, config, EventDistribution::Uniform);
    let dims = pair.pool.config().dims;

    let query_kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 });
    let sinks: Vec<NodeId> = (0..queries).map(|_| pair.random_node()).collect();
    let query_set: Vec<_> = (0..queries).map(|_| query_kind.generate(pair.rng(), dims)).collect();

    // The timed replay drives the DIM leg: its query cost is almost
    // entirely routing, so it isolates the substrate's contribution.
    // (Pool's query time is dominated by Theorem 3.2 cell resolution,
    // which no routing substrate can touch.) One untimed warm-up pass also
    // runs the Pool leg, so both systems' traffic participates in the
    // cross-substrate totals check, and primes the route memo.
    for (sink, query) in sinks.iter().zip(&query_set) {
        pair.pool.query_from(*sink, query).expect("pool query");
        pair.dim.query_from(*sink, query).expect("dim query");
    }
    let mut elapsed = f64::INFINITY;
    for _trial in 0..5 {
        let start = Instant::now();
        for _ in 0..rounds {
            for (sink, query) in sinks.iter().zip(&query_set) {
                pair.dim.query_from(*sink, query).expect("dim query");
            }
        }
        elapsed = elapsed.min(start.elapsed().as_secs_f64());
    }
    TrialOutput::Ablation {
        kind,
        pool_messages: pair.pool.traffic().total_messages(),
        dim_messages: pair.dim.traffic().total_messages(),
        elapsed_secs: elapsed,
    }
}

/// Runs the full figure on `params.opts.jobs` workers.
///
/// # Panics
///
/// Panics if any trial's cross-validation fails or the two ablation
/// substrates disagree on message totals (the PR 1 equivalence
/// invariant).
pub fn collect(params: &Params) -> Fig6Report {
    let mut inputs = Vec::new();
    // Heaviest trials first: the scheduler pulls in submission order, so
    // leading with the big networks keeps workers busy at the tail.
    // Output order is restored at aggregation time from the trial labels.
    inputs.push(TrialInput::Ablation { kind: TransportKind::Gpsr });
    inputs.push(TrialInput::Ablation { kind: TransportKind::Cached });
    let mut sizes = params.opts.network_sizes();
    sizes.reverse();
    for &nodes in &sizes {
        for (panel, dist, label) in [
            ('a', RangeSizeDistribution::Uniform, "uniform"),
            ('b', RangeSizeDistribution::Exponential { mean: 0.1 }, "exponential"),
        ] {
            inputs.push(TrialInput::Panel { panel, dist, label, nodes });
        }
    }

    let queries = params.queries;
    let (rounds, ablation_nodes, transport) =
        (params.rounds, params.ablation_nodes, params.transport);
    let outputs = run_trials(params.opts.jobs, inputs, |_, input| match input {
        TrialInput::Panel { panel, dist, label, nodes } => {
            let scenario = Scenario::paper(nodes, 42 + nodes as u64);
            let config = PoolConfig::paper().with_transport(transport);
            let mut pair = SystemPair::build(&scenario, config, EventDistribution::Uniform);
            let measurement = Box::new(measure(&mut pair, QueryKind::Exact(dist), queries));
            TrialOutput::Panel { panel, label, nodes, measurement }
        }
        TrialInput::Ablation { kind } => run_ablation_leg(kind, ablation_nodes, queries, rounds),
    });

    // Aggregate: panel rows in (panel, nodes) order, ablation into meta.
    let mut panel_rows: Vec<(char, &'static str, usize, Box<crate::harness::Measurement>)> =
        Vec::new();
    let mut ablation: Vec<(TransportKind, u64, u64, f64)> = Vec::new();
    for output in outputs {
        match output {
            TrialOutput::Panel { panel, label, nodes, measurement } => {
                panel_rows.push((panel, label, nodes, measurement));
            }
            TrialOutput::Ablation { kind, pool_messages, dim_messages, elapsed_secs } => {
                ablation.push((kind, pool_messages, dim_messages, elapsed_secs));
            }
        }
    }
    panel_rows.sort_by_key(|&(panel, _, nodes, _)| (panel, nodes));
    ablation.sort_by_key(|&(kind, ..)| format!("{kind}"));

    let mut columns = vec![
        "panel",
        "range_sizes",
        "nodes",
        "pool_msgs",
        "dim_msgs",
        "dim_over_pool",
        "pool_cells",
        "dim_zones",
    ];
    columns.extend(crate::harness::LATENCY_COLUMNS);
    let mut table = Table::new(
        &format!("Figure 6: exact-match query cost vs network size [{transport}]"),
        &columns,
    );
    table.meta("queries", queries);
    table.meta("transport", format!("{transport}"));
    for (panel, label, nodes, m) in &panel_rows {
        let mut row: Vec<crate::report::Cell> = vec![
            format!("6{panel}").into(),
            (*label).into(),
            (*nodes).into(),
            m.pool.mean.into(),
            m.dim.mean.into(),
            m.dim_over_pool().into(),
            m.pool_cells.into(),
            m.dim_zones.into(),
        ];
        row.extend(m.latency_cells());
        table.row(row);
    }

    let [(_, gpsr_pool, gpsr_dim, gpsr_secs), (_, cached_pool, cached_dim, cached_secs)] =
        [ablation[1], ablation[0]];
    let identical = gpsr_pool == cached_pool && gpsr_dim == cached_dim;
    table.meta("ablation_nodes", ablation_nodes);
    table.meta("ablation_rounds", rounds);
    table.meta("ablation_pool_messages", gpsr_pool);
    table.meta("ablation_dim_messages", gpsr_dim);
    table.meta("ablation_identical_message_totals", identical);
    assert!(
        identical,
        "substrates disagree on message totals: gpsr ({gpsr_pool}, {gpsr_dim}) vs \
         cached ({cached_pool}, {cached_dim})"
    );

    let cached_speedup = gpsr_secs / cached_secs;
    let timing_lines = vec![
        format!(
            "# Routing-substrate ablation ({ablation_nodes} nodes, {queries} queries x {rounds} \
             rounds, DIM leg)"
        ),
        format!("gpsr:   {gpsr_secs:.4}s"),
        format!("cached: {cached_secs:.4}s"),
        format!("cached speedup: {cached_speedup:.2}x (wall-clock; not part of the artifact)"),
    ];
    Fig6Report { table, timing_lines, cached_speedup }
}
