//! Deterministic result tables: TSV for the terminal, JSON for artifacts.
//!
//! Every figure binary aggregates its trial results into a [`Table`] and
//! emits it twice — as the tab-separated listing the binaries have always
//! printed, and as a `BENCH_<name>.json` artifact. Formatting is fully
//! deterministic (fixed float precision, stable key order, no timestamps),
//! so a table built from the same trial results is byte-identical no
//! matter how many workers produced them — the property the determinism
//! regression test pins across `--jobs` values.
//!
//! Wall-clock timings are deliberately *not* representable here: they vary
//! run to run, so they go to stdout only, never into a JSON artifact.

use std::fmt::Write as _;

/// One table cell. Construction is via `From`, so rows read as plain data:
/// `[600.into(), 12.5.into(), "pool".into()]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// An exact count.
    Int(u64),
    /// A measured quantity; serialized with fixed 4-decimal precision.
    Num(f64),
    /// A label.
    Str(String),
    /// A yes/no regression indicator.
    Bool(bool),
}

impl Cell {
    /// The cell's JSON encoding.
    fn json(&self) -> String {
        match self {
            Cell::Int(v) => v.to_string(),
            Cell::Num(v) => format!("{v:.4}"),
            Cell::Str(s) => format!("\"{}\"", escape(s)),
            Cell::Bool(b) => b.to_string(),
        }
    }

    /// The cell's terminal encoding (TSV column).
    fn tsv(&self) -> String {
        match self {
            Cell::Int(v) => v.to_string(),
            Cell::Num(v) => format!("{v:.3}"),
            Cell::Str(s) => s.clone(),
            Cell::Bool(b) => b.to_string(),
        }
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as u64)
    }
}

impl From<u32> for Cell {
    fn from(v: u32) -> Self {
        Cell::Int(v as u64)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Str(v.to_owned())
    }
}

impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Str(v)
    }
}

impl From<bool> for Cell {
    fn from(v: bool) -> Self {
        Cell::Bool(v)
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            '\t' => "\\t".chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// An ordered, typed result table for one figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    meta: Vec<(String, Cell)>,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// An empty table with the given figure title and column names.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            meta: Vec::new(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Attaches a scalar experiment parameter (network size, query count…)
    /// serialized under a top-level `"meta"` object.
    pub fn meta(&mut self, key: &str, value: impl Into<Cell>) -> &mut Self {
        self.meta.push((key.to_owned(), value.into()));
        self
    }

    /// Appends one result row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the column count.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row width != column count");
        self.rows.push(cells);
        self
    }

    /// Prints the table to stdout in the binaries' traditional TSV shape.
    pub fn print_tsv(&self) {
        println!("\n# {}", self.title);
        println!("{}", self.columns.join("\t"));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::tsv).collect();
            println!("{}", cells.join("\t"));
        }
    }

    /// The table's canonical JSON encoding: stable key order, fixed float
    /// precision, one row object per line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"figure\": \"{}\",", escape(&self.title));
        out.push_str("  \"meta\": {");
        let meta: Vec<String> =
            self.meta.iter().map(|(k, v)| format!("\"{}\": {}", escape(k), v.json())).collect();
        out.push_str(&meta.join(", "));
        out.push_str("},\n");
        let cols: Vec<String> = self.columns.iter().map(|c| format!("\"{}\"", escape(c))).collect();
        let _ = writeln!(out, "  \"columns\": [{}],", cols.join(", "));
        out.push_str("  \"rows\": [\n");
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let fields: Vec<String> = self
                    .columns
                    .iter()
                    .zip(row)
                    .map(|(c, v)| format!("\"{}\": {}", escape(c), v.json()))
                    .collect();
                format!("    {{{}}}", fields.join(", "))
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("unit \"test\" figure", &["nodes", "mean", "system", "ok"]);
        t.meta("queries", 100usize);
        t.row(vec![300usize.into(), 12.34567.into(), "pool".into(), true.into()]);
        t.row(vec![600usize.into(), 0.1.into(), "dim".into(), false.into()]);
        t
    }

    #[test]
    fn json_is_stable_and_parseable_shape() {
        let json = sample().to_json();
        assert_eq!(json, sample().to_json());
        assert!(json.contains("\"figure\": \"unit \\\"test\\\" figure\""));
        assert!(json.contains("\"meta\": {\"queries\": 100}"));
        assert!(json
            .contains("{\"nodes\": 300, \"mean\": 12.3457, \"system\": \"pool\", \"ok\": true}"));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser dependency.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close}");
        }
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        Table::new("t", &["a", "b"]).row(vec![1usize.into()]);
    }
}
