//! The shared experiment harness driving Pool and DIM side by side.
//!
//! Every figure binary follows the same shape: build one deployment, load
//! the *same* events into both systems, issue the *same* queries from the
//! same sinks, and record each system's per-query message cost. Result-set
//! equality between the two systems (and against brute force) is asserted
//! on every query, so each benchmark run doubles as a correctness audit.

use pool_core::config::PoolConfig;
use pool_core::event::Event;
use pool_core::insert::InsertError;
use pool_core::query::RangeQuery;
use pool_core::system::PoolSystem;
use pool_dim::system::DimSystem;
use pool_netsim::deployment::Deployment;
use pool_netsim::node::NodeId;
use pool_netsim::stats::Summary;
use pool_netsim::topology::Topology;
use pool_workloads::events::{EventDistribution, EventGenerator};
use pool_workloads::queries::{
    exact_query, partial_query, partial_query_at, RangeSizeDistribution,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One experimental deployment, parameterized like §5.1.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Number of sensor nodes.
    pub nodes: usize,
    /// Base RNG seed (deployment, events, queries all derive from it).
    pub seed: u64,
    /// Event dimensionality `k`.
    pub dims: usize,
    /// Events generated per node (the paper: 3).
    pub events_per_node: usize,
    /// Radio range in meters (the paper: 40).
    pub radio_range: f64,
    /// Target mean neighborhood size (the paper: 20).
    pub avg_neighbors: f64,
}

impl Scenario {
    /// The paper's §5.1 configuration at the given network size.
    pub fn paper(nodes: usize, seed: u64) -> Self {
        Scenario {
            nodes,
            seed,
            dims: 3,
            events_per_node: 3,
            radio_range: 40.0,
            avg_neighbors: 20.0,
        }
    }
}

/// A Pool and a DIM deployment over the *same* network holding the *same*
/// events.
pub struct SystemPair {
    /// The Pool system under test.
    pub pool: PoolSystem,
    /// The DIM baseline.
    pub dim: DimSystem,
    /// Insertions attempted per system while loading the workload.
    pub inserts_attempted: u64,
    /// Pool insertions dropped as undeliverable (0 on a loss-free radio).
    pub pool_insert_drops: u64,
    /// DIM insertions dropped as undeliverable (0 on a loss-free radio).
    pub dim_insert_drops: u64,
    rng: StdRng,
}

impl SystemPair {
    /// Builds the pair and loads the event workload into both systems.
    ///
    /// # Panics
    ///
    /// Panics if no connected deployment is found after many retries, or if
    /// system construction fails.
    pub fn build(scenario: &Scenario, config: PoolConfig, events: EventDistribution) -> Self {
        let mut seed = scenario.seed;
        let (topology, field) = loop {
            let dep = Deployment::paper_setting(
                scenario.nodes,
                scenario.radio_range,
                scenario.avg_neighbors,
                seed,
            )
            .expect("valid deployment parameters");
            let topo = Topology::build(dep.nodes(), scenario.radio_range)
                .expect("valid topology parameters");
            if topo.is_connected() {
                break (topo, dep.field());
            }
            seed = seed.wrapping_add(0x1000);
        };
        let config = config.with_dims(scenario.dims).with_seed(scenario.seed);
        // Both systems ride the same routing substrate — and the same lossy
        // link layer, when configured — so the comparison (and the route
        // cache, when selected) is apples to apples.
        let transport = config.transport;
        let lossy = config.lossy;
        let faults = config.faults.clone();
        let recovery = config.recovery;
        let op_retry = config.op_retry;
        let mut pool = PoolSystem::build(topology.clone(), field, config).expect("pool builds");
        let mut dim = DimSystem::build_with_resilience(
            topology,
            field,
            scenario.dims,
            transport,
            lossy,
            faults,
            recovery,
            op_retry,
        )
        .expect("dim builds");

        let mut rng = StdRng::seed_from_u64(scenario.seed ^ 0xE7E7_E7E7);
        let mut generator = EventGenerator::new(scenario.dims, events);
        let n = pool.topology().len() as u32;
        let mut inserts_attempted = 0u64;
        let mut pool_insert_drops = 0u64;
        let mut dim_insert_drops = 0u64;
        for node in 0..n {
            for _ in 0..scenario.events_per_node {
                let event = generator.generate(&mut rng);
                inserts_attempted += 1;
                // On a lossy radio an insertion can legitimately die after
                // exhausting its retry budget; count the drop instead of
                // aborting the experiment. Any other failure is a bug.
                match pool.insert_from(NodeId(node), event.clone()) {
                    Ok(_) => {}
                    Err(InsertError::Undeliverable { .. }) => pool_insert_drops += 1,
                    Err(e) => panic!("pool insert: {e}"),
                }
                match dim.insert_from(NodeId(node), event) {
                    Ok(_) => {}
                    Err(InsertError::Undeliverable { .. }) => dim_insert_drops += 1,
                    Err(e) => panic!("dim insert: {e}"),
                }
            }
        }
        SystemPair { pool, dim, inserts_attempted, pool_insert_drops, dim_insert_drops, rng }
    }

    /// A uniformly random node id.
    pub fn random_node(&mut self) -> NodeId {
        NodeId(self.rng.gen_range(0..self.pool.topology().len() as u32))
    }

    /// Access to the pair's RNG (for query generation).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Which query workload a measurement runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    /// Exact-match queries with the given range-size distribution (Fig 6).
    Exact(RangeSizeDistribution),
    /// `m`-partial match queries (Fig 7a).
    MPartial(usize),
    /// `1@n`-partial match queries, `n` 0-based (Fig 7b).
    OneAtN(usize),
}

impl QueryKind {
    /// Draws one query of this kind.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, dims: usize) -> RangeQuery {
        match *self {
            QueryKind::Exact(sizes) => exact_query(rng, dims, sizes),
            QueryKind::MPartial(m) => partial_query(rng, dims, m),
            QueryKind::OneAtN(n) => partial_query_at(rng, dims, n),
        }
    }
}

impl From<pool_workloads::scenario::QueryWorkload> for QueryKind {
    fn from(w: pool_workloads::scenario::QueryWorkload) -> Self {
        use pool_workloads::scenario::QueryWorkload as W;
        match w {
            W::Exact(sizes) => QueryKind::Exact(sizes),
            W::MPartial(m) => QueryKind::MPartial(m),
            W::OneAtN(n) => QueryKind::OneAtN(n),
        }
    }
}

impl From<&pool_workloads::scenario::WorkloadSpec> for Scenario {
    fn from(spec: &pool_workloads::scenario::WorkloadSpec) -> Self {
        Scenario {
            nodes: spec.nodes,
            seed: spec.seed,
            dims: spec.dims,
            events_per_node: spec.events_per_node,
            radio_range: 40.0,
            avg_neighbors: 20.0,
        }
    }
}

/// Runs one serialized [`WorkloadSpec`](pool_workloads::scenario::WorkloadSpec)
/// end to end and returns the measurement — the bridge from stored
/// experiment configurations to executions.
///
/// This is the reference serial execution; the parallel engine's
/// [`Trial`](crate::exec::Trial) reproduces it exactly (same seed
/// derivation, same RNG streams) on any worker thread.
pub fn run_spec(spec: &pool_workloads::scenario::WorkloadSpec) -> Measurement {
    run_spec_with_transport(spec, pool_transport::TransportKind::Gpsr)
}

/// [`run_spec`] on an explicit routing substrate.
pub fn run_spec_with_transport(
    spec: &pool_workloads::scenario::WorkloadSpec,
    transport: pool_transport::TransportKind,
) -> Measurement {
    let scenario = Scenario::from(spec);
    let config = PoolConfig::paper().with_transport(transport);
    let mut pair = SystemPair::build(&scenario, config, spec.events.clone());
    measure(&mut pair, QueryKind::from(spec.queries), spec.query_count)
}

/// The canonical latency column names every figure artifact carries, in
/// the order [`Measurement::latency_cells`] emits them.
pub const LATENCY_COLUMNS: [&str; 4] = ["pool_p50_ms", "pool_p99_ms", "dim_p50_ms", "dim_p99_ms"];

/// Per-system cost summaries for one measurement point.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Summary of Pool's per-query total messages.
    pub pool: Summary,
    /// Summary of DIM's per-query total messages.
    pub dim: Summary,
    /// Summary of Pool's per-query elapsed virtual time, in milliseconds.
    pub pool_latency: Summary,
    /// Summary of DIM's per-query elapsed virtual time, in milliseconds.
    pub dim_latency: Summary,
    /// Mean number of relevant cells Pool visited.
    pub pool_cells: f64,
    /// Mean number of zones DIM visited.
    pub dim_zones: f64,
}

impl Measurement {
    /// DIM's mean cost as a multiple of Pool's.
    pub fn dim_over_pool(&self) -> f64 {
        self.dim.mean / self.pool.mean
    }

    /// The four canonical latency cells ([`LATENCY_COLUMNS`] order):
    /// Pool p50/p99 and DIM p50/p99 per-query virtual time in ms.
    pub fn latency_cells(&self) -> [crate::report::Cell; 4] {
        [
            self.pool_latency.median.into(),
            self.pool_latency.p99.into(),
            self.dim_latency.median.into(),
            self.dim_latency.p99.into(),
        ]
    }
}

/// Runs `count` queries of `kind` through both systems and summarizes the
/// message costs.
///
/// Every query's Pool result set, DIM result set, and brute-force ground
/// truth are asserted identical — a failed reproduction run can never
/// silently produce numbers from a broken system.
///
/// # Panics
///
/// Panics if the systems disagree with each other or with ground truth.
pub fn measure(pair: &mut SystemPair, kind: QueryKind, count: usize) -> Measurement {
    let dims = pair.pool.config().dims;
    let mut pool_costs = Vec::with_capacity(count);
    let mut dim_costs = Vec::with_capacity(count);
    let mut pool_latencies = Vec::with_capacity(count);
    let mut dim_latencies = Vec::with_capacity(count);
    let mut pool_cells = 0usize;
    let mut dim_zones = 0usize;
    for i in 0..count {
        let sink = pair.random_node();
        let query = kind.generate(pair.rng(), dims);
        let pool_result = pair.pool.query_from(sink, &query).expect("pool query");
        let dim_result = pair.dim.query_from(sink, &query).expect("dim query");

        let canon = |mut evs: Vec<Event>| {
            evs.sort_by(canon_event_order);
            evs
        };
        let pool_events = canon(pool_result.events.clone());
        let dim_events = canon(dim_result.events.clone());
        let truth = canon(pair.pool.brute_force_query(&query));
        assert_eq!(pool_events, truth, "query {i} ({query}): Pool result wrong");
        assert_eq!(dim_events, truth, "query {i} ({query}): DIM result wrong");

        pool_costs.push(pool_result.cost.total() as f64);
        dim_costs.push(dim_result.cost.total() as f64);
        pool_latencies.push(pool_result.cost.elapsed * 1e3);
        dim_latencies.push(dim_result.cost.elapsed * 1e3);
        pool_cells += pool_result.relevant_cells;
        dim_zones += dim_result.zones_visited;
    }
    Measurement {
        pool: Summary::of(&pool_costs),
        dim: Summary::of(&dim_costs),
        pool_latency: Summary::of(&pool_latencies),
        dim_latency: Summary::of(&dim_latencies),
        pool_cells: pool_cells as f64 / count as f64,
        dim_zones: dim_zones as f64 / count as f64,
    }
}

/// Lexicographic total order over event attribute tuples, used to
/// canonicalize result sets before comparison. `<[f64]>::partial_cmp`
/// panics the harness on NaN and leaves `-0.0` / `+0.0` tuples in
/// system-dependent order; [`f64::total_cmp`] per attribute orders both.
pub fn canon_event_order(a: &Event, b: &Event) -> std::cmp::Ordering {
    let (va, vb) = (a.values(), b.values());
    va.iter()
        .zip(vb)
        .map(|(x, y)| x.total_cmp(y))
        .find(|o| o.is_ne())
        .unwrap_or_else(|| va.len().cmp(&vb.len()))
}

/// Prints a table header for figure binaries.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("\n# {title}");
    println!("{}", columns.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_holds_identical_event_sets() {
        let scenario = Scenario { events_per_node: 2, ..Scenario::paper(150, 3) };
        let pair = SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
        assert_eq!(pair.pool.store().len(), 300);
        assert_eq!(pair.dim.stored_events(), 300);
    }

    #[test]
    fn specs_run_end_to_end() {
        let mut spec = pool_workloads::scenario::WorkloadSpec::fig6_exponential(150);
        spec.query_count = 5;
        spec.events_per_node = 1;
        let m = run_spec(&spec);
        assert!(m.pool.mean > 0.0 && m.dim.mean > 0.0);
    }

    /// Regression: the result-set canon sorted with
    /// `values().partial_cmp().expect("finite")`, whose order for
    /// `-0.0` vs `+0.0` tuples depended on which system produced them
    /// (and which panicked outright on NaN).
    #[test]
    fn canon_order_is_total_over_negative_zero() {
        use std::cmp::Ordering;
        let neg = Event::new(vec![-0.0, 0.5]).unwrap();
        let pos = Event::new(vec![0.0, 0.5]).unwrap();
        assert_eq!(canon_event_order(&neg, &pos), Ordering::Less, "-0.0 orders before +0.0");
        assert_eq!(canon_event_order(&pos, &neg), Ordering::Greater);
        assert_eq!(canon_event_order(&neg, &neg), Ordering::Equal);
        // Ordinary tuples keep their lexicographic order.
        let lo = Event::new(vec![0.1, 0.9]).unwrap();
        let hi = Event::new(vec![0.2, 0.0]).unwrap();
        assert_eq!(canon_event_order(&lo, &hi), Ordering::Less);
        let mut evs = vec![hi.clone(), pos.clone(), lo.clone(), neg.clone()];
        evs.sort_by(canon_event_order);
        assert_eq!(evs, vec![neg, pos, lo, hi]);
    }

    #[test]
    fn measure_runs_and_cross_validates() {
        let scenario = Scenario { events_per_node: 2, ..Scenario::paper(150, 4) };
        let mut pair =
            SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
        let m = measure(
            &mut pair,
            QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 }),
            10,
        );
        assert!(m.pool.mean > 0.0);
        assert!(m.dim.mean > 0.0);
    }
}
