//! Minimal shared CLI parsing for the figure binaries.
//!
//! Every binary accepts `--queries N` and `--nodes N` style flags (and
//! `--transport gpsr|cached` to select the routing substrate); this avoids
//! pulling a CLI dependency for two integers and an enum.

use pool_transport::TransportKind;

/// Parses `flag <value>` from `std::env::args`, falling back to `default`
/// when absent or malformed.
///
/// # Examples
///
/// ```
/// // With no matching argv entry, the default is returned.
/// let queries = pool_bench::cli::arg_usize("--queries", 100);
/// assert_eq!(queries, 100);
/// ```
pub fn arg_usize(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `flag <value>` as a routing-substrate selector (`gpsr` or
/// `cached`), falling back to `default` when absent; exits with the parse
/// error on a malformed value rather than silently benchmarking the wrong
/// substrate.
///
/// # Examples
///
/// ```
/// use pool_transport::TransportKind;
///
/// let t = pool_bench::cli::arg_transport("--transport", TransportKind::Gpsr);
/// assert_eq!(t, TransportKind::Gpsr);
/// ```
pub fn arg_transport(flag: &str, default: TransportKind) -> TransportKind {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("{flag}: {e}");
            std::process::exit(2);
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_flag_yields_default() {
        assert_eq!(arg_usize("--definitely-not-passed", 7), 7);
    }

    #[test]
    fn missing_transport_flag_yields_default() {
        assert_eq!(arg_transport("--no-such-flag", TransportKind::Cached), TransportKind::Cached);
    }
}
