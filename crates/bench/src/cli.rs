//! Minimal shared CLI parsing for the figure binaries.
//!
//! Every binary accepts `--queries N` and `--nodes N` style flags (and
//! `--transport gpsr|cached` to select the routing substrate); this avoids
//! pulling a CLI dependency for two integers and an enum. [`BenchOpts`]
//! adds the two flags the parallel execution engine gave every binary:
//! `--jobs N` (worker threads) and `--smoke` (a scaled-down configuration
//! fast enough for the CI bench-smoke gate).

use crate::report::Table;
use pool_transport::TransportKind;
use std::path::PathBuf;

/// Parses `flag <value>` from `std::env::args`, falling back to `default`
/// when absent or malformed.
///
/// # Examples
///
/// ```
/// // With no matching argv entry, the default is returned.
/// let queries = pool_bench::cli::arg_usize("--queries", 100);
/// assert_eq!(queries, 100);
/// ```
pub fn arg_usize(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `flag <value>` as a routing-substrate selector (`gpsr` or
/// `cached`), falling back to `default` when absent; exits with the parse
/// error on a malformed value rather than silently benchmarking the wrong
/// substrate.
///
/// # Examples
///
/// ```
/// use pool_transport::TransportKind;
///
/// let t = pool_bench::cli::arg_transport("--transport", TransportKind::Gpsr);
/// assert_eq!(t, TransportKind::Gpsr);
/// ```
pub fn arg_transport(flag: &str, default: TransportKind) -> TransportKind {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|e| {
            eprintln!("{flag}: {e}");
            std::process::exit(2);
        }),
    }
}

/// Returns whether the bare flag is present in `std::env::args`.
///
/// # Examples
///
/// ```
/// assert!(!pool_bench::cli::arg_flag("--definitely-not-passed"));
/// ```
pub fn arg_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// The execution options shared by every figure binary: how many worker
/// threads drive the trial engine, and whether to run the scaled-down
/// smoke configuration.
///
/// The determinism contract (DESIGN.md §11) guarantees `jobs` never
/// changes any emitted byte; `smoke` selects a *different* (smaller)
/// experiment, so smoke artifacts are written under `target/smoke/`
/// instead of overwriting the checked-in full-scale `BENCH_*.json` files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchOpts {
    /// Worker threads for the trial engine (`--jobs N`, default 1).
    pub jobs: usize,
    /// Scaled-down CI configuration (`--smoke`).
    pub smoke: bool,
}

impl BenchOpts {
    /// Parses `--jobs` and `--smoke` from `std::env::args`.
    pub fn from_env() -> Self {
        BenchOpts { jobs: arg_usize("--jobs", 1).max(1), smoke: arg_flag("--smoke") }
    }

    /// A fixed-size configuration for tests: `jobs` workers, smoke scale.
    pub fn smoke_with_jobs(jobs: usize) -> Self {
        BenchOpts { jobs: jobs.max(1), smoke: true }
    }

    /// Picks the full-scale or smoke-scale value of a parameter.
    pub fn scale(&self, full: usize, smoke: usize) -> usize {
        if self.smoke {
            smoke
        } else {
            full
        }
    }

    /// Queries per measurement: `full` normally, a CI-friendly 5 in smoke
    /// mode (never exceeding `full`).
    pub fn queries(&self, full: usize) -> usize {
        self.scale(full, full.min(5)).max(1)
    }

    /// Network size: `full` normally, at most 150 nodes in smoke mode.
    pub fn nodes(&self, full: usize) -> usize {
        self.scale(full, full.min(150))
    }

    /// The network-size sweep of the paper's §5 figures (300–1200 nodes),
    /// or a two-point miniature in smoke mode.
    pub fn network_sizes(&self) -> Vec<usize> {
        if self.smoke {
            vec![150, 200]
        } else {
            vec![300, 600, 900, 1200]
        }
    }

    /// Where this run's JSON artifact for `name` goes: the repo root for
    /// full-scale runs (`BENCH_<name>.json`, the checked-in artifacts),
    /// `target/smoke/` for smoke runs.
    pub fn artifact_path(&self, name: &str) -> PathBuf {
        let file = format!("BENCH_{name}.json");
        if self.smoke {
            PathBuf::from("target").join("smoke").join(file)
        } else {
            PathBuf::from(file)
        }
    }

    /// Prints `table` and writes its canonical JSON artifact for `name`.
    ///
    /// # Panics
    ///
    /// Panics if the artifact cannot be written.
    pub fn emit(&self, name: &str, table: &Table) {
        table.print_tsv();
        let path = self.artifact_path(name);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create artifact directory");
            }
        }
        std::fs::write(&path, table.to_json()).expect("write JSON artifact");
        println!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_flag_yields_default() {
        assert_eq!(arg_usize("--definitely-not-passed", 7), 7);
    }

    #[test]
    fn missing_transport_flag_yields_default() {
        assert_eq!(arg_transport("--no-such-flag", TransportKind::Cached), TransportKind::Cached);
    }

    #[test]
    fn smoke_scales_down_but_never_up() {
        let smoke = BenchOpts::smoke_with_jobs(2);
        assert_eq!(smoke.queries(100), 5);
        assert_eq!(smoke.queries(3), 3);
        assert_eq!(smoke.nodes(900), 150);
        assert_eq!(smoke.nodes(120), 120);
        assert_eq!(smoke.network_sizes(), vec![150, 200]);

        let full = BenchOpts { jobs: 1, smoke: false };
        assert_eq!(full.queries(100), 100);
        assert_eq!(full.network_sizes(), vec![300, 600, 900, 1200]);
    }

    #[test]
    fn smoke_artifacts_never_overwrite_checked_in_results() {
        let smoke = BenchOpts::smoke_with_jobs(1);
        assert_eq!(smoke.artifact_path("fig6"), PathBuf::from("target/smoke/BENCH_fig6.json"));
        let full = BenchOpts { jobs: 4, smoke: false };
        assert_eq!(full.artifact_path("fig6"), PathBuf::from("BENCH_fig6.json"));
    }
}
