//! Minimal shared CLI parsing for the figure binaries.
//!
//! Every binary accepts `--queries N` and `--nodes N` style flags; this
//! avoids pulling a CLI dependency for two integers.

/// Parses `flag <value>` from `std::env::args`, falling back to `default`
/// when absent or malformed.
///
/// # Examples
///
/// ```
/// // With no matching argv entry, the default is returned.
/// let queries = pool_bench::cli::arg_usize("--queries", 100);
/// assert_eq!(queries, 100);
/// ```
pub fn arg_usize(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_flag_yields_default() {
        assert_eq!(arg_usize("--definitely-not-passed", 7), 7);
    }
}
