//! # pool-bench — experiment harness for the Pool reproduction
//!
//! [`harness`] builds paired Pool/DIM deployments over identical networks
//! and workloads and measures per-query message costs, cross-validating
//! every result set against brute-force ground truth.
//!
//! [`exec`] is the deterministic parallel trial-execution engine: every
//! figure binary decomposes its sweep into independent trials and submits
//! them to a scoped worker pool (`--jobs N`), with per-trial seed
//! derivation and order-independent aggregation so the emitted JSON is
//! byte-identical for any worker count. [`report`] renders the aggregated
//! rows as TSV + canonical JSON artifacts, and [`figures`] holds the
//! figure drivers that double as library entry points for the determinism
//! regression tests.
//!
//! The figure binaries (`fig6`, `fig7`, `insertion_cost`, the ablation
//! sweeps) and the Criterion benches are thin drivers over these modules;
//! see EXPERIMENTS.md at the workspace root for the full index.

#![warn(missing_docs)]

pub mod cli;
pub mod exec;
pub mod figures;
pub mod harness;
pub mod report;

pub use cli::BenchOpts;
pub use exec::{derive_seed, run_suite, run_trials, Trial};
pub use harness::{measure, Measurement, QueryKind, Scenario, SystemPair, LATENCY_COLUMNS};
pub use report::{Cell, Table};
