//! # pool-bench — experiment harness for the Pool reproduction
//!
//! [`harness`] builds paired Pool/DIM deployments over identical networks
//! and workloads and measures per-query message costs, cross-validating
//! every result set against brute-force ground truth.
//!
//! The figure binaries (`fig6`, `fig7`, `insertion_cost`, the ablation
//! sweeps) and the Criterion benches are thin drivers over this module;
//! see EXPERIMENTS.md at the workspace root for the full index.

#![warn(missing_docs)]

pub mod cli;
pub mod harness;

pub use harness::{measure, Measurement, QueryKind, Scenario, SystemPair};
