//! Deterministic parallel trial execution.
//!
//! The §5 evaluation is a grid of *independent trials* — network sizes ×
//! seeds × substrates × radios — yet a naive harness runs every replica
//! serially on one core. This module is the missing execution engine:
//!
//! * [`run_trials`] — a hand-rolled scoped worker pool over
//!   [`std::thread`] (no external dependencies; the vendored compat crates
//!   are stubs). Workers pull trial indices from a shared queue and write
//!   results into per-index slots, so aggregation order — and therefore
//!   every emitted byte — is independent of the worker count.
//! * [`Trial`] — the unit of work: one
//!   [`WorkloadSpec`](pool_workloads::scenario::WorkloadSpec) plus a
//!   routing substrate, evaluated to one
//!   [`Measurement`](crate::harness::Measurement).
//! * [`derive_seed`] — the per-trial seed derivation (splitmix64 over the
//!   base seed and a stream index). Figure binaries whose serial loops used
//!   to thread one RNG through every point now give each trial its own
//!   derived stream, which is what makes the points schedulable in any
//!   order on any number of workers.
//!
//! # Determinism contract
//!
//! A trial may depend only on its input: it builds its own deployment,
//! transport, [`TrafficLedger`](pool_transport::TrafficLedger), and
//! [`Tracer`](pool_transport::Tracer), and draws randomness only from RNGs
//! seeded by its spec. Under that contract `run_trials` guarantees the
//! returned `Vec` is byte-for-byte identical for any `jobs ≥ 1` — the
//! property pinned by `tests/determinism.rs`.

use crate::harness::{self, Measurement};
use pool_transport::TransportKind;
use pool_workloads::scenario::WorkloadSpec;

// The scoped worker pool and seed derivation now live in the substrate
// crate (`pool_netsim::exec`) so non-bench consumers — notably the
// service layer's per-shard executor — schedule on the same engine.
// Re-exported here because every figure binary imports them from
// `pool_bench::exec`.
pub use pool_netsim::exec::{derive_seed, run_trials};

/// One schedulable unit of the §5 evaluation grid: a complete workload
/// specification plus the routing substrate to execute it on.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The experimental condition (deployment, events, queries, seed).
    pub spec: WorkloadSpec,
    /// The routing substrate both systems ride.
    pub transport: TransportKind,
}

impl Trial {
    /// A trial of `spec` on the reference GPSR substrate.
    pub fn new(spec: WorkloadSpec) -> Self {
        Trial { spec, transport: TransportKind::Gpsr }
    }

    /// Selects the routing substrate.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Executes the trial: builds the paired deployment (its own transport,
    /// ledger, and tracer — nothing shared with any other trial), loads the
    /// workload, and measures the query phase.
    ///
    /// Seeding is identical to the serial harness: everything derives from
    /// `spec.seed`, so `Trial::run` on a worker thread reproduces
    /// [`harness::run_spec`] exactly.
    pub fn run(&self) -> Measurement {
        harness::run_spec_with_transport(&self.spec, self.transport)
    }
}

/// Runs a suite of trials on `jobs` workers, preserving submission order
/// in the returned measurements.
pub fn run_suite(jobs: usize, trials: Vec<Trial>) -> Vec<Measurement> {
    run_trials(jobs, trials, |_, trial| trial.run())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_matches_serial_run_spec() {
        let mut spec = pool_workloads::scenario::WorkloadSpec::fig6_exponential(150);
        spec.query_count = 3;
        spec.events_per_node = 1;
        let serial = harness::run_spec(&spec);
        let trial = Trial::new(spec).run();
        assert_eq!(format!("{serial:?}"), format!("{trial:?}"));
    }

    #[test]
    fn suite_is_jobs_invariant() {
        let mut specs = Vec::new();
        for nodes in [150, 180] {
            let mut spec = pool_workloads::scenario::WorkloadSpec::fig6_exponential(nodes);
            spec.query_count = 3;
            spec.events_per_node = 1;
            specs.push(spec);
        }
        let trials: Vec<Trial> = specs.into_iter().map(Trial::new).collect();
        let serial = run_suite(1, trials.clone());
        let parallel = run_suite(4, trials);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }
}
