//! Deterministic parallel trial execution.
//!
//! The §5 evaluation is a grid of *independent trials* — network sizes ×
//! seeds × substrates × radios — yet a naive harness runs every replica
//! serially on one core. This module is the missing execution engine:
//!
//! * [`run_trials`] — a hand-rolled scoped worker pool over
//!   [`std::thread`] (no external dependencies; the vendored compat crates
//!   are stubs). Workers pull trial indices from a shared queue and write
//!   results into per-index slots, so aggregation order — and therefore
//!   every emitted byte — is independent of the worker count.
//! * [`Trial`] — the unit of work: one
//!   [`WorkloadSpec`](pool_workloads::scenario::WorkloadSpec) plus a
//!   routing substrate, evaluated to one
//!   [`Measurement`](crate::harness::Measurement).
//! * [`derive_seed`] — the per-trial seed derivation (splitmix64 over the
//!   base seed and a stream index). Figure binaries whose serial loops used
//!   to thread one RNG through every point now give each trial its own
//!   derived stream, which is what makes the points schedulable in any
//!   order on any number of workers.
//!
//! # Determinism contract
//!
//! A trial may depend only on its input: it builds its own deployment,
//! transport, [`TrafficLedger`](pool_transport::TrafficLedger), and
//! [`Tracer`](pool_transport::Tracer), and draws randomness only from RNGs
//! seeded by its spec. Under that contract `run_trials` guarantees the
//! returned `Vec` is byte-for-byte identical for any `jobs ≥ 1` — the
//! property pinned by `tests/determinism.rs`.

use crate::harness::{self, Measurement};
use pool_transport::TransportKind;
use pool_workloads::scenario::WorkloadSpec;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Derives the RNG seed for stream `stream` of a trial family with base
/// seed `base` (splitmix64; the golden-ratio multiplier decorrelates
/// consecutive stream indices).
///
/// This is the documented seed-derivation scheme (DESIGN.md §11): every
/// figure binary that sweeps a parameter derives point `i`'s seed as
/// `derive_seed(base, i)`, so each point owns a self-contained RNG stream
/// and trials can run in any order, on any worker, with identical results.
///
/// # Examples
///
/// ```
/// use pool_bench::exec::derive_seed;
///
/// // Deterministic, and distinct streams differ.
/// assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
/// assert_ne!(derive_seed(42, 3), derive_seed(42, 4));
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs every input through `run` on a scoped pool of at most `jobs`
/// worker threads, returning results in submission order.
///
/// With `jobs == 1` no threads are spawned and the inputs run serially on
/// the caller's stack — the reference execution every parallel run must
/// reproduce byte for byte.
///
/// # Panics
///
/// Panics if `jobs == 0`, and propagates the first panic raised inside any
/// trial (a failed in-trial assertion aborts the whole run, exactly as it
/// would serially).
pub fn run_trials<I, T, F>(jobs: usize, inputs: Vec<I>, run: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    assert!(jobs >= 1, "jobs must be at least 1");
    if jobs == 1 || inputs.len() <= 1 {
        return inputs.into_iter().enumerate().map(|(i, input)| run(i, input)).collect();
    }
    let n = inputs.len();
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(inputs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                // Take the next unclaimed trial; drop the queue lock before
                // running it so workers never serialize on each other.
                let next = queue.lock().expect("trial queue poisoned").pop_front();
                let Some((index, input)) = next else { break };
                let result = run(index, input);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("result slot poisoned").expect("every trial ran"))
        .collect()
}

/// One schedulable unit of the §5 evaluation grid: a complete workload
/// specification plus the routing substrate to execute it on.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// The experimental condition (deployment, events, queries, seed).
    pub spec: WorkloadSpec,
    /// The routing substrate both systems ride.
    pub transport: TransportKind,
}

impl Trial {
    /// A trial of `spec` on the reference GPSR substrate.
    pub fn new(spec: WorkloadSpec) -> Self {
        Trial { spec, transport: TransportKind::Gpsr }
    }

    /// Selects the routing substrate.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Executes the trial: builds the paired deployment (its own transport,
    /// ledger, and tracer — nothing shared with any other trial), loads the
    /// workload, and measures the query phase.
    ///
    /// Seeding is identical to the serial harness: everything derives from
    /// `spec.seed`, so `Trial::run` on a worker thread reproduces
    /// [`harness::run_spec`] exactly.
    pub fn run(&self) -> Measurement {
        harness::run_spec_with_transport(&self.spec, self.transport)
    }
}

/// Runs a suite of trials on `jobs` workers, preserving submission order
/// in the returned measurements.
pub fn run_suite(jobs: usize, trials: Vec<Trial>) -> Vec<Measurement> {
    run_trials(jobs, trials, |_, trial| trial.run())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Uneven per-trial work so completion order scrambles under
        // contention; submission order must survive regardless.
        let inputs: Vec<usize> = (0..32).collect();
        let work = |_, i: usize| {
            let spin = (31 - i) * 1000;
            let mut acc = i as u64;
            for x in 0..spin as u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(x);
            }
            (i, acc % 2 + 2)
        };
        let serial = run_trials(1, inputs.clone(), work);
        for jobs in [2, 4, 8] {
            assert_eq!(run_trials(jobs, inputs.clone(), work), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn worker_count_exceeding_trials_is_fine() {
        let out = run_trials(16, vec![1, 2, 3], |_, x: i32| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_jobs_rejected() {
        let _ = run_trials(0, vec![()], |_, ()| ());
    }

    #[test]
    fn derived_seeds_are_pinned() {
        // The scheme is part of the determinism contract (DESIGN.md §11):
        // changing it silently re-seeds every sweep, so pin exact values.
        assert_eq!(derive_seed(0, 0), 0);
        assert_eq!(derive_seed(42, 0), 0xa759_ea27_d472_7622);
        assert_eq!(derive_seed(42, 1), 0xbdd7_3226_2feb_6e95);
        assert_eq!(derive_seed(42, 2), 0xd963_9a00_6c85_adb0);
    }

    #[test]
    fn trial_matches_serial_run_spec() {
        let mut spec = pool_workloads::scenario::WorkloadSpec::fig6_exponential(150);
        spec.query_count = 3;
        spec.events_per_node = 1;
        let serial = harness::run_spec(&spec);
        let trial = Trial::new(spec).run();
        assert_eq!(format!("{serial:?}"), format!("{trial:?}"));
    }

    #[test]
    fn suite_is_jobs_invariant() {
        let mut specs = Vec::new();
        for nodes in [150, 180] {
            let mut spec = pool_workloads::scenario::WorkloadSpec::fig6_exponential(nodes);
            spec.query_count = 3;
            spec.events_per_node = 1;
            specs.push(spec);
        }
        let trials: Vec<Trial> = specs.into_iter().map(Trial::new).collect();
        let serial = run_suite(1, trials.clone());
        let parallel = run_suite(4, trials);
        assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    }
}
