//! The determinism contract, pinned (DESIGN.md §11).
//!
//! A trial depends only on its input and owns all of its mutable state,
//! so the aggregated artifact must be byte-identical for any `--jobs`
//! value. These tests run the two figure drivers that exercise the most
//! machinery — fig6 (panel sweep + substrate ablation) and load_balance
//! (lossy radio + sharing + delegation chains) — at smoke scale on one
//! worker and on eight, and require the serialized JSON to match byte for
//! byte. A scheduling-dependent RNG draw, a shared ledger, or an
//! order-sensitive aggregation all show up here as a diff.

use pool_bench::exec::run_trials;
use pool_bench::figures::{churn, fig6, latency, load_balance, service};
use pool_bench::harness::{QueryKind, Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::RangeSizeDistribution;

/// Compile-time proof that whole systems move into worker threads. If a
/// future change slips an `Rc`, raw pointer, or thread-bound handle into
/// a system (or a transport impl), this stops compiling — long before a
/// heisenbug shows up in a parallel sweep.
#[allow(dead_code)]
fn systems_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<pool_core::PoolSystem>();
    assert_send::<pool_dim::DimSystem>();
    assert_send::<pool_bench::harness::SystemPair>();
    assert_send::<pool_bench::Trial>();
}

/// Compile-time proof that service handles are shareable across client
/// threads (`&ServiceHandle` from N threads at once). The router is
/// immutable and every shard sits behind a `Mutex`, so `Sync` must hold
/// for all three backends; an interior-mutability slip (`Cell`, `Rc`, a
/// non-`Sync` cache) stops compiling here.
#[allow(dead_code)]
fn service_handles_are_sync() {
    fn assert_sync<T: Sync>() {}
    assert_sync::<pool_service::ServiceHandle<pool_service::PoolBackend>>();
    assert_sync::<pool_service::ServiceHandle<pool_service::DimBackend>>();
    assert_sync::<pool_service::ServiceHandle<pool_service::GhtBackend>>();
}

#[test]
fn fig6_json_is_jobs_invariant() {
    let serial = fig6::collect(&fig6::Params::smoke(1));
    let parallel = fig6::collect(&fig6::Params::smoke(8));
    assert_eq!(
        serial.table.to_json(),
        parallel.table.to_json(),
        "fig6 artifact differs between --jobs 1 and --jobs 8"
    );
}

#[test]
fn load_balance_json_is_jobs_invariant() {
    let serial = load_balance::collect(&load_balance::Params::smoke(1));
    let parallel = load_balance::collect(&load_balance::Params::smoke(8));
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "load_balance artifact differs between --jobs 1 and --jobs 8"
    );
}

/// The latency artifact is the determinism contract's sharpest probe:
/// every cell is a virtual-time percentile, so any scheduling-dependent
/// clock advance shows up as a diff.
#[test]
fn latency_profile_json_is_jobs_invariant() {
    let serial = latency::collect(&latency::Params::smoke(1));
    let parallel = latency::collect(&latency::Params::smoke(8));
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "latency_profile artifact differs between --jobs 1 and --jobs 8"
    );
}

/// Churn trials mutate topologies, grow ledgers, and drain repair queues
/// mid-flight; none of that may depend on which worker runs the level.
#[test]
fn churn_json_is_jobs_invariant() {
    let serial = churn::collect(&churn::Params::smoke(1));
    let parallel = churn::collect(&churn::Params::smoke(8));
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "churn artifact differs between --jobs 1 and --jobs 8"
    );
}

/// The service artifact layers admission windows, coalesced units,
/// per-shard queues, and the parallel shard executor on top of the
/// ordinary trial machinery; serve() must stay byte-identical whatever
/// the worker count, both across trials and *within* each serve call.
#[test]
fn service_json_is_jobs_invariant() {
    let serial = service::collect(&service::Params::smoke(1));
    let parallel = service::collect(&service::Params::smoke(8));
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "service artifact differs between --jobs 1 and --jobs 8"
    );
}

/// One trial's complete virtual-time trace, every float captured bit-exact.
type EventTrace = (Vec<(u32, u32, u64, u64)>, Vec<u64>, Vec<u64>, Vec<u64>, u64);

/// Identical workloads must yield identical *event traces* — not just
/// identical aggregated tables — no matter how trials map onto workers.
/// Each trial replays a small SystemPair workload and returns the full
/// timeline: every traced span (endpoints plus bit-exact start/end
/// timestamps), the clock's per-node transmit/receive counts and busy
/// times, and the final virtual time. Running the same four trials on one
/// worker and on eight must reproduce every bit.
#[test]
fn event_traces_are_jobs_invariant() {
    fn traces(jobs: usize) -> Vec<EventTrace> {
        run_trials(jobs, vec![0u64, 1, 2, 3], |_, seed| {
            let scenario =
                Scenario { events_per_node: 2, ..Scenario::paper(150, 93_000 + seed * 0x1000) };
            let mut pair =
                SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);
            let dims = pair.pool.config().dims;
            let kind = QueryKind::Exact(RangeSizeDistribution::Exponential { mean: 0.1 });
            for _ in 0..5 {
                let sink = pair.random_node();
                let query = kind.generate(pair.rng(), dims);
                pair.pool.query_from(sink, &query).expect("pool query");
            }
            let spans = pair
                .pool
                .tracer()
                .spans()
                .map(|s| (s.origin.0, s.destination.0, s.start.to_bits(), s.end.to_bits()))
                .collect();
            let clock = pair.pool.transport().clock();
            (
                spans,
                clock.tx_counts().to_vec(),
                clock.rx_counts().to_vec(),
                clock.busy_times().iter().map(|t| t.to_bits()).collect(),
                clock.now().to_bits(),
            )
        })
    }
    assert_eq!(traces(1), traces(8), "event traces differ between --jobs 1 and --jobs 8");
}
