//! The determinism contract, pinned (DESIGN.md §11).
//!
//! A trial depends only on its input and owns all of its mutable state,
//! so the aggregated artifact must be byte-identical for any `--jobs`
//! value. These tests run the two figure drivers that exercise the most
//! machinery — fig6 (panel sweep + substrate ablation) and load_balance
//! (lossy radio + sharing + delegation chains) — at smoke scale on one
//! worker and on eight, and require the serialized JSON to match byte for
//! byte. A scheduling-dependent RNG draw, a shared ledger, or an
//! order-sensitive aggregation all show up here as a diff.

use pool_bench::figures::{fig6, load_balance};

/// Compile-time proof that whole systems move into worker threads. If a
/// future change slips an `Rc`, raw pointer, or thread-bound handle into
/// a system (or a transport impl), this stops compiling — long before a
/// heisenbug shows up in a parallel sweep.
#[allow(dead_code)]
fn systems_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<pool_core::PoolSystem>();
    assert_send::<pool_dim::DimSystem>();
    assert_send::<pool_bench::harness::SystemPair>();
    assert_send::<pool_bench::Trial>();
}

#[test]
fn fig6_json_is_jobs_invariant() {
    let serial = fig6::collect(&fig6::Params::smoke(1));
    let parallel = fig6::collect(&fig6::Params::smoke(8));
    assert_eq!(
        serial.table.to_json(),
        parallel.table.to_json(),
        "fig6 artifact differs between --jobs 1 and --jobs 8"
    );
}

#[test]
fn load_balance_json_is_jobs_invariant() {
    let serial = load_balance::collect(&load_balance::Params::smoke(1));
    let parallel = load_balance::collect(&load_balance::Params::smoke(8));
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "load_balance artifact differs between --jobs 1 and --jobs 8"
    );
}
