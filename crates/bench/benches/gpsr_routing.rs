//! Criterion benchmarks of the GPSR substrate: route computation cost and
//! planarization build time for Gabriel vs relative-neighborhood graphs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pool_gpsr::{Gpsr, Planarization};
use pool_netsim::deployment::Deployment;
use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;

fn connected_topology(n: usize, mut seed: u64) -> Topology {
    loop {
        let dep = Deployment::paper_setting(n, 40.0, 20.0, seed).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if topo.is_connected() {
            return topo;
        }
        seed += 1;
    }
}

fn bench_planarization(c: &mut Criterion) {
    let topo = connected_topology(600, 10);
    let mut group = c.benchmark_group("planarization_build");
    for (name, method) in
        [("gabriel", Planarization::Gabriel), ("rng", Planarization::RelativeNeighborhood)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &method, |b, &m| {
            b.iter(|| Gpsr::new(black_box(&topo), m))
        });
    }
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let topo = connected_topology(600, 10);
    let gabriel = Gpsr::new(&topo, Planarization::Gabriel);
    let rng_planar = Gpsr::new(&topo, Planarization::RelativeNeighborhood);
    let target = Point::new(500.0, 500.0);
    let mut group = c.benchmark_group("route_600_nodes");
    group.bench_function("gabriel", |b| {
        b.iter(|| gabriel.route(&topo, NodeId(0), black_box(target)).unwrap())
    });
    group.bench_function("rng", |b| {
        b.iter(|| rng_planar.route(&topo, NodeId(0), black_box(target)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_planarization, bench_routing);
criterion_main!(benches);
