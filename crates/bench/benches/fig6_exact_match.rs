//! Criterion wrapper around the Figure 6 measurement at reduced scale, so
//! `cargo bench` exercises the full query pipeline (resolve → splitter
//! forwarding → replies, and DIM's zone chain) end to end.
//!
//! The paper-scale numbers come from the `fig6` binary; this bench tracks
//! the *computational* cost of a whole query on each system.

use criterion::{criterion_group, criterion_main, Criterion};
use pool_bench::harness::{Scenario, SystemPair};
use pool_core::config::PoolConfig;
use pool_core::query::RangeQuery;
use pool_netsim::node::NodeId;
use pool_workloads::events::EventDistribution;
use pool_workloads::queries::{exact_query, RangeSizeDistribution};
use std::cell::Cell;

fn bench_query_pipeline(c: &mut Criterion) {
    let scenario = Scenario { events_per_node: 3, ..Scenario::paper(300, 2024) };
    let mut pair = SystemPair::build(&scenario, PoolConfig::paper(), EventDistribution::Uniform);

    // Pre-draw a pool of (sink, query) pairs and cycle through them.
    let inputs: Vec<(NodeId, RangeQuery)> = (0..256)
        .map(|_| {
            let sink = pair.random_node();
            let q = exact_query(pair.rng(), 3, RangeSizeDistribution::Exponential { mean: 0.1 });
            (sink, q)
        })
        .collect();
    let cursor = Cell::new(0usize);
    let next = || {
        let i = cursor.get();
        cursor.set((i + 1) % inputs.len());
        &inputs[i]
    };

    let mut group = c.benchmark_group("exact_match_query_300_nodes");
    group.sample_size(40);
    group.bench_function("pool", |b| {
        b.iter(|| {
            let (sink, q) = next();
            pair.pool.query_from(*sink, q).unwrap()
        })
    });
    group.bench_function("dim", |b| {
        b.iter(|| {
            let (sink, q) = next();
            pair.dim.query_from(*sink, q).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query_pipeline);
criterion_main!(benches);
