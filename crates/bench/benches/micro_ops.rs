//! Criterion microbenchmarks of Pool's pure-math hot paths: Theorem 3.1
//! placement, Theorem 3.2 resolving, and DIM's code computations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pool_core::event::Event;
use pool_core::grid::{CellCoord, Grid};
use pool_core::insert::{offsets_for, storage_cell};
use pool_core::layout::PoolLayout;
use pool_core::query::RangeQuery;
use pool_core::resolve::relevant_cells;
use pool_dim::code::ZoneCode;
use pool_netsim::geometry::Rect;

fn setup() -> (Grid, PoolLayout) {
    let grid = Grid::over(Rect::square(500.0), 5.0).unwrap();
    let layout = PoolLayout::random(&grid, 3, 10, 7).unwrap();
    (grid, layout)
}

fn bench_insert_math(c: &mut Criterion) {
    let (grid, layout) = setup();
    let event = Event::new(vec![0.62, 0.31, 0.87]).unwrap();
    c.bench_function("theorem_3_1_offsets", |b| {
        b.iter(|| offsets_for(black_box(0.87), black_box(0.62), black_box(10)))
    });
    c.bench_function("storage_cell_with_ties", |b| {
        b.iter(|| storage_cell(&layout, &grid, black_box(&event), CellCoord::new(40, 40)))
    });
}

fn bench_resolve(c: &mut Criterion) {
    let (_, layout) = setup();
    let exact = RangeQuery::exact(vec![(0.2, 0.3), (0.25, 0.35), (0.21, 0.24)]).unwrap();
    let partial = RangeQuery::from_bounds(vec![None, None, Some((0.8, 0.84))]).unwrap();
    c.bench_function("theorem_3_2_resolve_exact", |b| {
        b.iter(|| relevant_cells(&layout, black_box(&exact)))
    });
    c.bench_function("theorem_3_2_resolve_partial", |b| {
        b.iter(|| relevant_cells(&layout, black_box(&partial)))
    });
}

fn bench_dim_codes(c: &mut Criterion) {
    let values = [0.62, 0.31, 0.87];
    c.bench_function("dim_event_code_16bits", |b| {
        b.iter(|| ZoneCode::of_event(black_box(&values), 16))
    });
    let code = ZoneCode::of_event(&values, 16);
    c.bench_function("dim_attribute_ranges", |b| b.iter(|| code.attribute_ranges(black_box(3))));
}

criterion_group!(benches, bench_insert_math, bench_resolve, bench_dim_codes);
criterion_main!(benches);
