//! The complete GPSR router: greedy mode with perimeter-mode recovery.
//!
//! Routes are computed hop by hop exactly as the distributed protocol would
//! forward a packet: each step uses only the current node's neighbor table,
//! the packet header (destination location, perimeter-entry point, face
//! intersection point, first face edge), and the planarized neighbor subset.
//! The full path is returned so callers can charge per-hop message costs.

use crate::greedy::{greedy_next_by, GreedyMetric};
use crate::perimeter::right_hand_next;
use crate::planar::{PlanarGraph, Planarization};
use pool_netsim::geometry::{line_intersection, segments_cross, Point};
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use std::error::Error;
use std::fmt;

/// A computed route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Every node visited, starting with the source. Consecutive entries are
    /// radio neighbors; `path.len() - 1` is the hop count.
    pub path: Vec<NodeId>,
    /// The node at which the packet was delivered (last entry of `path`).
    pub delivered: NodeId,
    /// Hops taken in greedy mode.
    pub greedy_hops: usize,
    /// Hops taken in perimeter mode.
    pub perimeter_hops: usize,
}

impl Route {
    /// Total number of radio transmissions along the route.
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// Errors raised by route computation.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// The hop budget was exceeded — only possible on pathological
    /// geometries (e.g. coincident node positions).
    HopBudgetExceeded {
        /// The source node.
        from: NodeId,
        /// The destination location.
        target: Point,
    },
    /// A packet addressed to a specific node was delivered elsewhere, which
    /// means the planar graph is disconnected from the destination.
    NotDelivered {
        /// The intended destination node.
        to: NodeId,
        /// Where the packet ended up instead.
        delivered: NodeId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::HopBudgetExceeded { from, target } => {
                write!(f, "hop budget exceeded routing from {from} to {target}")
            }
            RouteError::NotDelivered { to, delivered } => {
                write!(f, "packet for {to} was delivered at {delivered} (disconnected network?)")
            }
        }
    }
}

impl Error for RouteError {}

/// Internal packet-header state for perimeter mode.
#[derive(Debug, Clone, Copy)]
struct PerimeterState {
    /// Location where the packet entered perimeter mode (`L_p`).
    lp: Point,
    /// Point where the packet entered the current face (`L_f`).
    lf: Point,
    /// First directed edge traversed on the current face (`e_0`).
    e0: (NodeId, NodeId),
    /// The node the packet arrived from.
    prev: NodeId,
}

/// A GPSR router bound to one planarization of a topology.
///
/// The router holds only the planar graph; every call takes the topology so
/// a single router can serve many experiments over the same deployment.
///
/// # Examples
///
/// ```
/// use pool_gpsr::router::Gpsr;
/// use pool_gpsr::planar::Planarization;
/// use pool_netsim::deployment::{Deployment, Placement};
/// use pool_netsim::geometry::{Point, Rect};
/// use pool_netsim::topology::Topology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let nodes = Deployment::new(Rect::square(100.0), 80, Placement::Uniform, 3).nodes();
/// let topo = Topology::build(nodes, 30.0)?;
/// let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
/// let route = gpsr.route(&topo, topo.nodes()[0].id, Point::new(90.0, 90.0))?;
/// assert_eq!(*route.path.last().unwrap(), route.delivered);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Gpsr {
    planar: PlanarGraph,
    metric: GreedyMetric,
}

impl Gpsr {
    /// Builds a router for `topology` using the given planarization and
    /// GPSR's default distance-greedy metric.
    pub fn new(topology: &Topology, method: Planarization) -> Self {
        Gpsr { planar: PlanarGraph::build(topology, method), metric: GreedyMetric::Distance }
    }

    /// Switches the greedy forwarding rule (routing-substrate ablation).
    pub fn with_metric(mut self, metric: GreedyMetric) -> Self {
        self.metric = metric;
        self
    }

    /// The greedy forwarding rule in use.
    pub fn metric(&self) -> GreedyMetric {
        self.metric
    }

    /// The planar graph used by perimeter mode.
    pub fn planar(&self) -> &PlanarGraph {
        &self.planar
    }

    /// Routes a packet from `from` toward the geographic `target`.
    ///
    /// Delivery follows GHT's *home node* semantics: the packet stops at the
    /// node closest to `target` on the face enclosing it — found when a
    /// perimeter tour of that face completes — or at the node lying exactly
    /// at `target` when one exists.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::HopBudgetExceeded`] if the packet fails to
    /// terminate within `10·n + 100` hops (pathological geometry only).
    pub fn route(
        &self,
        topology: &Topology,
        from: NodeId,
        target: Point,
    ) -> Result<Route, RouteError> {
        let budget = 10 * topology.len() + 100;
        let mut path = vec![from];
        let mut at = from;
        let mut greedy_hops = 0usize;
        let mut perimeter_hops = 0usize;
        let mut mode: Option<PerimeterState> = None;
        // Nodes visited on the current face since e0 was set, starting at
        // the face-entry node; used for home-node delivery when the tour
        // completes.
        let mut face_nodes: Vec<NodeId> = Vec::new();

        loop {
            if path.len() > budget {
                return Err(RouteError::HopBudgetExceeded { from, target });
            }
            // Exact arrival.
            if topology.position(at).distance_sq(target) < 1e-18 {
                return Ok(Route { path, delivered: at, greedy_hops, perimeter_hops });
            }

            match mode {
                None => {
                    if let Some(next) = greedy_next_by(topology, at, target, self.metric) {
                        at = next;
                        path.push(at);
                        greedy_hops += 1;
                    } else {
                        // Local minimum: enter perimeter mode on the face
                        // intersected by the line from here to the target.
                        let here = topology.position(at);
                        let ref_angle = here.angle_to(target);
                        let Some(next) = right_hand_next(&self.planar, topology, at, ref_angle)
                        else {
                            // No planar neighbors at all: deliver here.
                            return Ok(Route { path, delivered: at, greedy_hops, perimeter_hops });
                        };
                        mode =
                            Some(PerimeterState { lp: here, lf: here, e0: (at, next), prev: at });
                        face_nodes = vec![at];
                        at = next;
                        path.push(at);
                        perimeter_hops += 1;
                    }
                }
                Some(state) => {
                    let here = topology.position(at);
                    // Perimeter-mode exit: strictly closer than where we
                    // entered.
                    if here.distance_sq(target) < state.lp.distance_sq(target) - 1e-15 {
                        mode = None;
                        continue;
                    }
                    face_nodes.push(at);
                    let mut lf = state.lf;
                    let mut e0 = state.e0;
                    let ref_angle = here.angle_to(topology.position(state.prev));
                    let Some(mut candidate) =
                        right_hand_next(&self.planar, topology, at, ref_angle)
                    else {
                        return Ok(Route { path, delivered: at, greedy_hops, perimeter_hops });
                    };
                    // Face-change check: if the chosen edge crosses the
                    // line from the face entry point to the target at a
                    // point closer to the target, hop to the adjoining
                    // face instead of crossing the line.
                    let degree = self.planar.neighbors(at).len();
                    for _ in 0..=degree {
                        let cpos = topology.position(candidate);
                        if !segments_cross(here, cpos, lf, target) {
                            break;
                        }
                        let Some(xing) = line_intersection(here, cpos, lf, target) else {
                            break;
                        };
                        if xing.distance_sq(target) >= lf.distance_sq(target) {
                            break;
                        }
                        lf = xing;
                        let new_ref = here.angle_to(cpos);
                        match right_hand_next(&self.planar, topology, at, new_ref) {
                            Some(n) => {
                                candidate = n;
                                // New face: reset the first-edge marker and
                                // the face visit log.
                                e0 = (at, candidate);
                                face_nodes = vec![at];
                            }
                            None => break,
                        }
                    }
                    if (at, candidate) == e0 && face_nodes.len() > 1 {
                        // The tour of the face enclosing the target is
                        // complete: deliver at the face node closest to the
                        // target, continuing the walk to reach it.
                        return Ok(self.finish_tour(
                            topology,
                            path,
                            face_nodes,
                            target,
                            greedy_hops,
                            perimeter_hops,
                        ));
                    }
                    mode = Some(PerimeterState { lp: state.lp, lf, e0, prev: at });
                    at = candidate;
                    path.push(at);
                    perimeter_hops += 1;
                }
            }
        }
    }

    /// Routes to a specific node's position and verifies delivery.
    ///
    /// # Errors
    ///
    /// [`RouteError::NotDelivered`] if the packet stopped elsewhere (only
    /// possible when the planar graph is disconnected), plus any error from
    /// [`Gpsr::route`].
    pub fn route_to_node(
        &self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
    ) -> Result<Route, RouteError> {
        if from == to {
            return Ok(Route {
                path: vec![from],
                delivered: from,
                greedy_hops: 0,
                perimeter_hops: 0,
            });
        }
        let route = self.route(topology, from, topology.position(to))?;
        if route.delivered != to {
            return Err(RouteError::NotDelivered { to, delivered: route.delivered });
        }
        Ok(route)
    }

    /// Routes to `to` around an exclusion set: greedy and perimeter
    /// forwarding both run on the subgraph with `excluded` removed, exactly
    /// as the network would forward once those nodes stop acknowledging.
    /// Endpoints are exempt from exclusion; an empty set is the plain
    /// [`Gpsr::route_to_node`].
    ///
    /// The detour router is rebuilt per call (re-planarizing the reduced
    /// topology) — exclusion sets describe transient suspicions, so the
    /// result must never be memoized against the full topology.
    ///
    /// # Errors
    ///
    /// Any [`RouteError`] from routing on the reduced subgraph — including
    /// [`RouteError::NotDelivered`] when the exclusions disconnect the
    /// endpoints.
    pub fn route_to_node_avoiding(
        &self,
        topology: &Topology,
        from: NodeId,
        to: NodeId,
        excluded: &[NodeId],
    ) -> Result<Route, RouteError> {
        let dead: Vec<NodeId> =
            excluded.iter().copied().filter(|&n| n != from && n != to).collect();
        if dead.is_empty() {
            return self.route_to_node(topology, from, to);
        }
        let reduced = topology.without_nodes(&dead);
        let detour = Gpsr::new(&reduced, self.planar.method()).with_metric(self.metric);
        detour.route_to_node(&reduced, from, to)
    }

    /// Completes a perimeter tour: the best (closest-to-target) node on the
    /// toured face is the home node; the packet keeps walking the face until
    /// it reaches that node again, so those hops are charged too.
    fn finish_tour(
        &self,
        topology: &Topology,
        mut path: Vec<NodeId>,
        face_nodes: Vec<NodeId>,
        target: Point,
        greedy_hops: usize,
        mut perimeter_hops: usize,
    ) -> Route {
        let best_idx = face_nodes
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                // total_cmp: a NaN distance (corrupt target) must order
                // deterministically instead of panicking mid-tour.
                topology
                    .position(**a)
                    .distance_sq(target)
                    .total_cmp(&topology.position(**b).distance_sq(target))
                    .then(a.cmp(b))
            })
            .map(|(i, _)| i)
            .expect("face tour visited at least one node");
        // We are currently at face_nodes[0] (the tour returned to the first
        // edge). Re-walk the recorded face boundary to the home node.
        for &node in &face_nodes[1..=best_idx] {
            path.push(node);
            perimeter_hops += 1;
        }
        let delivered = *path.last().expect("path is never empty");
        Route { path, delivered, greedy_hops, perimeter_hops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_netsim::deployment::{Deployment, Placement};
    use pool_netsim::geometry::Rect;
    use pool_netsim::node::Node;

    fn random_connected(n: usize, side: f64, range: f64, mut seed: u64) -> Topology {
        loop {
            let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
            let topo = Topology::build(nodes, range).unwrap();
            if topo.is_connected() {
                return topo;
            }
            seed += 1000;
        }
    }

    #[test]
    fn consecutive_path_nodes_are_radio_neighbors() {
        let topo = random_connected(100, 120.0, 30.0, 1);
        let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
        let route = gpsr.route(&topo, NodeId(0), Point::new(115.0, 115.0)).unwrap();
        for w in route.path.windows(2) {
            assert!(w[0] == w[1] || topo.are_neighbors(w[0], w[1]), "{} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn route_to_every_node_delivers() {
        for seed in [2, 7, 19] {
            let topo = random_connected(80, 100.0, 30.0, seed);
            let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
            for dst in topo.nodes() {
                let route = gpsr.route_to_node(&topo, NodeId(0), dst.id);
                assert!(route.is_ok(), "seed {seed}: failed to reach {}: {route:?}", dst.id);
            }
        }
    }

    /// Regression: `finish_tour` picked the home node with
    /// `partial_cmp().unwrap()` over squared distances, so a NaN target
    /// (every distance NaN) panicked mid-tour. With `total_cmp` the route
    /// terminates — delivered somewhere, or a typed hop-budget error.
    #[test]
    fn nan_target_route_terminates_without_panicking() {
        for method in [Planarization::Gabriel, Planarization::RelativeNeighborhood] {
            let topo = random_connected(60, 80.0, 30.0, 11);
            let gpsr = Gpsr::new(&topo, method);
            let target = Point::new(f64::NAN, f64::NAN);
            match gpsr.route(&topo, NodeId(0), target) {
                Ok(route) => assert_eq!(*route.path.last().unwrap(), route.delivered),
                Err(RouteError::HopBudgetExceeded { from, .. }) => assert_eq!(from, NodeId(0)),
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn route_to_node_with_rng_planarization() {
        let topo = random_connected(80, 100.0, 30.0, 5);
        let gpsr = Gpsr::new(&topo, Planarization::RelativeNeighborhood);
        for dst in topo.nodes().iter().step_by(7) {
            assert!(gpsr.route_to_node(&topo, NodeId(3), dst.id).is_ok());
        }
    }

    #[test]
    fn location_routing_reaches_nearest_node_usually() {
        // Home-node semantics: on dense networks the delivered node should
        // almost always be the globally nearest node to the target.
        let topo = random_connected(150, 130.0, 30.0, 11);
        let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
        let mut agree = 0;
        let mut total = 0;
        for i in 0..60 {
            let target = Point::new((i as f64 * 37.0) % 130.0, (i as f64 * 53.0) % 130.0);
            let route = gpsr.route(&topo, NodeId(i % 150), target).unwrap();
            total += 1;
            if route.delivered == topo.nearest_node(target) {
                agree += 1;
            }
        }
        assert!(agree * 10 >= total * 9, "only {agree}/{total} delivered at nearest node");
    }

    #[test]
    fn delivered_node_is_local_minimum() {
        // Whatever node the packet stops at must be closer to the target
        // than all of its radio neighbors (no greedy progress possible).
        let topo = random_connected(120, 110.0, 28.0, 23);
        let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
        for i in 0..40 {
            let target = Point::new((i as f64 * 29.0) % 110.0, (i as f64 * 71.0) % 110.0);
            let route = gpsr.route(&topo, NodeId(i % 120), target).unwrap();
            let dd = topo.position(route.delivered).distance_sq(target);
            for &nb in topo.neighbors(route.delivered) {
                assert!(
                    topo.position(nb).distance_sq(target) >= dd - 1e-9,
                    "neighbor {nb} closer than delivery node {}",
                    route.delivered
                );
            }
        }
    }

    #[test]
    fn greedy_only_on_line_network() {
        let nodes: Vec<Node> =
            (0..6).map(|i| Node::new(NodeId(i), Point::new(i as f64 * 4.0, 0.0))).collect();
        let topo = Topology::build(nodes, 5.0).unwrap();
        let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
        let route = gpsr.route_to_node(&topo, NodeId(0), NodeId(5)).unwrap();
        assert_eq!(route.hops(), 5);
        assert_eq!(route.perimeter_hops, 0);
        assert_eq!(route.greedy_hops, 5);
    }

    #[test]
    fn perimeter_mode_escapes_a_void() {
        // A "C" shape: greedy from the west side toward a target east of the
        // opening gets stuck and must tour the void.
        let mut nodes = Vec::new();
        let mut id = 0u32;
        let mut add = |x: f64, y: f64, id: &mut u32| {
            nodes.push(Node::new(NodeId(*id), Point::new(x, y)));
            *id += 1;
        };
        // Left column of the C.
        for i in 0..5 {
            add(0.0, i as f64 * 4.0, &mut id);
        }
        // Top and bottom arms.
        for i in 1..5 {
            add(i as f64 * 4.0, 16.0, &mut id);
            add(i as f64 * 4.0, 0.0, &mut id);
        }
        // Target node beyond the opening of the C, reachable only around
        // the arms (bridged by two relay nodes on the east side).
        add(16.0, 12.0, &mut id);
        add(16.0, 4.0, &mut id);
        add(16.0, 8.0, &mut id);
        let topo = Topology::build(nodes, 5.0).unwrap();
        assert!(topo.is_connected());
        let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
        // Node 2 is the middle of the left column: straight-line progress is
        // blocked by the void inside the C.
        let route = gpsr.route_to_node(&topo, NodeId(2), NodeId(id - 1)).unwrap();
        assert!(route.perimeter_hops > 0, "expected perimeter hops, got {route:?}");
    }

    #[test]
    fn route_to_self_is_empty() {
        let topo = random_connected(30, 60.0, 25.0, 3);
        let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
        let route = gpsr.route_to_node(&topo, NodeId(4), NodeId(4)).unwrap();
        assert_eq!(route.hops(), 0);
        assert_eq!(route.delivered, NodeId(4));
    }

    #[test]
    fn hop_counts_are_consistent() {
        let topo = random_connected(90, 100.0, 28.0, 31);
        let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
        for i in 0..30 {
            let target = Point::new((i as f64 * 13.0) % 100.0, (i as f64 * 41.0) % 100.0);
            let r = gpsr.route(&topo, NodeId(i % 90), target).unwrap();
            assert_eq!(r.greedy_hops + r.perimeter_hops, r.hops());
            assert_eq!(*r.path.first().unwrap(), NodeId(i % 90));
            assert_eq!(*r.path.last().unwrap(), r.delivered);
        }
    }

    #[test]
    fn paper_scale_network_routes_everywhere() {
        // The paper's smallest setting: 300 nodes at degree ~20.
        let dep = Deployment::paper_setting(300, 40.0, 20.0, 4242).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if !topo.is_connected() {
            return; // rare with this density; skip rather than flake
        }
        let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
        for dst in topo.nodes().iter().step_by(13) {
            assert!(gpsr.route_to_node(&topo, NodeId(0), dst.id).is_ok());
        }
    }
}
