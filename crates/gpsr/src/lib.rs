//! # pool-gpsr — Greedy Perimeter Stateless Routing
//!
//! A from-scratch implementation of GPSR (Karp & Kung, MobiCom 2000), the
//! routing substrate that Pool, DIM, and GHT all assume (§2 of the Pool
//! paper):
//!
//! * [`greedy`] — greedy geographic forwarding to the neighbor closest to
//!   the destination.
//! * [`planar`] — distributed Gabriel-graph / relative-neighborhood-graph
//!   planarization of the unit-disk radio graph.
//! * [`perimeter`] — the right-hand rule for face traversal.
//! * [`router`] — the complete protocol with perimeter-mode recovery, face
//!   changes, and home-node delivery semantics for location-addressed
//!   packets.
//! * [`shortest`] — BFS hop-optimal routing, used only to validate GPSR's
//!   path stretch.
//!
//! # Examples
//!
//! ```
//! use pool_gpsr::{Gpsr, Planarization};
//! use pool_netsim::deployment::Deployment;
//! use pool_netsim::topology::Topology;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let deployment = Deployment::paper_setting(300, 40.0, 20.0, 7)?;
//! let topology = Topology::build(deployment.nodes(), 40.0)?;
//! let gpsr = Gpsr::new(&topology, Planarization::Gabriel);
//! let from = topology.nodes()[0].id;
//! let to = topology.nodes()[100].id;
//! let route = gpsr.route_to_node(&topology, from, to)?;
//! assert_eq!(route.delivered, to);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod beacon;
pub mod greedy;
pub mod perimeter;
pub mod planar;
pub mod router;
pub mod shortest;

pub use greedy::GreedyMetric;
pub use planar::{PlanarGraph, Planarization};
pub use router::{Gpsr, Route, RouteError};
