//! Distributed planarization of the unit-disk graph.
//!
//! GPSR's perimeter mode requires a planar subgraph of the radio graph.
//! Karp & Kung use either the **Gabriel graph** (GG) or the **relative
//! neighborhood graph** (RNG); both can be computed by each node from its
//! one-hop neighbor table alone, and both keep a connected unit-disk graph
//! connected.

use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;

/// Which planar subgraph to extract from the unit-disk graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Planarization {
    /// Gabriel graph: keep edge `(u, v)` iff no witness lies strictly inside
    /// the circle with diameter `u–v`. Denser than RNG.
    Gabriel,
    /// Relative neighborhood graph: keep edge `(u, v)` iff no witness `w`
    /// satisfies `max(d(u,w), d(v,w)) < d(u,v)`. A subgraph of the Gabriel
    /// graph.
    RelativeNeighborhood,
}

/// A planar subgraph of a unit-disk topology, with per-node neighbor lists
/// sorted by angle (the order perimeter traversal needs).
///
/// # Examples
///
/// ```
/// use pool_gpsr::planar::{PlanarGraph, Planarization};
/// use pool_netsim::deployment::{Deployment, Placement};
/// use pool_netsim::geometry::Rect;
/// use pool_netsim::topology::Topology;
///
/// let nodes = Deployment::new(Rect::square(80.0), 60, Placement::Uniform, 5).nodes();
/// let topo = Topology::build(nodes, 25.0).unwrap();
/// let planar = PlanarGraph::build(&topo, Planarization::Gabriel);
/// // The planar graph is a subgraph of the radio graph.
/// for node in topo.nodes() {
///     for &nb in planar.neighbors(node.id) {
///         assert!(topo.are_neighbors(node.id, nb));
///     }
/// }
/// ```
/// Stored as a flat CSR arena (one offsets array into one contiguous link
/// array) like [`Topology`]'s adjacency, so a 100k-node planarization is
/// two allocations rather than 100k.
#[derive(Debug, Clone)]
pub struct PlanarGraph {
    method: Planarization,
    /// The planar neighbors of node `i` are
    /// `links[offsets[i]..offsets[i + 1]]`, sorted by the angle of the edge.
    offsets: Vec<u32>,
    links: Vec<NodeId>,
}

impl PlanarGraph {
    /// Extracts the chosen planar subgraph from `topology`.
    pub fn build(topology: &Topology, method: Planarization) -> Self {
        let n = topology.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut links = Vec::new();
        let mut kept = Vec::new();
        offsets.push(0u32);
        for u in 0..n {
            let u = NodeId(u as u32);
            let pu = topology.position(u);
            kept.clear();
            kept.extend(
                topology
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&v| keep_edge(topology, method, u, v)),
            );
            kept.sort_by(|&a, &b| {
                let aa = pu.angle_to(topology.position(a));
                let ab = pu.angle_to(topology.position(b));
                // total_cmp: a NaN angle (undeployable position) must order
                // deterministically, not panic.
                aa.total_cmp(&ab).then(a.cmp(&b))
            });
            links.extend_from_slice(&kept);
            offsets.push(links.len() as u32);
        }
        PlanarGraph { method, offsets, links }
    }

    /// The planarization method used.
    pub fn method(&self) -> Planarization {
        self.method
    }

    /// The planar neighbors of `id`, sorted by edge angle in `(-π, π]`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.links[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Whether the undirected planar edge `(a, b)` exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.links.len() / 2
    }

    /// Size of the largest connected component of the planar graph.
    pub fn largest_component(&self) -> usize {
        let n = self.offsets.len() - 1;
        let mut seen = vec![false; n];
        let mut best = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            stack.push(start);
            let mut size = 0;
            while let Some(x) = stack.pop() {
                size += 1;
                for nb in self.neighbors(NodeId(x as u32)) {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        stack.push(nb.index());
                    }
                }
            }
            best = best.max(size);
        }
        best
    }
}

/// The distributed witness test for one directed edge. Both endpoints apply
/// the same symmetric predicate, so the resulting graph is undirected.
fn keep_edge(topology: &Topology, method: Planarization, u: NodeId, v: NodeId) -> bool {
    let pu = topology.position(u);
    let pv = topology.position(v);
    let duv_sq = pu.distance_sq(pv);
    // In a unit-disk graph every witness that can eliminate edge (u, v) is
    // within radio range of u, so scanning u's neighbor table suffices —
    // this is what makes the construction distributed.
    for &w in topology.neighbors(u) {
        if w == v {
            continue;
        }
        let pw = topology.position(w);
        let eliminated = match method {
            Planarization::Gabriel => {
                // Strictly inside the circle with diameter (u, v): the
                // midpoint test d(m, w) < d(u, v) / 2.
                let m = pu.midpoint(pv);
                m.distance_sq(pw) < duv_sq / 4.0 - 1e-12
            }
            Planarization::RelativeNeighborhood => {
                pu.distance_sq(pw) < duv_sq - 1e-12 && pv.distance_sq(pw) < duv_sq - 1e-12
            }
        };
        if eliminated {
            return false;
        }
    }
    true
}

/// Returns whether two planar edges (given by endpoint positions) cross,
/// re-exported for tests verifying planarity empirically.
pub fn edges_cross(a1: Point, a2: Point, b1: Point, b2: Point) -> bool {
    pool_netsim::geometry::segments_cross(a1, a2, b1, b2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_netsim::deployment::{Deployment, Placement};
    use pool_netsim::geometry::Rect;
    use pool_netsim::node::Node;

    fn random_topo(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    #[test]
    fn planar_graph_is_symmetric() {
        for method in [Planarization::Gabriel, Planarization::RelativeNeighborhood] {
            let topo = random_topo(80, 100.0, 30.0, 21);
            let g = PlanarGraph::build(&topo, method);
            for u in topo.nodes() {
                for &v in g.neighbors(u.id) {
                    assert!(g.has_edge(v, u.id), "{method:?}: edge {}–{v} not symmetric", u.id);
                }
            }
        }
    }

    #[test]
    fn rng_is_subgraph_of_gabriel() {
        let topo = random_topo(90, 100.0, 28.0, 33);
        let gg = PlanarGraph::build(&topo, Planarization::Gabriel);
        let rng = PlanarGraph::build(&topo, Planarization::RelativeNeighborhood);
        for u in topo.nodes() {
            for &v in rng.neighbors(u.id) {
                assert!(gg.has_edge(u.id, v));
            }
        }
        assert!(rng.edge_count() <= gg.edge_count());
    }

    #[test]
    fn planarization_preserves_connectivity() {
        for seed in [1, 2, 3, 4, 5] {
            let topo = random_topo(100, 100.0, 25.0, seed);
            if !topo.is_connected() {
                continue;
            }
            for method in [Planarization::Gabriel, Planarization::RelativeNeighborhood] {
                let g = PlanarGraph::build(&topo, method);
                assert_eq!(
                    g.largest_component(),
                    topo.len(),
                    "{method:?} disconnected seed {seed}"
                );
            }
        }
    }

    #[test]
    fn no_two_planar_edges_cross() {
        let topo = random_topo(70, 90.0, 30.0, 9);
        let g = PlanarGraph::build(&topo, Planarization::Gabriel);
        // Collect undirected edges once.
        let mut edges = Vec::new();
        for u in topo.nodes() {
            for &v in g.neighbors(u.id) {
                if u.id < v {
                    edges.push((u.id, v));
                }
            }
        }
        for (i, &(a, b)) in edges.iter().enumerate() {
            for &(c, d) in &edges[i + 1..] {
                if a == c || a == d || b == c || b == d {
                    continue;
                }
                assert!(
                    !edges_cross(
                        topo.position(a),
                        topo.position(b),
                        topo.position(c),
                        topo.position(d)
                    ),
                    "edges {a}-{b} and {c}-{d} cross"
                );
            }
        }
    }

    #[test]
    fn neighbors_sorted_by_angle() {
        let topo = random_topo(60, 80.0, 30.0, 14);
        let g = PlanarGraph::build(&topo, Planarization::Gabriel);
        for u in topo.nodes() {
            let angles: Vec<f64> =
                g.neighbors(u.id).iter().map(|&v| u.position.angle_to(topo.position(v))).collect();
            for w in angles.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn square_with_center_witness() {
        // Four corner nodes plus a center node: the Gabriel test must remove
        // the diagonals (center is inside their diameter circles) but keep
        // the sides.
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(10.0, 0.0)),
            Node::new(NodeId(2), Point::new(10.0, 10.0)),
            Node::new(NodeId(3), Point::new(0.0, 10.0)),
            Node::new(NodeId(4), Point::new(5.0, 5.0)),
        ];
        let topo = Topology::build(nodes, 20.0).unwrap();
        let g = PlanarGraph::build(&topo, Planarization::Gabriel);
        assert!(!g.has_edge(NodeId(0), NodeId(2)), "diagonal should be pruned");
        assert!(!g.has_edge(NodeId(1), NodeId(3)), "diagonal should be pruned");
        assert!(g.has_edge(NodeId(0), NodeId(1)), "side should remain");
        assert!(g.has_edge(NodeId(0), NodeId(4)), "spoke to center should remain");
    }

    /// Regression: the angle sort used `partial_cmp().unwrap()`, so a node
    /// with an undefined (NaN) position could panic planarization. With
    /// `total_cmp` the build completes and the NaN node is simply isolated
    /// (every distance test against NaN is false).
    #[test]
    fn nan_position_planarizes_without_panicking() {
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(5.0, 0.0)),
            Node::new(NodeId(2), Point::new(f64::NAN, f64::NAN)),
        ];
        let topo = Topology::build(nodes, 10.0).unwrap();
        for method in [Planarization::Gabriel, Planarization::RelativeNeighborhood] {
            let g = PlanarGraph::build(&topo, method);
            assert!(g.has_edge(NodeId(0), NodeId(1)), "{method:?}: finite edge survives");
            assert!(g.neighbors(NodeId(2)).is_empty(), "{method:?}: NaN node is isolated");
        }
    }

    #[test]
    fn isolated_node_has_no_planar_neighbors() {
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(100.0, 100.0)),
        ];
        let topo = Topology::build(nodes, 10.0).unwrap();
        let g = PlanarGraph::build(&topo, Planarization::Gabriel);
        assert!(g.neighbors(NodeId(0)).is_empty());
        assert_eq!(g.edge_count(), 0);
    }
}
