//! Hop-optimal BFS routing, used as a yardstick for GPSR's path stretch.
//!
//! Not part of the paper's protocols — real sensor nodes cannot afford
//! global state — but invaluable for validating that GPSR's paths are close
//! to optimal on the evaluated densities (an assumption the paper inherits
//! from Karp & Kung).

use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use std::collections::VecDeque;

/// Hop distance between two nodes via breadth-first search, or `None` if
/// they are disconnected.
///
/// # Examples
///
/// ```
/// use pool_gpsr::shortest::bfs_hops;
/// use pool_netsim::geometry::Point;
/// use pool_netsim::node::{Node, NodeId};
/// use pool_netsim::topology::Topology;
///
/// let nodes = vec![
///     Node::new(NodeId(0), Point::new(0.0, 0.0)),
///     Node::new(NodeId(1), Point::new(4.0, 0.0)),
///     Node::new(NodeId(2), Point::new(8.0, 0.0)),
/// ];
/// let topo = Topology::build(nodes, 5.0).unwrap();
/// assert_eq!(bfs_hops(&topo, NodeId(0), NodeId(2)), Some(2));
/// ```
pub fn bfs_hops(topology: &Topology, from: NodeId, to: NodeId) -> Option<usize> {
    if from == to {
        return Some(0);
    }
    let mut dist = vec![usize::MAX; topology.len()];
    dist[from.index()] = 0;
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        for &v in topology.neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = dist[u.index()] + 1;
                if v == to {
                    return Some(dist[v.index()]);
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// Hop distances from `from` to every node (usize::MAX when unreachable).
pub fn bfs_all(topology: &Topology, from: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; topology.len()];
    dist[from.index()] = 0;
    let mut queue = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        for &v in topology.neighbors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = dist[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planar::Planarization;
    use crate::router::Gpsr;
    use pool_netsim::deployment::{Deployment, Placement};
    use pool_netsim::geometry::Rect;

    #[test]
    fn bfs_disconnected_is_none() {
        use pool_netsim::geometry::Point;
        use pool_netsim::node::Node;
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(100.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 5.0).unwrap();
        assert_eq!(bfs_hops(&topo, NodeId(0), NodeId(1)), None);
        assert_eq!(bfs_all(&topo, NodeId(0))[1], usize::MAX);
    }

    #[test]
    fn bfs_all_matches_pairwise() {
        let nodes = Deployment::new(Rect::square(80.0), 50, Placement::Uniform, 17).nodes();
        let topo = Topology::build(nodes, 30.0).unwrap();
        let all = bfs_all(&topo, NodeId(0));
        for (i, &d) in all.iter().enumerate() {
            let pairwise = bfs_hops(&topo, NodeId(0), NodeId(i as u32));
            assert_eq!(pairwise.unwrap_or(usize::MAX), d);
        }
    }

    #[test]
    fn gpsr_never_beats_bfs_and_stretch_is_modest() {
        let dep = Deployment::paper_setting(200, 40.0, 20.0, 321).unwrap();
        let topo = Topology::build(dep.nodes(), 40.0).unwrap();
        if !topo.is_connected() {
            return;
        }
        let gpsr = Gpsr::new(&topo, Planarization::Gabriel);
        let opt = bfs_all(&topo, NodeId(0));
        let mut total_gpsr = 0usize;
        let mut total_opt = 0usize;
        for dst in topo.nodes().iter().step_by(5) {
            let route = gpsr.route_to_node(&topo, NodeId(0), dst.id).unwrap();
            assert!(route.hops() >= opt[dst.id.index()]);
            total_gpsr += route.hops();
            total_opt += opt[dst.id.index()];
        }
        // On dense uniform networks GPSR is near-optimal (stretch well
        // under 2 in aggregate).
        assert!(
            (total_gpsr as f64) < 2.0 * total_opt as f64 + 10.0,
            "gpsr {total_gpsr} vs optimal {total_opt}"
        );
    }
}
