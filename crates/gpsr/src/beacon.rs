//! Distributed neighbor discovery via beacon exchange.
//!
//! The paper assumes "each node maintains a neighbor table via periodic
//! exchange of beacon messages" (§2). [`pool_netsim::topology::Topology`]
//! computes those tables analytically; this module *derives them the way
//! real firmware would* — every node broadcasts HELLO beacons carrying its
//! id and position, and receivers record the sender — then proves the two
//! agree. The exchange runs directly on the deterministic
//! [`pool_netsim::schedule::EventQueue`] with a strict radio model: a send
//! to a non-neighbor is an error, exactly as on real hardware.

use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::schedule::EventQueue;
use pool_netsim::topology::Topology;
use std::collections::BTreeSet;
use std::fmt;

/// Per-hop beacon propagation latency, in seconds.
const BEACON_HOP_LATENCY: f64 = 1e-3;

/// A HELLO beacon: the sender's identity and location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hello {
    /// Beaconing node.
    pub from: NodeId,
    /// Its position (receivers store it for greedy forwarding).
    pub position: Point,
}

/// A rejected radio operation during a beacon round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeaconError {
    /// A node attempted to transmit to a node outside its radio range.
    NotANeighbor {
        /// The transmitting node.
        from: NodeId,
        /// The intended receiver.
        to: NodeId,
    },
}

impl fmt::Display for BeaconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BeaconError::NotANeighbor { from, to } => {
                write!(f, "{from} cannot reach {to}: not a radio neighbor")
            }
        }
    }
}

impl std::error::Error for BeaconError {}

/// The discovered state of a beacon round: per-node neighbor tables.
#[derive(Debug)]
pub struct BeaconProtocol {
    tables: Vec<BTreeSet<NodeId>>,
    positions: Vec<Vec<(NodeId, Point)>>,
}

impl BeaconProtocol {
    fn new(n: usize) -> Self {
        BeaconProtocol { tables: vec![BTreeSet::new(); n], positions: vec![Vec::new(); n] }
    }

    /// The neighbor table node `id` discovered, sorted by id.
    pub fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        self.tables[id.index()].iter().copied().collect()
    }

    /// The positions node `id` learned from beacons.
    pub fn known_positions(&self, id: NodeId) -> &[(NodeId, Point)] {
        &self.positions[id.index()]
    }

    fn hear(&mut self, at: NodeId, hello: Hello) {
        if self.tables[at.index()].insert(hello.from) {
            self.positions[at.index()].push((hello.from, hello.position));
        }
    }
}

/// Runs one full beacon round over `topology` and returns the discovered
/// tables.
///
/// A radio broadcast reaches every node in range; the event queue models
/// it as one unicast per neighbor (the message count matches a
/// per-neighbor-acked beacon), each arriving one hop latency after the
/// broadcast fires. Ties pop in insertion order, so the round is fully
/// deterministic.
///
/// # Errors
///
/// Returns [`BeaconError::NotANeighbor`] if a beacon targets a node out of
/// radio range (impossible for tables derived from the topology itself).
pub fn discover_neighbors(topology: &Topology) -> Result<BeaconProtocol, BeaconError> {
    let n = topology.len();
    let mut protocol = BeaconProtocol::new(n);
    let mut queue: EventQueue<(NodeId, NodeId, Hello)> = EventQueue::new();
    for node in topology.nodes() {
        if !topology.is_alive(node.id) {
            continue;
        }
        let hello = Hello { from: node.id, position: node.position };
        for &nb in topology.neighbors(node.id) {
            queue
                .schedule(BEACON_HOP_LATENCY, (node.id, nb, hello))
                .expect("beacon broadcast scheduled at a fixed positive time");
        }
    }
    while let Some((_, (from, to, hello))) = queue.pop() {
        if !topology.neighbors(from).contains(&to) {
            return Err(BeaconError::NotANeighbor { from, to });
        }
        protocol.hear(to, hello);
    }
    Ok(protocol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_netsim::deployment::{Deployment, Placement};
    use pool_netsim::geometry::Rect;

    fn topo(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    #[test]
    fn discovered_tables_match_analytic_tables() {
        let topology = topo(80, 100.0, 30.0, 4);
        let discovered = discover_neighbors(&topology).unwrap();
        for node in topology.nodes() {
            assert_eq!(
                discovered.neighbors(node.id),
                topology.neighbors(node.id).to_vec(),
                "node {}",
                node.id
            );
        }
    }

    #[test]
    fn discovered_positions_are_correct() {
        let topology = topo(40, 60.0, 25.0, 5);
        let discovered = discover_neighbors(&topology).unwrap();
        for node in topology.nodes() {
            for &(nb, pos) in discovered.known_positions(node.id) {
                assert_eq!(pos, topology.position(nb));
            }
        }
    }

    #[test]
    fn dead_nodes_do_not_beacon_and_are_not_discovered() {
        let topology = topo(50, 70.0, 30.0, 6);
        let dead = NodeId(7);
        let failed = topology.without_nodes(&[dead]);
        let discovered = discover_neighbors(&failed).unwrap();
        assert!(discovered.neighbors(dead).is_empty());
        for node in failed.nodes() {
            assert!(
                !discovered.neighbors(node.id).contains(&dead),
                "{} still knows the dead node",
                node.id
            );
        }
    }

    #[test]
    fn isolated_node_discovers_nothing() {
        use pool_netsim::node::Node;
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(500.0, 500.0)),
        ];
        let topology = Topology::build(nodes, 10.0).unwrap();
        let discovered = discover_neighbors(&topology).unwrap();
        assert!(discovered.neighbors(NodeId(0)).is_empty());
        assert!(discovered.neighbors(NodeId(1)).is_empty());
    }
}
