//! Greedy geographic forwarding.
//!
//! GPSR's default greedy rule forwards to the neighbor closest to the
//! destination, but the geographic-routing literature offers alternatives
//! with different trade-offs; [`GreedyMetric`] implements the classic
//! three so the routing substrate can be ablated.

use pool_netsim::geometry::Point;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;

/// The rule used to pick the next greedy hop among neighbors that make
/// progress toward the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GreedyMetric {
    /// Minimize remaining Euclidean distance (GPSR's rule; the default).
    #[default]
    Distance,
    /// Most Forward within Radius: maximize progress along the straight
    /// line to the destination (Takagi & Kleinrock).
    MostForward,
    /// Compass routing: minimize the angle between the neighbor direction
    /// and the destination direction (Kranakis et al.).
    Compass,
}

/// Like [`greedy_next`] but with a configurable forwarding metric.
///
/// All metrics only consider neighbors *strictly closer* to the target
/// than the current node, so every variant retains GPSR's loop-freedom and
/// falls back to perimeter mode at the same local minima.
pub fn greedy_next_by(
    topology: &Topology,
    at: NodeId,
    target: Point,
    metric: GreedyMetric,
) -> Option<NodeId> {
    let own_pos = topology.position(at);
    let own = own_pos.distance_sq(target);
    let mut best: Option<(f64, NodeId)> = None;
    for &nb in topology.neighbors(at) {
        let nb_pos = topology.position(nb);
        let d = nb_pos.distance_sq(target);
        if d >= own {
            continue; // only strict progress keeps routing loop-free
        }
        // Smaller score is better for every metric.
        let score = match metric {
            GreedyMetric::Distance => d,
            GreedyMetric::MostForward => {
                // Progress = projection of the step onto the line to the
                // target; maximize it, i.e. minimize its negation.
                let to_target = target.sub(own_pos);
                let step = nb_pos.sub(own_pos);
                let norm = to_target.distance(Point::new(0.0, 0.0));
                -(step.x * to_target.x + step.y * to_target.y) / norm.max(1e-12)
            }
            GreedyMetric::Compass => {
                let a1 = own_pos.angle_to(target);
                let a2 = own_pos.angle_to(nb_pos);
                let mut diff = (a1 - a2).abs();
                if diff > std::f64::consts::PI {
                    diff = std::f64::consts::TAU - diff;
                }
                diff
            }
        };
        let better = match best {
            None => true,
            Some((bs, bid)) => score < bs || (score == bs && nb < bid),
        };
        if better {
            best = Some((score, nb));
        }
    }
    best.map(|(_, id)| id)
}

/// The neighbor of `at` strictly closer to `target` than `at` itself, or
/// `None` when `at` is a local minimum (which triggers perimeter mode).
///
/// Among qualifying neighbors the one closest to the target is chosen, with
/// ties broken by lower node id to keep routing deterministic.
///
/// # Examples
///
/// ```
/// use pool_gpsr::greedy::greedy_next;
/// use pool_netsim::geometry::Point;
/// use pool_netsim::node::{Node, NodeId};
/// use pool_netsim::topology::Topology;
///
/// let nodes = vec![
///     Node::new(NodeId(0), Point::new(0.0, 0.0)),
///     Node::new(NodeId(1), Point::new(5.0, 0.0)),
///     Node::new(NodeId(2), Point::new(10.0, 0.0)),
/// ];
/// let topo = Topology::build(nodes, 6.0).unwrap();
/// assert_eq!(greedy_next(&topo, NodeId(0), Point::new(10.0, 0.0)), Some(NodeId(1)));
/// assert_eq!(greedy_next(&topo, NodeId(2), Point::new(10.0, 0.0)), None);
/// ```
pub fn greedy_next(topology: &Topology, at: NodeId, target: Point) -> Option<NodeId> {
    let own = topology.position(at).distance_sq(target);
    let mut best: Option<(f64, NodeId)> = None;
    for &nb in topology.neighbors(at) {
        let d = topology.position(nb).distance_sq(target);
        if d < own {
            let better = match best {
                None => true,
                Some((bd, bid)) => d < bd || (d == bd && nb < bid),
            };
            if better {
                best = Some((d, nb));
            }
        }
    }
    best.map(|(_, id)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_netsim::node::Node;

    fn line_topology() -> Topology {
        let nodes = (0..5).map(|i| Node::new(NodeId(i), Point::new(i as f64 * 4.0, 0.0))).collect();
        Topology::build(nodes, 5.0).unwrap()
    }

    #[test]
    fn greedy_walks_toward_target() {
        let topo = line_topology();
        let target = Point::new(16.0, 0.0);
        let mut at = NodeId(0);
        let mut hops = 0;
        while let Some(next) = greedy_next(&topo, at, target) {
            at = next;
            hops += 1;
            assert!(hops < 10, "greedy looped");
        }
        assert_eq!(at, NodeId(4));
        assert_eq!(hops, 4);
    }

    #[test]
    fn local_minimum_returns_none() {
        // A gap: node 1 is closest to the target but cannot reach it.
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(4.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 5.0).unwrap();
        assert_eq!(greedy_next(&topo, NodeId(1), Point::new(20.0, 0.0)), None);
    }

    #[test]
    fn equidistant_neighbor_is_not_progress() {
        // Two nodes equidistant from the target: neither is strictly closer,
        // so no greedy progress (prevents ping-pong loops).
        let nodes = vec![
            Node::new(NodeId(0), Point::new(-1.0, 0.0)),
            Node::new(NodeId(1), Point::new(1.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 5.0).unwrap();
        assert_eq!(greedy_next(&topo, NodeId(0), Point::new(0.0, 5.0)), None);
    }

    #[test]
    fn tie_breaks_by_lower_id() {
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(1.0, 1.0)),
            Node::new(NodeId(2), Point::new(1.0, -1.0)),
        ];
        let topo = Topology::build(nodes, 5.0).unwrap();
        // Both neighbors are equally close to the target.
        assert_eq!(greedy_next(&topo, NodeId(0), Point::new(3.0, 0.0)), Some(NodeId(1)));
    }
}

#[cfg(test)]
mod metric_tests {
    use super::*;
    use crate::router::Gpsr;
    use crate::Planarization;
    use pool_netsim::deployment::{Deployment, Placement};
    use pool_netsim::geometry::Rect;

    fn connected(n: usize, mut seed: u64) -> Topology {
        loop {
            let nodes = Deployment::new(Rect::square(100.0), n, Placement::Uniform, seed).nodes();
            let topo = Topology::build(nodes, 30.0).unwrap();
            if topo.is_connected() {
                return topo;
            }
            seed += 1;
        }
    }

    #[test]
    fn distance_metric_matches_greedy_next() {
        let topo = connected(80, 5);
        let target = Point::new(90.0, 90.0);
        for node in topo.nodes() {
            assert_eq!(
                greedy_next_by(&topo, node.id, target, GreedyMetric::Distance),
                greedy_next(&topo, node.id, target)
            );
        }
    }

    #[test]
    fn all_metrics_only_make_strict_progress() {
        let topo = connected(80, 6);
        let target = Point::new(10.0, 80.0);
        for metric in [GreedyMetric::Distance, GreedyMetric::MostForward, GreedyMetric::Compass] {
            for node in topo.nodes() {
                if let Some(next) = greedy_next_by(&topo, node.id, target, metric) {
                    assert!(
                        topo.position(next).distance_sq(target)
                            < topo.position(node.id).distance_sq(target),
                        "{metric:?} failed to make progress at {}",
                        node.id
                    );
                }
            }
        }
    }

    #[test]
    fn every_metric_delivers_end_to_end() {
        let topo = connected(90, 7);
        for metric in [GreedyMetric::Distance, GreedyMetric::MostForward, GreedyMetric::Compass] {
            let gpsr = Gpsr::new(&topo, Planarization::Gabriel).with_metric(metric);
            for dst in topo.nodes().iter().step_by(9) {
                let route = gpsr.route_to_node(&topo, NodeId(0), dst.id);
                assert!(route.is_ok(), "{metric:?} failed to reach {}: {route:?}", dst.id);
            }
        }
    }

    #[test]
    fn metrics_can_choose_different_neighbors() {
        // On random dense graphs the three rules usually agree near the
        // target but diverge somewhere; just assert they are all valid and
        // at least one divergence exists across the network.
        let topo = connected(120, 8);
        let target = Point::new(95.0, 5.0);
        let mut diverged = false;
        for node in topo.nodes() {
            let d = greedy_next_by(&topo, node.id, target, GreedyMetric::Distance);
            let m = greedy_next_by(&topo, node.id, target, GreedyMetric::MostForward);
            let c = greedy_next_by(&topo, node.id, target, GreedyMetric::Compass);
            if d != m || d != c {
                diverged = true;
            }
        }
        assert!(diverged, "expected at least one divergence between metrics");
    }
}
