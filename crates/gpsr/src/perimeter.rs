//! The right-hand rule used by GPSR's perimeter mode.

use crate::planar::PlanarGraph;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use std::f64::consts::TAU;

/// Picks the planar neighbor of `at` that is next counterclockwise from the
/// reference direction `ref_angle` (radians).
///
/// This is GPSR's right-hand rule: sweeping counterclockwise about `at`
/// starting *just after* `ref_angle`, the first planar edge found is
/// traversed. An edge lying exactly at `ref_angle` (the incoming edge) is
/// considered a full turn away, so a dead-end node correctly bounces the
/// packet back along the edge it arrived on.
///
/// Returns `None` only when `at` has no planar neighbors.
///
/// # Examples
///
/// ```
/// use pool_gpsr::perimeter::right_hand_next;
/// use pool_gpsr::planar::{PlanarGraph, Planarization};
/// use pool_netsim::geometry::Point;
/// use pool_netsim::node::{Node, NodeId};
/// use pool_netsim::topology::Topology;
///
/// // Node 0 at the origin with neighbors east (1) and north (2).
/// let nodes = vec![
///     Node::new(NodeId(0), Point::new(0.0, 0.0)),
///     Node::new(NodeId(1), Point::new(1.0, 0.0)),
///     Node::new(NodeId(2), Point::new(0.0, 1.0)),
/// ];
/// let topo = Topology::build(nodes, 1.5).unwrap();
/// let planar = PlanarGraph::build(&topo, Planarization::Gabriel);
/// // Sweeping CCW from the east direction, the north edge comes first.
/// let next = right_hand_next(&planar, &topo, NodeId(0), 0.0);
/// assert_eq!(next, Some(NodeId(2)));
/// ```
pub fn right_hand_next(
    planar: &PlanarGraph,
    topology: &Topology,
    at: NodeId,
    ref_angle: f64,
) -> Option<NodeId> {
    let pos = topology.position(at);
    let mut best: Option<(f64, NodeId)> = None;
    for &nb in planar.neighbors(at) {
        let angle = pos.angle_to(topology.position(nb));
        let mut delta = (angle - ref_angle) % TAU;
        if delta <= 1e-12 {
            delta += TAU;
        }
        let better = match best {
            None => true,
            Some((bd, bid)) => delta < bd || (delta == bd && nb < bid),
        };
        if better {
            best = Some((delta, nb));
        }
    }
    best.map(|(_, id)| id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planar::Planarization;
    use pool_netsim::geometry::Point;
    use pool_netsim::node::Node;

    /// A plus-shaped neighborhood: center 0, east 1, north 2, west 3,
    /// south 4.
    fn plus_topology() -> (Topology, PlanarGraph) {
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(1.0, 0.0)),
            Node::new(NodeId(2), Point::new(0.0, 1.0)),
            Node::new(NodeId(3), Point::new(-1.0, 0.0)),
            Node::new(NodeId(4), Point::new(0.0, -1.0)),
        ];
        let topo = Topology::build(nodes, 1.2).unwrap();
        let planar = PlanarGraph::build(&topo, Planarization::Gabriel);
        (topo, planar)
    }

    #[test]
    fn sweeps_counterclockwise() {
        let (topo, planar) = plus_topology();
        // From the east direction, CCW order is north, west, south, east.
        assert_eq!(right_hand_next(&planar, &topo, NodeId(0), 0.0), Some(NodeId(2)));
        // From the north direction, next CCW is west.
        let north = std::f64::consts::FRAC_PI_2;
        assert_eq!(right_hand_next(&planar, &topo, NodeId(0), north), Some(NodeId(3)));
    }

    #[test]
    fn incoming_edge_is_last_resort() {
        // Node 1 has only the center as neighbor: the packet must bounce
        // back along the incoming edge.
        let (topo, planar) = plus_topology();
        let incoming = topo.position(NodeId(1)).angle_to(topo.position(NodeId(0)));
        // ref_angle is the direction back toward where the packet came from
        // reversed; at a dead end the only option is the same edge again.
        assert_eq!(right_hand_next(&planar, &topo, NodeId(1), incoming), Some(NodeId(0)));
    }

    #[test]
    fn no_neighbors_yields_none() {
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(50.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 1.0).unwrap();
        let planar = PlanarGraph::build(&topo, Planarization::Gabriel);
        assert_eq!(right_hand_next(&planar, &topo, NodeId(0), 0.0), None);
    }

    #[test]
    fn full_face_walk_returns_to_start() {
        // Walking a triangle face with the right-hand rule must come back to
        // the starting directed edge after traversing the face boundary.
        let nodes = vec![
            Node::new(NodeId(0), Point::new(0.0, 0.0)),
            Node::new(NodeId(1), Point::new(2.0, 0.0)),
            Node::new(NodeId(2), Point::new(1.0, 1.5)),
        ];
        let topo = Topology::build(nodes, 3.0).unwrap();
        let planar = PlanarGraph::build(&topo, Planarization::Gabriel);
        let mut prev = NodeId(0);
        let mut at = NodeId(1); // first directed edge 0 -> 1
        let mut walked = vec![prev, at];
        for _ in 0..3 {
            let ref_angle = topo.position(at).angle_to(topo.position(prev));
            let next = right_hand_next(&planar, &topo, at, ref_angle).unwrap();
            prev = at;
            at = next;
            walked.push(at);
        }
        // Face traversal visits every triangle vertex and returns.
        assert_eq!(walked[0], walked[3]);
        assert_eq!(walked[1], walked[4]);
    }
}
