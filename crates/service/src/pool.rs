//! Pool backend: sharded by pool dimension.
//!
//! Pool's §3.2.3 forwarding tree makes per-pool sharding *exact*: a
//! query is one independent branch per relevant pool, launched in
//! parallel from the sink, so handing each pool's branch to the shard
//! that owns it reproduces the monolithic system's messages, ledger
//! charges, and per-branch virtual time — the full query's elapsed time
//! is the max over branches either way. Inserts land in exactly one
//! pool (the Theorem 3.1 storage cell), monitors decompose like queries.
//!
//! Every shard holds a full [`PoolSystem`] built over the shared
//! topology with the *same* config/seed — so all shards agree on the
//! grid, layout, and index-node election — but only ever executes
//! operations restricted to its owned pools, keeping the mutable halves
//! (stores, monitor tables, ledgers, clocks) disjoint.

use crate::backend::{merge_overlapping_queries, ServiceBackend};
use crate::request::{Request, ShardResponse};
use pool_core::config::PoolConfig;
use pool_core::grid::{CellCoord, Grid};
use pool_core::insert::{storage_cell, InsertError};
use pool_core::layout::PoolLayout;
use pool_core::resolve::relevant_cells;
use pool_core::system::PoolSystem;
use pool_core::PoolError;
use pool_netsim::geometry::Rect;
use pool_netsim::topology::Topology;
use std::sync::Arc;

/// Encodes a `(pool dim, cell)` slice as an opaque id (dims and grid
/// coordinates are all far below 2^20).
fn cell_id(dim: usize, cell: CellCoord) -> u64 {
    ((dim as u64) << 40) | (u64::from(cell.x) << 20) | u64::from(cell.y)
}

/// The immutable router half of a sharded Pool deployment.
#[derive(Debug)]
pub struct PoolBackend {
    topology: Arc<Topology>,
    grid: Grid,
    layout: PoolLayout,
    /// Pool dim → owning shard (round-robin).
    shard_of_pool: Vec<usize>,
    shards: usize,
}

/// One shard: a full Pool system restricted to `pools`.
#[derive(Debug)]
pub struct PoolShard {
    /// The shard's system instance (own transport/ledger/clock/tracer).
    pub system: PoolSystem,
    /// The pool dimensions this shard owns.
    pub pools: Vec<usize>,
}

impl PoolBackend {
    /// Builds the router and its shards over one shared topology.
    /// `shards` is clamped to `1..=config.dims` (a pool is the unit of
    /// ownership).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PoolSystem::build`].
    pub fn build(
        topology: Topology,
        field: Rect,
        config: PoolConfig,
        shards: usize,
    ) -> Result<(Self, Vec<PoolShard>), PoolError> {
        config.validate()?;
        let topology = Arc::new(topology);
        let shards = shards.clamp(1, config.dims);
        // The router derives the grid/layout exactly as PoolSystem::build
        // does, so router-side placement agrees with every shard.
        let grid = Grid::over(field, config.alpha)?;
        let layout = match &config.pivots {
            Some(pivots) => PoolLayout::with_pivots(&grid, config.pool_side, pivots.clone())?,
            None => PoolLayout::random(&grid, config.dims, config.pool_side, config.seed)?,
        };
        let shard_of_pool: Vec<usize> = (0..config.dims).map(|d| d % shards).collect();
        let mut shard_state = Vec::with_capacity(shards);
        for s in 0..shards {
            let system = PoolSystem::build_shared(Arc::clone(&topology), field, config.clone())?;
            let pools = (0..config.dims).filter(|&d| shard_of_pool[d] == s).collect();
            shard_state.push(PoolShard { system, pools });
        }
        debug_assert!(shard_state
            .iter()
            .all(|sh| sh.system.layout() == &layout && sh.system.grid() == &grid));
        Ok((PoolBackend { topology, grid, layout, shard_of_pool, shards }, shard_state))
    }

    fn placement_of(
        &self,
        source: pool_netsim::node::NodeId,
        event: &pool_core::event::Event,
    ) -> pool_core::insert::Placement {
        let detected = self.grid.cell_of(self.topology.position(source));
        storage_cell(&self.layout, &self.grid, event, detected)
    }
}

impl ServiceBackend for PoolBackend {
    type Shard = PoolShard;

    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shards_of(&self, request: &Request) -> Vec<usize> {
        match request {
            Request::Insert { source, event } => {
                vec![self.shard_of_pool[self.placement_of(*source, event).pool_dim]]
            }
            Request::Query { query, .. } | Request::Monitor { query, .. } => {
                let mut shards: Vec<usize> = relevant_cells(&self.layout, query)
                    .iter()
                    .map(|&(dim, _)| self.shard_of_pool[dim])
                    .collect();
                shards.sort_unstable();
                shards.dedup();
                shards
            }
            other => panic!("pool backend cannot serve {other:?}"),
        }
    }

    fn relevant_ids(&self, request: &Request) -> Vec<u64> {
        match request {
            Request::Insert { source, event } => {
                let p = self.placement_of(*source, event);
                vec![cell_id(p.pool_dim, p.cell)]
            }
            Request::Query { query, .. } | Request::Monitor { query, .. } => {
                relevant_cells(&self.layout, query)
                    .iter()
                    .map(|&(dim, cell)| cell_id(dim, cell))
                    .collect()
            }
            other => panic!("pool backend cannot serve {other:?}"),
        }
    }

    fn execute(&self, shard: &mut PoolShard, request: &Request) -> ShardResponse {
        let mut out = ShardResponse::default();
        match request {
            Request::Insert { source, event } => {
                match shard.system.insert_from(*source, event.clone()) {
                    Ok(receipt) => {
                        out.messages = receipt.messages;
                        out.delivered = true;
                        out.elapsed = receipt.elapsed;
                    }
                    Err(InsertError::Undeliverable { transmissions, .. }) => {
                        let p = self.placement_of(*source, event);
                        out.messages = transmissions;
                        out.unreached = vec![cell_id(p.pool_dim, p.cell)];
                        out.elapsed = 0.0;
                    }
                    Err(InsertError::Pool(e)) => panic!("pool insert failed: {e}"),
                }
            }
            Request::Query { sink, query } => {
                let result = shard
                    .system
                    .query_pools_from(*sink, query, &shard.pools)
                    .expect("restricted pool query");
                out.events = result.events;
                out.messages = result.cost.total();
                out.retransmissions = result.cost.retransmit_messages;
                out.unreached = result
                    .completeness
                    .unreached_cells
                    .iter()
                    .map(|&(dim, cell)| cell_id(dim, cell))
                    .collect();
                out.delivered = result.completeness.is_complete();
                out.elapsed = result.cost.elapsed;
            }
            Request::Monitor { sink, query } => {
                let install = shard
                    .system
                    .install_monitor_pools(*sink, query.clone(), &shard.pools)
                    .expect("restricted monitor install");
                out.messages = install.cost.total();
                out.retransmissions = install.cost.retransmit_messages;
                out.unreached = install
                    .completeness
                    .unreached_cells
                    .iter()
                    .map(|&(dim, cell)| cell_id(dim, cell))
                    .collect();
                out.delivered = install.completeness.is_complete();
                out.elapsed = install.cost.elapsed;
            }
            other => panic!("pool backend cannot serve {other:?}"),
        }
        out.end = shard.system.transport().clock().now();
        out
    }

    fn seek(&self, shard: &mut PoolShard, t: f64) {
        shard.system.transport_mut().clock_mut().seek(t);
    }

    fn now(&self, shard: &PoolShard) -> f64 {
        shard.system.transport().clock().now()
    }

    fn ledger<'a>(&self, shard: &'a PoolShard) -> &'a pool_transport::TrafficLedger {
        shard.system.ledger()
    }

    fn try_merge(&self, merged: &Request, next: &Request) -> Option<Request> {
        match (merged, next) {
            (Request::Query { sink: sa, query: qa }, Request::Query { sink: sb, query: qb }) => {
                merge_overlapping_queries(*sa, qa, *sb, qb)
                    .map(|query| Request::Query { sink: *sa, query })
            }
            _ => None,
        }
    }
}
