//! Pool as a service: a sharded, thread-safe query front end.
//!
//! The simulator's systems ([`PoolSystem`](pool_core::system::PoolSystem),
//! [`DimSystem`](pool_dim::DimSystem), [`GhtTable`](pool_ght::GhtTable))
//! are single-threaded state machines: one `&mut self` owner at a time.
//! That is the right shape for figure harnesses, but a deployed sink is
//! a *service* — thousands of clients querying one network concurrently.
//! This crate closes that gap without forking the systems:
//!
//! * **Sharding by data-space ownership.** A deployment is split into
//!   shards along the scheme's natural partition key — Pool's pool
//!   dimensions (exact, by the §3.2.3 per-pool decomposition), DIM's
//!   zones, GHT's key hash. Each shard owns a full system instance over
//!   one shared, immutable [`Arc<Topology>`](pool_netsim::topology::Topology)
//!   but stores and answers only its slice, so shards never contend on
//!   mutable state.
//! * **Routing without locks.** The immutable router half
//!   ([`ServiceBackend`]) answers "which shards, which data slices"
//!   from shared placement metadata; an operation locks only the shards
//!   it touches, in ascending order (no deadlocks).
//! * **Admission and coalescing.** An open-loop schedule passes through
//!   fixed virtual-time windows where same-sink overlapping reads merge
//!   into one executed unit (bounding-box union — member answers are
//!   exact filters of the unit answer). Unit cost is split integrally
//!   among members, so the ledger conservation identity survives
//!   coalescing to the message.
//! * **Deterministic parallel serve.** Per-shard queues execute
//!   serially at seeked virtual times while shards run on the workspace
//!   worker pool; outcomes are byte-identical for any `--jobs`.
//!
//! ```
//! use pool_core::config::PoolConfig;
//! use pool_core::query::RangeQuery;
//! use pool_netsim::deployment::Deployment;
//! use pool_netsim::topology::Topology;
//! use pool_service::{AdmissionConfig, PoolBackend, Request, ScheduledRequest, ServiceHandle};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let deployment = Deployment::paper_setting(300, 40.0, 20.0, 11)?;
//! let field = deployment.field();
//! let sink = deployment.nodes()[42].id;
//! let topology = Topology::build(deployment.nodes(), 40.0)?;
//! let (backend, shards) = PoolBackend::build(topology, field, PoolConfig::paper(), 3)?;
//! let service = ServiceHandle::new(backend, shards);
//!
//! let schedule: Vec<ScheduledRequest> = (0..8)
//!     .map(|i| ScheduledRequest {
//!         arrival: i as f64 * 0.01,
//!         request: Request::Query {
//!             sink,
//!             query: RangeQuery::exact(vec![(0.2, 0.6), (0.1, 0.5), (0.3, 0.9)]).unwrap(),
//!         },
//!     })
//!     .collect();
//! let outcome = service.serve(&schedule, &AdmissionConfig::default(), 4);
//! assert_eq!(outcome.responses.len(), 8);
//! assert!(outcome.coalesced_requests > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod backend;
pub mod dim;
pub mod ght;
pub mod handle;
pub mod pool;
pub mod request;

pub use admission::AdmissionConfig;
pub use backend::ServiceBackend;
pub use dim::{DimBackend, DimShard};
pub use ght::{GhtBackend, GhtShard};
pub use handle::ServiceHandle;
pub use pool::{PoolBackend, PoolShard};
pub use request::{Request, Response, ScheduledRequest, ServeOutcome, ShardResponse};
