//! The sharded, `Sync` front door of a deployment.
//!
//! A [`ServiceHandle`] owns one immutable router (the
//! [`ServiceBackend`] impl) and a vector of mutex-wrapped shards. Many
//! threads may hold `&ServiceHandle` simultaneously: the router answers
//! placement questions without any lock, and an operation locks only
//! the shards it actually touches.
//!
//! # Two execution paths
//!
//! * [`submit`](ServiceHandle::submit) — execute one request right now,
//!   from any thread. This is the concurrent-correctness surface: N
//!   threads submitting disjoint-shard requests proceed in parallel,
//!   and the result of any interleaving equals the serial reference
//!   because shards share no mutable state.
//! * [`serve`](ServiceHandle::serve) — replay an open-loop virtual-time
//!   schedule through admission (batching + coalescing) and a
//!   deterministic parallel executor. Shards run concurrently via the
//!   workspace worker pool; *within* a shard, units execute serially in
//!   ascending `(launch, unit)` order at seeked virtual times, so the
//!   outcome is byte-identical for any `--jobs` value.
//!
//! # Conservation
//!
//! Every serve call audits the ledger identity: the sum of messages
//! attributed to responses equals the total growth of the shard ledgers
//! during the call, exactly. Coalesced units split their cost integrally
//! among members (`cost/g` each, the first `cost % g` members carrying
//! one extra), so attribution never invents or drops a message.

use crate::admission::{admit, AdmissionConfig};
use crate::backend::ServiceBackend;
use crate::request::{Request, Response, ScheduledRequest, ServeOutcome, ShardResponse};
use pool_netsim::exec::run_trials;
use pool_transport::TrafficLedger;
use std::collections::HashSet;
use std::sync::Mutex;

/// A shared-everything service front end over one backend.
///
/// `ServiceHandle` is `Sync` whenever the backend's shard type is
/// `Send` (which the [`ServiceBackend`] trait requires), so one handle
/// can serve any number of client threads.
#[derive(Debug)]
pub struct ServiceHandle<B: ServiceBackend> {
    backend: B,
    shards: Vec<Mutex<B::Shard>>,
}

impl<B: ServiceBackend> ServiceHandle<B> {
    /// Wraps a router and its shard states (as returned by a backend's
    /// `build`) into a servable handle.
    ///
    /// # Panics
    ///
    /// Panics if `shards.len()` disagrees with the router's
    /// [`shard_count`](ServiceBackend::shard_count).
    pub fn new(backend: B, shards: Vec<B::Shard>) -> Self {
        assert_eq!(
            shards.len(),
            backend.shard_count(),
            "shard state count must match the router's shard count"
        );
        ServiceHandle { backend, shards: shards.into_iter().map(Mutex::new).collect() }
    }

    /// The immutable router.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// How many shards this handle serves over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Runs `f` with exclusive access to shard `idx` (test/bench
    /// plumbing: preloading state, inspecting a shard's store).
    pub fn with_shard<R>(&self, idx: usize, f: impl FnOnce(&mut B::Shard) -> R) -> R {
        let mut guard = self.shards[idx].lock().expect("shard lock poisoned");
        f(&mut guard)
    }

    /// All shard ledgers merged into one deployment-wide ledger
    /// (well-defined because every shard tracks the same shared
    /// topology).
    pub fn merged_ledger(&self) -> TrafficLedger {
        let mut merged: Option<TrafficLedger> = None;
        for shard in &self.shards {
            let guard = shard.lock().expect("shard lock poisoned");
            let ledger = self.backend.ledger(&guard);
            match &mut merged {
                Some(m) => m.merge(ledger),
                None => merged = Some(ledger.clone()),
            }
        }
        merged.expect("a service has at least one shard")
    }

    /// Sum of [`TrafficLedger::total_messages`] across all shards.
    pub fn total_messages(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let guard = s.lock().expect("shard lock poisoned");
                self.backend.ledger(&guard).total_messages()
            })
            .sum()
    }

    /// Executes one request immediately, locking only the shards it
    /// touches (in ascending order, so concurrent submitters cannot
    /// deadlock). Safe to call from many threads at once.
    ///
    /// The response's `latency` is pure network time — the longest
    /// shard-side elapsed time — since there is no admission schedule to
    /// measure queueing against.
    pub fn submit(&self, request: &Request) -> Response {
        let shard_ids = self.backend.shards_of(request);
        let mut parts: Vec<ShardResponse> = Vec::with_capacity(shard_ids.len());
        for &s in &shard_ids {
            let mut guard = self.shards[s].lock().expect("shard lock poisoned");
            parts.push(self.backend.execute(&mut guard, request));
        }
        let latency = parts.iter().map(|p| p.elapsed).fold(0.0, f64::max);
        let unreached: HashSet<u64> =
            parts.iter().flat_map(|p| p.unreached.iter().copied()).collect();
        let mut response = member_response(&self.backend, request, &parts, &unreached);
        response.messages = parts.iter().map(|p| p.messages).sum();
        response.retransmissions = parts.iter().map(|p| p.retransmissions).sum();
        response.latency = latency;
        response
    }

    /// Replays an open-loop schedule: admission forms execution units
    /// (coalescing reads per [`AdmissionConfig`]), units are routed to
    /// the shards they touch, and shards execute their queues in
    /// parallel on `jobs` workers.
    ///
    /// Arrivals are offsets from the serve call's *base time* — the
    /// latest shard-clock position when the call starts — so repeated
    /// serve calls stack on one virtual time axis.
    ///
    /// Determinism: per-shard queues are sorted by `(launch, unit)`,
    /// each shard executes serially under its lock at explicitly seeked
    /// virtual times, and cross-shard merging follows ascending shard
    /// order. The outcome is byte-identical for every `jobs >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if the conservation audit fails: the messages attributed
    /// across responses must equal the exact growth of the shard
    /// ledgers during the call.
    pub fn serve(
        &self,
        schedule: &[ScheduledRequest],
        admission: &AdmissionConfig,
        jobs: usize,
    ) -> ServeOutcome {
        let ledger_before = self.total_messages();
        let units = admit(&self.backend, schedule, admission);

        // Base time: latest shard clock, so no unit ever seeks backward.
        let base = self
            .shards
            .iter()
            .map(|s| {
                let guard = s.lock().expect("shard lock poisoned");
                self.backend.now(&guard)
            })
            .fold(0.0, f64::max);

        // Route units to shards and sort each shard's queue by launch.
        let unit_shards: Vec<Vec<usize>> =
            units.iter().map(|u| self.backend.shards_of(&u.request)).collect();
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (u, shard_ids) in unit_shards.iter().enumerate() {
            for &s in shard_ids {
                queues[s].push(u);
            }
        }
        for queue in &mut queues {
            queue.sort_by(|&a, &b| units[a].launch.total_cmp(&units[b].launch).then(a.cmp(&b)));
        }

        // Execute every shard's queue; shards are mutually independent,
        // so this parallelizes without changing any result.
        let per_shard: Vec<Vec<(usize, ShardResponse)>> =
            run_trials(jobs.max(1), (0..self.shards.len()).collect(), |_, s: usize| {
                let mut guard = self.shards[s].lock().expect("shard lock poisoned");
                let mut out = Vec::with_capacity(queues[s].len());
                for &u in &queues[s] {
                    let start = self.backend.now(&guard).max(base + units[u].launch);
                    self.backend.seek(&mut guard, start);
                    out.push((u, self.backend.execute(&mut guard, &units[u].request)));
                }
                out
            });

        // Regroup per unit, ascending shard order (run_trials preserves
        // submission order, so iterating shards in order suffices).
        let mut unit_parts: Vec<Vec<ShardResponse>> = vec![Vec::new(); units.len()];
        for shard_results in per_shard {
            for (u, resp) in shard_results {
                unit_parts[u].push(resp);
            }
        }

        let mut responses: Vec<Response> = vec![Response::default(); schedule.len()];
        let mut total_messages: u64 = 0;
        let mut coalesced_requests = 0usize;
        let mut last_completion = f64::NEG_INFINITY;
        for (unit, parts) in units.iter().zip(&unit_parts) {
            let completion = parts.iter().map(|p| p.end).fold(base + unit.launch, f64::max);
            last_completion = last_completion.max(completion);
            let unit_messages: u64 = parts.iter().map(|p| p.messages).sum();
            let unit_retrans: u64 = parts.iter().map(|p| p.retransmissions).sum();
            total_messages += unit_messages;
            let unreached: HashSet<u64> =
                parts.iter().flat_map(|p| p.unreached.iter().copied()).collect();
            let g = unit.members.len() as u64;
            if unit.members.len() > 1 {
                coalesced_requests += unit.members.len();
            }
            for (i, &member) in unit.members.iter().enumerate() {
                let sr = &schedule[member];
                let mut response = member_response(&self.backend, &sr.request, parts, &unreached);
                // Integer cost shares: sum over members is exactly the
                // unit's cost, so attribution conserves the ledger.
                let i = i as u64;
                response.messages = unit_messages / g + u64::from(i < unit_messages % g);
                response.retransmissions = unit_retrans / g + u64::from(i < unit_retrans % g);
                response.latency = completion - (base + sr.arrival);
                response.coalesced_with = unit.members.len() - 1;
                responses[member] = response;
            }
        }

        let ledger_after = self.total_messages();
        assert_eq!(
            ledger_after - ledger_before,
            total_messages,
            "conservation audit: attributed messages must equal ledger growth"
        );

        let first_arrival =
            schedule.iter().map(|sr| base + sr.arrival).fold(f64::INFINITY, f64::min);
        let makespan =
            if schedule.is_empty() { 0.0 } else { (last_completion - first_arrival).max(0.0) };
        ServeOutcome { responses, makespan, total_messages, units: units.len(), coalesced_requests }
    }

    /// Convenience: serve a schedule formed from bare requests arriving
    /// at uniform `spacing` virtual seconds apart.
    pub fn serve_uniform(
        &self,
        requests: &[Request],
        spacing: f64,
        admission: &AdmissionConfig,
        jobs: usize,
    ) -> ServeOutcome {
        let schedule: Vec<ScheduledRequest> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| ScheduledRequest { arrival: i as f64 * spacing, request: r.clone() })
            .collect();
        self.serve(&schedule, admission, jobs)
    }
}

/// Builds the answer-side of a member's response from its unit's shard
/// parts: the member's own filtered events/values, its completeness
/// against the ids it named, and the uniform delivered rule (`delivered`
/// iff none of the member's relevant ids went unreached).
fn member_response<B: ServiceBackend>(
    backend: &B,
    request: &Request,
    parts: &[ShardResponse],
    unreached: &HashSet<u64>,
) -> Response {
    let relevant_ids = backend.relevant_ids(request);
    let hits = relevant_ids.iter().filter(|id| unreached.contains(id)).count();
    let mut response = Response {
        relevant: relevant_ids.len(),
        reached: relevant_ids.len() - hits,
        delivered: hits == 0,
        ..Response::default()
    };
    match request {
        Request::Query { query, .. } => {
            // The unit's request may be a widened merge; the member's
            // answer is the exact filter by its own predicate.
            response.events = parts
                .iter()
                .flat_map(|p| p.events.iter())
                .filter(|e| query.matches(e))
                .cloned()
                .collect();
        }
        Request::Get { .. } => {
            response.values = parts.iter().flat_map(|p| p.values.iter().copied()).collect();
        }
        // Writes and monitors travel alone; events/values stay empty.
        Request::Insert { .. } | Request::Monitor { .. } | Request::Put { .. } => {}
    }
    response
}
