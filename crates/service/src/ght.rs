//! GHT backend: sharded by key hash.
//!
//! GHT is the easiest scheme to shard: a key's home node is a pure
//! function of the key and the (shared, immutable) topology, so routing
//! state never crosses keys. Each shard owns the keys hashing to it,
//! with its own table and transport stack; duplicate gets for one key in
//! an admission window coalesce into a single fetch.

use crate::backend::ServiceBackend;
use crate::request::{Request, ShardResponse};
use pool_ght::GhtTable;
use pool_gpsr::Planarization;
use pool_netsim::topology::Topology;
use pool_transport::{
    FaultPlan, FaultyTransport, LossyConfig, LossyTransport, OpRetryPolicy, RecoveryConfig,
    Transport, TransportKind,
};
use std::sync::Arc;

/// FNV-1a over the key bytes — a stable, dependency-free shard hash.
fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The immutable router half of a sharded GHT deployment.
#[derive(Debug)]
pub struct GhtBackend {
    topology: Arc<Topology>,
    shards: usize,
}

/// One shard: the table slice for its keys plus its own transport stack.
#[derive(Debug)]
pub struct GhtShard {
    /// The shard's hash-table slice.
    pub table: GhtTable<u64>,
    /// The shard's transport (own ledger/clock).
    pub transport: Box<dyn Transport>,
    retry: Option<OpRetryPolicy>,
}

impl GhtBackend {
    /// Builds the router and its shards over one shared topology, with
    /// the same transport stack Pool and DIM ride (fault plan evaluated
    /// against each shard's clock, optional adaptive recovery and
    /// operation retry).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        topology: Topology,
        kind: TransportKind,
        lossy: Option<LossyConfig>,
        faults: Option<FaultPlan>,
        recovery: Option<RecoveryConfig>,
        retry: Option<OpRetryPolicy>,
        shards: usize,
    ) -> (Self, Vec<GhtShard>) {
        let topology = Arc::new(topology);
        let shards = shards.max(1);
        let mut shard_state = Vec::with_capacity(shards);
        for _ in 0..shards {
            let mut transport: Box<dyn Transport> = kind.build(&topology, Planarization::Gabriel);
            if faults.is_some() || recovery.is_some() {
                let lossy = lossy.unwrap_or_else(|| LossyConfig::fixed(1.0, 0));
                let plan = faults.clone().unwrap_or_default();
                transport = match recovery {
                    Some(recovery) => {
                        Box::new(FaultyTransport::wrap_adaptive(transport, lossy, plan, recovery))
                    }
                    None => Box::new(FaultyTransport::wrap(transport, lossy, plan)),
                };
            } else if let Some(lossy) = lossy {
                transport = Box::new(LossyTransport::wrap(transport, lossy));
            }
            shard_state.push(GhtShard { table: GhtTable::new(&topology), transport, retry });
        }
        (GhtBackend { topology, shards }, shard_state)
    }

    fn shard_of_key(&self, key: &str) -> usize {
        (key_hash(key) % self.shards as u64) as usize
    }
}

impl ServiceBackend for GhtBackend {
    type Shard = GhtShard;

    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shards_of(&self, request: &Request) -> Vec<usize> {
        match request {
            Request::Put { key, .. } | Request::Get { key, .. } => vec![self.shard_of_key(key)],
            other => panic!("ght backend cannot serve {other:?}"),
        }
    }

    fn relevant_ids(&self, request: &Request) -> Vec<u64> {
        match request {
            Request::Put { key, .. } | Request::Get { key, .. } => vec![key_hash(key)],
            other => panic!("ght backend cannot serve {other:?}"),
        }
    }

    fn execute(&self, shard: &mut GhtShard, request: &Request) -> ShardResponse {
        let mut out = ShardResponse::default();
        match request {
            Request::Put { source, key, value } => {
                let receipt = match shard.retry {
                    Some(policy) => shard.table.put_with_retry(
                        &self.topology,
                        shard.transport.as_mut(),
                        *source,
                        key,
                        *value,
                        policy,
                    ),
                    None => shard.table.put(
                        &self.topology,
                        shard.transport.as_mut(),
                        *source,
                        key,
                        *value,
                    ),
                };
                match receipt {
                    Ok(receipt) => {
                        out.messages = receipt.messages;
                        out.delivered = receipt.delivered;
                        out.elapsed = receipt.elapsed;
                        if !receipt.delivered {
                            out.unreached = vec![key_hash(key)];
                        }
                    }
                    Err(pool_gpsr::RouteError::NotDelivered { .. }) => {
                        out.unreached = vec![key_hash(key)];
                    }
                    Err(e) => panic!("ght put failed: {e}"),
                }
            }
            Request::Get { sink, key } => {
                let result = match shard.retry {
                    Some(policy) => shard.table.get_with_retry(
                        &self.topology,
                        shard.transport.as_mut(),
                        *sink,
                        key,
                        policy,
                    ),
                    None => shard.table.get(&self.topology, shard.transport.as_mut(), *sink, key),
                };
                match result {
                    Ok((values, receipt)) => {
                        out.values = values;
                        out.messages = receipt.messages;
                        out.delivered = receipt.delivered;
                        out.elapsed = receipt.elapsed;
                        if !receipt.delivered {
                            out.unreached = vec![key_hash(key)];
                        }
                    }
                    Err(pool_gpsr::RouteError::NotDelivered { .. }) => {
                        out.unreached = vec![key_hash(key)];
                    }
                    Err(e) => panic!("ght get failed: {e}"),
                }
            }
            other => panic!("ght backend cannot serve {other:?}"),
        }
        out.end = shard.transport.clock().now();
        out
    }

    fn seek(&self, shard: &mut GhtShard, t: f64) {
        shard.transport.clock_mut().seek(t);
    }

    fn now(&self, shard: &GhtShard) -> f64 {
        shard.transport.clock().now()
    }

    fn ledger<'a>(&self, shard: &'a GhtShard) -> &'a pool_transport::TrafficLedger {
        shard.transport.ledger()
    }

    fn try_merge(&self, merged: &Request, next: &Request) -> Option<Request> {
        match (merged, next) {
            (Request::Get { sink: sa, key: ka }, Request::Get { sink: sb, key: kb })
                if sa == sb && ka == kb =>
            {
                Some(merged.clone())
            }
            _ => None,
        }
    }
}
