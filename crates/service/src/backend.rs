//! The seam between the generic service machinery and a storage scheme.
//!
//! A backend is split into two halves with very different concurrency
//! roles:
//!
//! * the **router** (the [`ServiceBackend`] impl itself) — immutable
//!   shared state: the network snapshot plus whatever placement metadata
//!   the scheme derives from it (Pool's layout, DIM's zone tree, GHT's
//!   key hash). It answers *which shards does this request touch* and
//!   *which slices of the data space does it name* without any lock.
//! * the **shards** ([`ServiceBackend::Shard`]) — the mutable halves:
//!   each owns a full system instance (its own transport, ledger, clock,
//!   tracer) restricted to a disjoint subset of the scheme's data space.
//!   The [`ServiceHandle`](crate::ServiceHandle) wraps each in a
//!   [`Mutex`](std::sync::Mutex); a request locks only the shards it
//!   touches.
//!
//! Completeness bookkeeping crosses the seam as opaque slice ids
//! (`u64`): pool cells, DIM zones, or GHT keys, encoded by the backend.
//! The service recomposes per-request honesty — even for coalesced
//! requests — by intersecting a request's relevant ids with the unreached
//! ids its units reported.

use crate::request::{Request, ShardResponse};
use pool_core::query::RangeQuery;
use pool_netsim::node::NodeId;

/// A storage scheme pluggable into [`ServiceHandle`](crate::ServiceHandle).
///
/// Determinism contract: every method must be a pure function of the
/// backend's immutable state and its arguments ([`ServiceBackend::execute`]
/// additionally of the shard's state) — no ambient randomness, no wall
/// clock — so a serve schedule replays byte-identically on any worker
/// count.
pub trait ServiceBackend: Send + Sync {
    /// The mutable per-shard half (a restricted system instance).
    type Shard: Send;

    /// How many shards this backend was built with.
    fn shard_count(&self) -> usize;

    /// The shards `request` must execute on, ascending, deduplicated.
    /// Empty when the request touches no data (e.g. a query whose ranges
    /// are off every pool) — the service completes it without locking
    /// anything.
    fn shards_of(&self, request: &Request) -> Vec<usize>;

    /// Opaque ids of the data-space slices `request` names: pool `(dim,
    /// cell)` pairs, DIM zone indices, or the GHT key hash. Used for the
    /// completeness denominator and, under coalescing, to slice a merged
    /// unit's unreached set back to each member.
    fn relevant_ids(&self, request: &Request) -> Vec<u64>;

    /// Executes `request` on `shard` at the shard clock's current
    /// position, returning what this shard contributed.
    fn execute(&self, shard: &mut Self::Shard, request: &Request) -> ShardResponse;

    /// Moves the shard's virtual clock to `t` (never backward in serve
    /// order; the service schedules per-shard work by ascending launch
    /// time).
    fn seek(&self, shard: &mut Self::Shard, t: f64);

    /// The shard clock's current position (virtual seconds).
    fn now(&self, shard: &Self::Shard) -> f64;

    /// The shard's traffic ledger — the conservation-audit counter the
    /// service diffs around a serve call and merges for deployment-wide
    /// load reports.
    fn ledger<'a>(&self, shard: &'a Self::Shard) -> &'a pool_transport::TrafficLedger;

    /// Attempts to widen `merged` to also cover `next`, returning the
    /// coalesced request. `None` when the two cannot share a single
    /// execution (different sinks, disjoint ranges, non-read ops…).
    ///
    /// The contract the admission layer relies on: every event matching a
    /// member request also matches the merged request, so member answers
    /// are exact filters of the merged answer.
    fn try_merge(&self, merged: &Request, next: &Request) -> Option<Request>;
}

/// Widens two range queries from the same sink into their bounding box —
/// per-dimension `(min lo, max hi)`, unconstrained if either side is
/// unconstrained — provided they overlap in every dimension (disjoint
/// queries would merge into a bbox mostly covering data neither asked
/// for, so the admission layer keeps them apart).
///
/// Since each merged bound contains both members' bounds, an event
/// matching either member always matches the merge: member answers are
/// exact filters of the merged answer.
pub(crate) fn merge_overlapping_queries(
    a_sink: NodeId,
    a: &RangeQuery,
    b_sink: NodeId,
    b: &RangeQuery,
) -> Option<RangeQuery> {
    if a_sink != b_sink || a.dims() != b.dims() {
        return None;
    }
    // Overlap test on the rewritten (fully-bounded) ranges.
    let (ra, rb) = (a.rewritten(), b.rewritten());
    if ra.iter().zip(&rb).any(|((alo, ahi), (blo, bhi))| ahi < blo || bhi < alo) {
        return None;
    }
    let bounds: Vec<Option<(f64, f64)>> = a
        .bounds()
        .iter()
        .zip(b.bounds())
        .map(|(ba, bb)| match (ba, bb) {
            (Some((alo, ahi)), Some((blo, bhi))) => Some((alo.min(*blo), ahi.max(*bhi))),
            _ => None,
        })
        .collect();
    RangeQuery::from_bounds(bounds).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapping_queries_merge_to_the_bounding_box() {
        let a = RangeQuery::exact(vec![(0.1, 0.4), (0.2, 0.6)]).unwrap();
        let b = RangeQuery::exact(vec![(0.3, 0.7), (0.5, 0.9)]).unwrap();
        let m = merge_overlapping_queries(NodeId(1), &a, NodeId(1), &b).unwrap();
        assert_eq!(m.bounds(), &[Some((0.1, 0.7)), Some((0.2, 0.9))]);
    }

    #[test]
    fn disjoint_or_cross_sink_queries_do_not_merge() {
        let a = RangeQuery::exact(vec![(0.1, 0.2), (0.2, 0.6)]).unwrap();
        let b = RangeQuery::exact(vec![(0.5, 0.7), (0.5, 0.9)]).unwrap();
        assert!(merge_overlapping_queries(NodeId(1), &a, NodeId(1), &b).is_none());
        let c = RangeQuery::exact(vec![(0.15, 0.55), (0.3, 0.7)]).unwrap();
        assert!(merge_overlapping_queries(NodeId(1), &a, NodeId(2), &c).is_none());
    }

    #[test]
    fn partial_dimensions_stay_unconstrained_in_the_merge() {
        let a = RangeQuery::from_bounds(vec![Some((0.1, 0.4)), None]).unwrap();
        let b = RangeQuery::exact(vec![(0.3, 0.7), (0.5, 0.9)]).unwrap();
        let m = merge_overlapping_queries(NodeId(4), &a, NodeId(4), &b).unwrap();
        assert_eq!(m.bounds(), &[Some((0.1, 0.7)), None]);
    }
}
