//! Batch admission and query coalescing.
//!
//! The front end admits requests in fixed virtual-time windows. Within a
//! window, reads that the backend can widen into one another (same-sink
//! overlapping range queries; duplicate gets) are coalesced into a
//! single executed *unit*; everything else — writes, monitors, reads
//! that do not fit any open unit — travels alone. A merged unit launches
//! when its **last** member arrives, so coalescing pays an honest
//! admission delay in exchange for shared delivery: the ablation arm of
//! the service benchmark measures exactly this trade.
//!
//! Grouping is greedy in ticket (arrival) order and entirely
//! deterministic: a request joins the first open unit of its window the
//! backend agrees to widen, else opens a new unit. The merged request
//! only ever *grows* (bounding-box union), so every member's answer is
//! an exact filter of the unit's answer.

use crate::backend::ServiceBackend;
use crate::request::{Request, ScheduledRequest};

/// Admission-layer knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Window length in virtual seconds. Requests can only coalesce with
    /// others arriving in the same window. `0.0` disables batching
    /// outright (every request is its own unit).
    pub window: f64,
    /// Master switch for coalescing — the ablation arm sets this false
    /// and everything travels alone.
    pub coalesce: bool,
}

impl Default for AdmissionConfig {
    /// 50 virtual milliseconds — a few network round-trips wide, enough
    /// to catch a dashboard burst without stalling sustained traffic.
    fn default() -> Self {
        AdmissionConfig { window: 0.05, coalesce: true }
    }
}

impl AdmissionConfig {
    /// The coalescing-disabled ablation configuration.
    pub fn no_coalescing() -> Self {
        AdmissionConfig { window: 0.0, coalesce: false }
    }
}

/// One executed unit: a (possibly merged) request plus the schedule
/// indices of the members riding it.
#[derive(Debug, Clone)]
pub(crate) struct Unit {
    /// The request actually executed (the members' merge).
    pub request: Request,
    /// Schedule indices of the members, in ticket order.
    pub members: Vec<usize>,
    /// Virtual launch offset: the latest member arrival.
    pub launch: f64,
}

/// Forms execution units from `schedule` (ticket order = ascending
/// arrival, ties by schedule index).
pub(crate) fn admit<B: ServiceBackend>(
    backend: &B,
    schedule: &[ScheduledRequest],
    cfg: &AdmissionConfig,
) -> Vec<Unit> {
    let mut order: Vec<usize> = (0..schedule.len()).collect();
    order.sort_by(|&a, &b| schedule[a].arrival.total_cmp(&schedule[b].arrival).then(a.cmp(&b)));

    let mut units: Vec<Unit> = Vec::new();
    // Open units of the current window, as indices into `units`.
    let mut open: Vec<usize> = Vec::new();
    let mut current_window = u64::MAX;
    for idx in order {
        let sr = &schedule[idx];
        let window = if cfg.window > 0.0 { (sr.arrival / cfg.window) as u64 } else { idx as u64 };
        if window != current_window {
            current_window = window;
            open.clear();
        }
        let mut joined = false;
        if cfg.coalesce && sr.request.is_read() {
            for &u in &open {
                if let Some(merged) = backend.try_merge(&units[u].request, &sr.request) {
                    units[u].request = merged;
                    units[u].members.push(idx);
                    units[u].launch = units[u].launch.max(sr.arrival);
                    joined = true;
                    break;
                }
            }
        }
        if !joined {
            let u = units.len();
            units.push(Unit {
                request: sr.request.clone(),
                members: vec![idx],
                launch: sr.arrival,
            });
            if cfg.coalesce && sr.request.is_read() {
                open.push(u);
            }
        }
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::merge_overlapping_queries;
    use crate::request::ShardResponse;
    use pool_core::event::Event;
    use pool_core::query::RangeQuery;
    use pool_netsim::node::NodeId;
    use pool_transport::TrafficLedger;

    /// A routing-free backend: only `try_merge` matters to admission.
    struct Mock;

    impl ServiceBackend for Mock {
        type Shard = TrafficLedger;

        fn shard_count(&self) -> usize {
            1
        }

        fn shards_of(&self, _request: &Request) -> Vec<usize> {
            vec![0]
        }

        fn relevant_ids(&self, _request: &Request) -> Vec<u64> {
            Vec::new()
        }

        fn execute(&self, _shard: &mut TrafficLedger, _request: &Request) -> ShardResponse {
            ShardResponse::default()
        }

        fn seek(&self, _shard: &mut TrafficLedger, _t: f64) {}

        fn now(&self, _shard: &TrafficLedger) -> f64 {
            0.0
        }

        fn ledger<'a>(&self, shard: &'a TrafficLedger) -> &'a TrafficLedger {
            shard
        }

        fn try_merge(&self, merged: &Request, next: &Request) -> Option<Request> {
            match (merged, next) {
                (
                    Request::Query { sink: sa, query: qa },
                    Request::Query { sink: sb, query: qb },
                ) => merge_overlapping_queries(*sa, qa, *sb, qb)
                    .map(|query| Request::Query { sink: *sa, query }),
                _ => None,
            }
        }
    }

    fn query(lo: f64, hi: f64) -> Request {
        Request::Query {
            sink: NodeId(7),
            query: RangeQuery::exact(vec![(lo, hi), (lo, hi)]).unwrap(),
        }
    }

    fn at(arrival: f64, request: Request) -> ScheduledRequest {
        ScheduledRequest { arrival, request }
    }

    #[test]
    fn same_window_overlapping_reads_share_a_unit_launched_at_the_last_arrival() {
        let schedule = vec![
            at(0.010, query(0.2, 0.5)),
            at(0.020, query(0.4, 0.8)),
            at(0.030, query(0.3, 0.6)),
        ];
        let units = admit(&Mock, &schedule, &AdmissionConfig { window: 0.05, coalesce: true });
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].members, vec![0, 1, 2]);
        assert_eq!(units[0].launch, 0.030);
        match &units[0].request {
            Request::Query { query, .. } => {
                assert_eq!(query.bounds(), &[Some((0.2, 0.8)), Some((0.2, 0.8))]);
            }
            other => panic!("unexpected merged request {other:?}"),
        }
    }

    #[test]
    fn window_boundaries_and_disjoint_ranges_split_units() {
        let schedule = vec![
            at(0.010, query(0.2, 0.3)), // window 0
            at(0.020, query(0.7, 0.9)), // window 0 but disjoint
            at(0.060, query(0.2, 0.3)), // window 1: cannot join window 0's unit
        ];
        let units = admit(&Mock, &schedule, &AdmissionConfig { window: 0.05, coalesce: true });
        assert_eq!(units.len(), 3);
        assert!(units.iter().all(|u| u.members.len() == 1));
    }

    #[test]
    fn writes_never_coalesce_even_between_overlapping_reads() {
        let insert =
            Request::Insert { source: NodeId(3), event: Event::new(vec![0.5, 0.5]).unwrap() };
        let schedule =
            vec![at(0.010, query(0.2, 0.6)), at(0.015, insert), at(0.020, query(0.3, 0.7))];
        let units = admit(&Mock, &schedule, &AdmissionConfig { window: 0.05, coalesce: true });
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].members, vec![0, 2]);
        assert_eq!(units[1].members, vec![1]);
    }

    #[test]
    fn the_ablation_config_gives_every_request_its_own_unit() {
        let schedule = vec![
            at(0.010, query(0.2, 0.5)),
            at(0.011, query(0.2, 0.5)),
            at(0.012, query(0.2, 0.5)),
        ];
        let units = admit(&Mock, &schedule, &AdmissionConfig::no_coalescing());
        assert_eq!(units.len(), 3);
        assert!(units.iter().enumerate().all(|(i, u)| u.members == vec![i]));
    }
}
