//! Request/response vocabulary of the service front end.
//!
//! One request enum serves every backend so the load harness can drive
//! Pool, DIM, and GHT deployments through the identical interface;
//! backends reject the operations their scheme does not support (a GHT
//! cannot answer a range query) by panicking — a harness wiring bug, not
//! a runtime condition.

use pool_core::event::Event;
use pool_core::query::RangeQuery;
use pool_netsim::node::NodeId;

/// One client operation submitted to the service.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Store an event detected at `source` (Pool/DIM backends).
    Insert {
        /// The node that detected the event.
        source: NodeId,
        /// The event to store.
        event: Event,
    },
    /// A multi-dimensional range query issued at `sink` (Pool/DIM).
    Query {
        /// The node issuing the query.
        sink: NodeId,
        /// The range predicate.
        query: RangeQuery,
    },
    /// Install a continuous monitor at `sink` (Pool only).
    Monitor {
        /// The node to be notified of future matches.
        sink: NodeId,
        /// The standing predicate.
        query: RangeQuery,
    },
    /// Store `value` under `key` (GHT backend).
    Put {
        /// The node issuing the put.
        source: NodeId,
        /// The name the value is hashed under.
        key: String,
        /// The payload.
        value: u64,
    },
    /// Retrieve every value stored under `key` (GHT backend).
    Get {
        /// The node issuing the get.
        sink: NodeId,
        /// The name to look up.
        key: String,
    },
}

impl Request {
    /// Whether this is a read (query/get) — the only class the admission
    /// layer may coalesce; writes and monitor installations always travel
    /// alone.
    pub fn is_read(&self) -> bool {
        matches!(self, Request::Query { .. } | Request::Get { .. })
    }
}

/// A request paired with its virtual-time arrival — one line of the
/// open-loop load schedule fed to
/// [`ServiceHandle::serve`](crate::ServiceHandle::serve).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledRequest {
    /// Virtual seconds (offset from the serve call's base time) at which
    /// the client issues the request.
    pub arrival: f64,
    /// The operation.
    pub request: Request,
}

/// What one shard contributed to a request (or to a coalesced unit).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardResponse {
    /// Matching events (range-query backends).
    pub events: Vec<Event>,
    /// Retrieved values (GHT gets).
    pub values: Vec<u64>,
    /// Total transmissions charged to this shard's ledger by the
    /// operation — retransmissions included, so the sum over responses
    /// equals the ledger growth exactly (the conservation identity).
    pub messages: u64,
    /// The retransmission share of `messages`.
    pub retransmissions: u64,
    /// Opaque ids of the relevant slices this shard owns that did NOT
    /// fully answer (pool cells / DIM zones / GHT keys; see
    /// [`ServiceBackend::relevant_ids`](crate::ServiceBackend::relevant_ids)).
    pub unreached: Vec<u64>,
    /// Whether the operation's effect landed (inserts/puts) or the answer
    /// made it back (reads with at least a complete slice set).
    pub delivered: bool,
    /// The shard clock's position when the operation finished, in virtual
    /// seconds on the shared service time axis.
    pub end: f64,
    /// Virtual time the operation occupied on this shard.
    pub elapsed: f64,
}

/// The merged, client-visible outcome of one request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Response {
    /// Matching events, merged across shards in shard order.
    pub events: Vec<Event>,
    /// Retrieved values (GHT gets).
    pub values: Vec<u64>,
    /// Messages attributed to this request. For a coalesced request this
    /// is its integer share of the merged unit's cost; shares always sum
    /// exactly to what the ledgers were charged.
    pub messages: u64,
    /// Attributed retransmission share.
    pub retransmissions: u64,
    /// Relevant slices (cells/zones/keys) the request named.
    pub relevant: usize,
    /// Relevant slices that fully answered.
    pub reached: usize,
    /// Whether the operation's effect/answer fully landed.
    pub delivered: bool,
    /// Virtual seconds from the request's arrival to its completion
    /// (admission wait + queueing + network time).
    pub latency: f64,
    /// How many other requests shared this request's executed unit
    /// (0 = it travelled alone).
    pub coalesced_with: usize,
}

impl Response {
    /// Fraction of relevant slices that fully answered (1.0 when nothing
    /// was relevant — an empty answer is complete).
    pub fn completeness(&self) -> f64 {
        if self.relevant == 0 {
            1.0
        } else {
            self.reached as f64 / self.relevant as f64
        }
    }
}

/// Aggregate outcome of one [`serve`](crate::ServiceHandle::serve) call.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Per-request responses, in schedule order.
    pub responses: Vec<Response>,
    /// Virtual seconds from the first arrival to the last completion.
    pub makespan: f64,
    /// Total messages charged across every shard ledger by this serve
    /// call; equals the sum of attributed per-request messages.
    pub total_messages: u64,
    /// Executed units after admission (requests minus coalesced riders).
    pub units: usize,
    /// Requests that shared a unit with at least one other request.
    pub coalesced_requests: usize,
}

impl ServeOutcome {
    /// Completed requests per virtual second.
    pub fn requests_per_second(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.responses.len() as f64 / self.makespan
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of per-request latency, in virtual
    /// seconds — nearest-rank over the sorted latencies, so the value is
    /// always one that actually occurred.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let mut lat: Vec<f64> = self.responses.iter().map(|r| r.latency).collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        lat[rank - 1]
    }

    /// Mean completeness over all responses.
    pub fn mean_completeness(&self) -> f64 {
        if self.responses.is_empty() {
            return 1.0;
        }
        self.responses.iter().map(Response::completeness).sum::<f64>() / self.responses.len() as f64
    }
}
