//! DIM backend: sharded by zone.
//!
//! The zone tree is partitioned round-robin over its DFS zone order;
//! each shard holds a full [`DimSystem`] over the shared topology but
//! stores and answers only its owned zones. Unlike Pool, DIM's
//! monolithic query walks one serial owner chain, so the union of
//! per-shard restricted chains is *not* message-identical to the single
//! chain (each shard pays its own sink → first-owner leg) — the service
//! trades a few extra forward legs for zone-parallel execution, and
//! reports the honest per-shard costs it actually charged.

use crate::backend::{merge_overlapping_queries, ServiceBackend};
use crate::request::{Request, ShardResponse};
use pool_core::insert::InsertError;
use pool_core::PoolError;
use pool_dim::{DimSystem, ZoneTree};
use pool_netsim::geometry::Rect;
use pool_netsim::topology::Topology;
use pool_transport::{FaultPlan, LossyConfig, OpRetryPolicy, RecoveryConfig, TransportKind};
use std::collections::HashMap;
use std::sync::Arc;

/// The immutable router half of a sharded DIM deployment.
#[derive(Debug)]
pub struct DimBackend {
    tree: ZoneTree,
    zone_idx_by_code: HashMap<pool_dim::ZoneCode, usize>,
    /// Zone index → owning shard (round-robin).
    shard_of_zone: Vec<usize>,
    shards: usize,
}

/// One shard: a full DIM system restricted to `zones`.
#[derive(Debug)]
pub struct DimShard {
    /// The shard's system instance (own transport/ledger/clock/tracer).
    pub system: DimSystem,
    /// The zone indices this shard owns.
    pub zones: Vec<usize>,
}

impl DimBackend {
    /// Builds the router and its shards over one shared topology, with
    /// the same resilience knobs as
    /// [`DimSystem::build_with_resilience`]. `shards` is clamped to at
    /// least 1 and at most the zone count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DimSystem::build`].
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        topology: Topology,
        field: Rect,
        dims: usize,
        kind: TransportKind,
        lossy: Option<LossyConfig>,
        faults: Option<FaultPlan>,
        recovery: Option<RecoveryConfig>,
        op_retry: Option<OpRetryPolicy>,
        shards: usize,
    ) -> Result<(Self, Vec<DimShard>), PoolError> {
        let topology = Arc::new(topology);
        // The router's tree is built exactly as every shard's is, so zone
        // indices agree across the whole deployment.
        let tree = ZoneTree::build(&topology, field);
        let zone_idx_by_code: HashMap<pool_dim::ZoneCode, usize> =
            tree.zones().iter().enumerate().map(|(i, z)| (z.code, i)).collect();
        let zone_count = tree.zones().len();
        let shards = shards.clamp(1, zone_count.max(1));
        let shard_of_zone: Vec<usize> = (0..zone_count).map(|z| z % shards).collect();
        let mut shard_state = Vec::with_capacity(shards);
        for s in 0..shards {
            let system = DimSystem::build_shared(
                Arc::clone(&topology),
                field,
                dims,
                kind,
                lossy,
                faults.clone(),
                recovery,
                op_retry,
            )?;
            let zones = (0..zone_count).filter(|&z| shard_of_zone[z] == s).collect();
            shard_state.push(DimShard { system, zones });
        }
        Ok((DimBackend { tree, zone_idx_by_code, shard_of_zone, shards }, shard_state))
    }

    fn zone_of_event(&self, values: &[f64]) -> usize {
        self.zone_idx_by_code[&self.tree.zone_of_event(values).code]
    }

    fn zones_of_query(&self, query: &pool_core::query::RangeQuery) -> Vec<usize> {
        self.tree
            .zones_overlapping(&query.rewritten())
            .iter()
            .map(|z| self.zone_idx_by_code[&z.code])
            .collect()
    }
}

impl ServiceBackend for DimBackend {
    type Shard = DimShard;

    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shards_of(&self, request: &Request) -> Vec<usize> {
        match request {
            Request::Insert { event, .. } => {
                vec![self.shard_of_zone[self.zone_of_event(event.values())]]
            }
            Request::Query { query, .. } => {
                let mut shards: Vec<usize> =
                    self.zones_of_query(query).iter().map(|&z| self.shard_of_zone[z]).collect();
                shards.sort_unstable();
                shards.dedup();
                shards
            }
            other => panic!("dim backend cannot serve {other:?}"),
        }
    }

    fn relevant_ids(&self, request: &Request) -> Vec<u64> {
        match request {
            Request::Insert { event, .. } => vec![self.zone_of_event(event.values()) as u64],
            Request::Query { query, .. } => {
                self.zones_of_query(query).iter().map(|&z| z as u64).collect()
            }
            other => panic!("dim backend cannot serve {other:?}"),
        }
    }

    fn execute(&self, shard: &mut DimShard, request: &Request) -> ShardResponse {
        let mut out = ShardResponse::default();
        match request {
            Request::Insert { source, event } => {
                match shard.system.insert_from(*source, event.clone()) {
                    Ok(receipt) => {
                        out.messages = receipt.messages;
                        out.delivered = true;
                        out.elapsed = receipt.elapsed;
                    }
                    Err(InsertError::Undeliverable { transmissions, .. }) => {
                        out.messages = transmissions;
                        out.unreached = vec![self.zone_of_event(event.values()) as u64];
                    }
                    Err(InsertError::Pool(e)) => panic!("dim insert failed: {e}"),
                }
            }
            Request::Query { sink, query } => {
                let result = shard
                    .system
                    .query_zones_from(*sink, query, &shard.zones)
                    .expect("restricted dim query");
                out.events = result.events;
                out.messages = result.cost.total();
                out.retransmissions = result.cost.retransmit_messages;
                out.unreached = result.unreached_zones.iter().map(|&z| z as u64).collect();
                out.delivered = result.zones_reached == result.zones_visited;
                out.elapsed = result.cost.elapsed;
            }
            other => panic!("dim backend cannot serve {other:?}"),
        }
        out.end = shard.system.transport().clock().now();
        out
    }

    fn seek(&self, shard: &mut DimShard, t: f64) {
        shard.system.transport_mut().clock_mut().seek(t);
    }

    fn now(&self, shard: &DimShard) -> f64 {
        shard.system.transport().clock().now()
    }

    fn ledger<'a>(&self, shard: &'a DimShard) -> &'a pool_transport::TrafficLedger {
        shard.system.ledger()
    }

    fn try_merge(&self, merged: &Request, next: &Request) -> Option<Request> {
        match (merged, next) {
            (Request::Query { sink: sa, query: qa }, Request::Query { sink: sb, query: qb }) => {
                merge_overlapping_queries(*sa, qa, *sb, qb)
                    .map(|query| Request::Query { sink: *sa, query })
            }
            _ => None,
        }
    }
}
