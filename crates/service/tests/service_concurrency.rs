//! Concurrent-correctness suite for the sharded service front end.
//!
//! The claims under test, in order:
//!
//! 1. shard-disjoint operations commute: N threads submitting to their
//!    own shards produce exactly the serial reference (responses,
//!    stores, ledgers);
//! 2. the ledger conservation identity holds under unpartitioned
//!    contention — attributed messages equal total ledger growth for
//!    every interleaving;
//! 3. the service's no-coalescing serve is message- and result-identical
//!    to the monolithic single-threaded system (Pool's exact per-pool
//!    decomposition);
//! 4. coalescing changes delivery cost, never answers: every member of a
//!    merged unit gets the same events the ablation hands it;
//! 5. serve outcomes are jobs-invariant, byte for byte.

use pool_core::config::PoolConfig;
use pool_core::event::Event;
use pool_core::query::RangeQuery;
use pool_core::system::PoolSystem;
use pool_netsim::deployment::Deployment;
use pool_netsim::geometry::Rect;
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;
use pool_service::{
    AdmissionConfig, DimBackend, GhtBackend, PoolBackend, Request, Response, ScheduledRequest,
    ServiceBackend, ServiceHandle,
};
use pool_transport::TransportKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 150;
const DIMS: usize = 3;

fn topology(seed: u64) -> (Topology, Rect) {
    let mut seed = seed;
    loop {
        let dep = Deployment::paper_setting(NODES, 40.0, 20.0, seed).expect("deployment");
        let topo = Topology::build(dep.nodes(), 40.0).expect("topology");
        if topo.is_connected() {
            return (topo, dep.field());
        }
        seed = seed.wrapping_add(0x1000);
    }
}

fn pool_handle(topo: &Topology, field: Rect, seed: u64) -> ServiceHandle<PoolBackend> {
    let config = PoolConfig::paper().with_dims(DIMS).with_seed(seed);
    let (backend, shards) =
        PoolBackend::build(topo.clone(), field, config, DIMS).expect("pool backend");
    ServiceHandle::new(backend, shards)
}

fn random_inserts(rng: &mut StdRng, n: usize, count: usize) -> Vec<Request> {
    (0..count)
        .map(|_| Request::Insert {
            source: NodeId(rng.gen_range(0..n as u32)),
            event: Event::new((0..DIMS).map(|_| rng.gen_range(0.0..1.0)).collect()).unwrap(),
        })
        .collect()
}

fn random_queries(rng: &mut StdRng, n: usize, count: usize) -> Vec<Request> {
    (0..count)
        .map(|_| {
            let ranges: Vec<(f64, f64)> = (0..DIMS)
                .map(|_| {
                    let c = rng.gen_range(0.2..0.8);
                    (c - 0.15, c + 0.15)
                })
                .collect();
            Request::Query {
                sink: NodeId(rng.gen_range(0..n as u32)),
                query: RangeQuery::exact(ranges).unwrap(),
            }
        })
        .collect()
}

fn sorted_events(mut events: Vec<Event>) -> Vec<Event> {
    events.sort_by(|a, b| {
        a.values()
            .iter()
            .zip(b.values())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    events
}

/// Claim 1: operations partitioned by owning shard commute. One thread
/// per shard submits that shard's inserts concurrently; the identical
/// deployment replays them serially. Every response, every shard ledger,
/// and every subsequent query answer must match exactly.
#[test]
fn shard_partitioned_threads_match_the_serial_reference() {
    let (topo, field) = topology(501);
    let concurrent = pool_handle(&topo, field, 7);
    let serial = pool_handle(&topo, field, 7);

    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let inserts = random_inserts(&mut rng, NODES, 90);

    // Partition by owning shard (inserts land on exactly one shard).
    let mut per_shard: Vec<Vec<Request>> = vec![Vec::new(); concurrent.shard_count()];
    for request in &inserts {
        let shards = concurrent.backend().shards_of(request);
        assert_eq!(shards.len(), 1, "a pool insert touches exactly one shard");
        per_shard[shards[0]].push(request.clone());
    }

    let concurrent_responses: Vec<Vec<Response>> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_shard
            .iter()
            .map(|requests| {
                let service = &concurrent;
                scope.spawn(move || {
                    requests.iter().map(|r| service.submit(r)).collect::<Vec<Response>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("insert thread")).collect()
    });
    let serial_responses: Vec<Vec<Response>> = per_shard
        .iter()
        .map(|requests| requests.iter().map(|r| serial.submit(r)).collect())
        .collect();

    assert_eq!(concurrent_responses, serial_responses, "shard-disjoint submits must commute");
    assert_eq!(concurrent.merged_ledger(), serial.merged_ledger());

    // The stored state is the same too: every query answers identically.
    for query in random_queries(&mut rng, NODES, 10) {
        let a = concurrent.submit(&query);
        let b = serial.submit(&query);
        assert_eq!(sorted_events(a.events.clone()), sorted_events(b.events.clone()));
        assert_eq!(a.messages, b.messages);
        assert_eq!((a.relevant, a.reached, a.delivered), (b.relevant, b.reached, b.delivered));
    }
}

/// Claim 2: conservation under contention. Eight threads hammer one GHT
/// deployment with unpartitioned mixed puts/gets; whatever the
/// interleaving, the messages attributed across responses must equal the
/// exact growth of the shard ledgers — and every operation must land.
#[test]
fn ledger_conservation_holds_under_unpartitioned_contention() {
    let (topo, _field) = topology(733);
    let (backend, shards) = GhtBackend::build(topo, TransportKind::Gpsr, None, None, None, None, 4);
    let service = ServiceHandle::new(backend, shards);

    let before = service.total_messages();
    let attributed: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let service = &service;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xBEEF ^ t);
                    let mut sum = 0u64;
                    for i in 0..25 {
                        let key = format!("key-{}", rng.gen_range(0..12));
                        let request = if i % 3 == 0 {
                            Request::Put {
                                source: NodeId(rng.gen_range(0..NODES as u32)),
                                key,
                                value: t * 1000 + i,
                            }
                        } else {
                            Request::Get { sink: NodeId(rng.gen_range(0..NODES as u32)), key }
                        };
                        let response = service.submit(&request);
                        assert!(response.delivered, "perfect links must deliver {request:?}");
                        sum += response.messages;
                    }
                    sum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker thread")).sum()
    });
    let growth = service.total_messages() - before;
    assert_eq!(attributed, growth, "attributed messages must equal ledger growth exactly");
}

/// Claim 3: the service without coalescing is the monolithic system.
/// Pool's per-pool decomposition is exact, so serving a schedule of
/// inserts and queries must produce the same answers AND charge the same
/// messages, request for request, as a single-threaded [`PoolSystem`]
/// replaying the identical operations.
#[test]
fn uncoalesced_serve_matches_the_monolithic_system_exactly() {
    let (topo, field) = topology(911);
    let service = pool_handle(&topo, field, 13);
    let config = PoolConfig::paper().with_dims(DIMS).with_seed(13);
    let mut monolith = PoolSystem::build(topo.clone(), field, config).expect("monolith");

    let mut rng = StdRng::seed_from_u64(0xD15C);
    let mut requests = random_inserts(&mut rng, NODES, 40);
    requests.extend(random_queries(&mut rng, NODES, 20));
    let schedule: Vec<ScheduledRequest> = requests
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, request)| ScheduledRequest { arrival: i as f64 * 0.05, request })
        .collect();

    let outcome = service.serve(&schedule, &AdmissionConfig::no_coalescing(), 4);

    for (request, response) in requests.iter().zip(&outcome.responses) {
        match request {
            Request::Insert { source, event } => {
                let receipt = monolith.insert_from(*source, event.clone()).expect("insert");
                assert_eq!(response.messages, receipt.messages, "insert cost diverged");
                assert!(response.delivered);
            }
            Request::Query { sink, query } => {
                let reference = monolith.query_from(*sink, query).expect("query");
                assert_eq!(
                    sorted_events(response.events.clone()),
                    sorted_events(reference.events.clone()),
                    "query answers diverged"
                );
                assert_eq!(
                    response.messages,
                    reference.cost.total(),
                    "query cost diverged from the monolithic system"
                );
                assert_eq!(response.relevant, reference.completeness.cells_relevant);
                assert!(response.delivered);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }
}

/// Claim 4: coalescing shares delivery, not answers. The same schedule
/// served with and without coalescing (fresh identical deployments) must
/// hand every request the same result set; the coalesced run must
/// actually merge something and must not cost more messages.
#[test]
fn coalescing_changes_cost_but_never_answers() {
    let (topo, field) = topology(1201);
    let coalesced_handle = pool_handle(&topo, field, 23);
    let ablation_handle = pool_handle(&topo, field, 23);

    let mut rng = StdRng::seed_from_u64(0xFACADE);
    let preload = random_inserts(&mut rng, NODES, 60);
    for request in &preload {
        assert!(coalesced_handle.submit(request).delivered);
        assert!(ablation_handle.submit(request).delivered);
    }

    // Bursts of same-sink overlapping queries: prime coalescing bait.
    let sink = NodeId(17);
    let schedule: Vec<ScheduledRequest> = (0..24)
        .map(|i| {
            let c: Vec<f64> = (0..DIMS).map(|_| 0.45 + 0.01 * ((i % 8) as f64)).collect();
            let ranges: Vec<(f64, f64)> = c.iter().map(|&c| (c - 0.2, c + 0.2)).collect();
            ScheduledRequest {
                arrival: (i / 8) as f64 * 0.4 + (i % 8) as f64 * 0.004,
                request: Request::Query { sink, query: RangeQuery::exact(ranges).unwrap() },
            }
        })
        .collect();

    let coalesced = coalesced_handle.serve(&schedule, &AdmissionConfig::default(), 4);
    let ablation = ablation_handle.serve(&schedule, &AdmissionConfig::no_coalescing(), 4);

    assert!(coalesced.coalesced_requests > 0, "the burst schedule must coalesce");
    assert!(coalesced.total_messages <= ablation.total_messages);
    for (merged, alone) in coalesced.responses.iter().zip(&ablation.responses) {
        assert_eq!(
            sorted_events(merged.events.clone()),
            sorted_events(alone.events.clone()),
            "a coalesced member's answer diverged from its solo answer"
        );
        assert!(merged.delivered && alone.delivered);
    }
}

/// Claim 5: serve outcomes are jobs-invariant — same responses, same
/// latencies, same attribution, bit for bit — across worker counts, for
/// a DIM deployment (the backend with the most cross-shard traffic).
#[test]
fn serve_outcomes_are_jobs_invariant() {
    fn run(jobs: usize) -> pool_service::ServeOutcome {
        let (topo, field) = topology(1601);
        let (backend, shards) =
            DimBackend::build(topo, field, DIMS, TransportKind::Gpsr, None, None, None, None, 4)
                .expect("dim backend");
        let service = ServiceHandle::new(backend, shards);

        let mut rng = StdRng::seed_from_u64(0x1D1D);
        for request in random_inserts(&mut rng, NODES, 40) {
            assert!(service.submit(&request).delivered);
        }
        let schedule: Vec<ScheduledRequest> = random_queries(&mut rng, NODES, 24)
            .into_iter()
            .enumerate()
            .map(|(i, request)| ScheduledRequest { arrival: i as f64 * 0.02, request })
            .collect();
        service.serve(&schedule, &AdmissionConfig::default(), jobs)
    }
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial, parallel, "serve outcome differs between jobs=1 and jobs=8");
}

/// Duplicate GHT gets in one admission window collapse into one fetch
/// and still hand every member the stored values.
#[test]
fn duplicate_gets_coalesce_and_answer_everyone() {
    let (topo, _field) = topology(1999);
    let (backend, shards) = GhtBackend::build(topo, TransportKind::Gpsr, None, None, None, None, 4);
    let service = ServiceHandle::new(backend, shards);

    let put = Request::Put { source: NodeId(3), key: "hot".into(), value: 41 };
    assert!(service.submit(&put).delivered);

    let schedule: Vec<ScheduledRequest> = (0..6)
        .map(|i| ScheduledRequest {
            arrival: i as f64 * 0.005,
            request: Request::Get { sink: NodeId(9), key: "hot".into() },
        })
        .collect();
    let outcome = service.serve(&schedule, &AdmissionConfig::default(), 2);
    assert_eq!(outcome.units, 1, "identical same-window gets must share one unit");
    assert_eq!(outcome.coalesced_requests, 6);
    for response in &outcome.responses {
        assert_eq!(response.values, vec![41]);
        assert!(response.delivered);
        assert_eq!(response.coalesced_with, 5);
    }
}
