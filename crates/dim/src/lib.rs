//! # pool-dim — the DIM baseline
//!
//! A from-scratch implementation of **DIM** (Li, Kim, Govindan & Hong,
//! SenSys 2003), "the only DCS system able to fully support
//! multi-dimensional range queries" before Pool and the baseline the Pool
//! paper evaluates against (§5).
//!
//! * [`code`] — zone codes with their double reading (physical halving of
//!   the field / attribute-space halving for events), i.e. DIM's
//!   locality-preserving geographic hash.
//! * [`zone`] — the zone (k-d) tree built over a deployment; event→zone
//!   mapping; range-query → zone-set resolution.
//! * [`system`] — insertion and query processing over GPSR with per-message
//!   cost accounting, API-compatible with `pool_core::system::PoolSystem`.
//! * [`churn`] — epoch-stepped joins/deaths/moves with budgeted incremental
//!   zone handoffs, replaying `pool_core::dynamics` plans against DIM.
//!
//! # Examples
//!
//! ```
//! use pool_dim::code::ZoneCode;
//!
//! // Figure 1(b): zone 1110 stores events with V₁ ∈ [0.5, 0.75],
//! // V₂ ∈ [0.5, 1] and V₃ ∈ [0.5, 1].
//! let ranges = ZoneCode::parse("1110").attribute_ranges(3);
//! assert_eq!(ranges, vec![(0.5, 0.75), (0.5, 1.0), (0.5, 1.0)]);
//! ```

#![warn(missing_docs)]

pub mod churn;
pub mod code;
pub mod system;
pub mod zone;

pub use churn::DimRepairQueue;
pub use code::ZoneCode;
pub use system::{DimInsertReceipt, DimQueryResult, DimSystem};
pub use zone::{Zone, ZoneTree};
