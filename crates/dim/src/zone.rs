//! The DIM zone tree: recursive binary splits of the deployment field.
//!
//! DIM embeds a k-d tree in the network: the field is halved repeatedly
//! (vertical split first, then horizontal, alternating) until every zone
//! contains at most one sensor. Each non-empty zone's sensor *owns* it; an
//! empty zone is backed up by the node nearest its center (in deployed DIM
//! a neighboring zone owner absorbs it).
//!
//! Every zone's code then doubles as an attribute-space hyper-rectangle via
//! [`ZoneCode::attribute_ranges`] — that is where events live and how range
//! queries find them.

use crate::code::ZoneCode;
use pool_netsim::geometry::{Point, Rect};
use pool_netsim::node::NodeId;
use pool_netsim::topology::Topology;

/// A leaf zone of the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Zone {
    /// The zone's code.
    pub code: ZoneCode,
    /// The physical region of the field this zone covers.
    pub region: Rect,
    /// The sensor that owns (stores events for) this zone.
    pub owner: NodeId,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(usize),
    Internal { children: [Box<Node>; 2] },
}

/// The complete zone tree over one deployment.
///
/// # Examples
///
/// ```
/// use pool_dim::zone::ZoneTree;
/// use pool_netsim::deployment::{Deployment, Placement};
/// use pool_netsim::geometry::Rect;
/// use pool_netsim::topology::Topology;
///
/// let field = Rect::square(100.0);
/// let nodes = Deployment::new(field, 40, Placement::Uniform, 2).nodes();
/// let topo = Topology::build(nodes, 30.0).unwrap();
/// let tree = ZoneTree::build(&topo, field);
/// // Every sensor owns at least the zone it sits in.
/// assert!(tree.zones().len() >= 40);
/// ```
#[derive(Debug, Clone)]
pub struct ZoneTree {
    zones: Vec<Zone>,
    root: Node,
    dims_hint: usize,
}

impl ZoneTree {
    /// Builds the zone tree for `topology` over `field`.
    ///
    /// Splitting detail: even depths split vertically (x), odd depths
    /// horizontally (y), exactly like the code's physical reading.
    pub fn build(topology: &Topology, field: Rect) -> Self {
        let ids: Vec<NodeId> = topology.nodes().iter().map(|n| n.id).collect();
        let mut zones = Vec::new();
        let root = Self::split(topology, field, ids, ZoneCode::root(), 0, &mut zones);
        ZoneTree { zones, root, dims_hint: 0 }
    }

    fn split(
        topology: &Topology,
        region: Rect,
        ids: Vec<NodeId>,
        code: ZoneCode,
        depth: usize,
        zones: &mut Vec<Zone>,
    ) -> Node {
        // Depth guard: co-located nodes can never be separated by halving;
        // stop before the 64-bit code overflows and let the first node own
        // the merged zone.
        if ids.len() <= 1 || depth >= 60 {
            let owner = match ids.first() {
                Some(&id) => id,
                // Empty zone: backed by the network node nearest its center.
                None => topology.nearest_node(region.center()),
            };
            let idx = zones.len();
            zones.push(Zone { code, region, owner });
            return Node::Leaf(idx);
        }
        let vertical = depth.is_multiple_of(2);
        let (lo_region, hi_region) = if vertical {
            let mid = (region.min.x + region.max.x) / 2.0;
            (
                Rect::new(region.min, Point::new(mid, region.max.y)),
                Rect::new(Point::new(mid, region.min.y), region.max),
            )
        } else {
            let mid = (region.min.y + region.max.y) / 2.0;
            (
                Rect::new(region.min, Point::new(region.max.x, mid)),
                Rect::new(Point::new(region.min.x, mid), region.max),
            )
        };
        let (lo_ids, hi_ids): (Vec<NodeId>, Vec<NodeId>) = ids.into_iter().partition(|&id| {
            let p = topology.position(id);
            if vertical {
                p.x < (lo_region.max.x)
            } else {
                p.y < (lo_region.max.y)
            }
        });
        let lo = Self::split(topology, lo_region, lo_ids, code.child(false), depth + 1, zones);
        let hi = Self::split(topology, hi_region, hi_ids, code.child(true), depth + 1, zones);
        Node::Internal { children: [Box::new(lo), Box::new(hi)] }
    }

    /// All leaf zones, in code (DFS) order.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// The zone that stores a `k`-dimensional event with the given values:
    /// the leaf whose code is the prefix of the event's code.
    pub fn zone_of_event(&self, values: &[f64]) -> &Zone {
        assert!(!values.is_empty(), "event has no attributes");
        let k = values.len();
        let mut ranges = vec![(0.0f64, 1.0f64); k];
        let mut node = &self.root;
        let mut depth = 0usize;
        loop {
            match node {
                Node::Leaf(idx) => return &self.zones[*idx],
                Node::Internal { children } => {
                    let dim = depth % k;
                    let (lo, hi) = ranges[dim];
                    let mid = (lo + hi) / 2.0;
                    if values[dim] >= mid {
                        ranges[dim] = (mid, hi);
                        node = &children[1];
                    } else {
                        ranges[dim] = (lo, mid);
                        node = &children[0];
                    }
                    depth += 1;
                }
            }
        }
    }

    /// The zones whose attribute hyper-rectangles overlap the (rewritten)
    /// query, in code (DFS) order — DIM's query resolution.
    pub fn zones_overlapping(&self, rewritten: &[(f64, f64)]) -> Vec<&Zone> {
        assert!(!rewritten.is_empty(), "query has no dimensions");
        let k = rewritten.len();
        let mut out = Vec::new();
        let ranges = vec![(0.0f64, 1.0f64); k];
        self.collect_overlaps(&self.root, rewritten, ranges, 0, &mut out);
        out
    }

    fn collect_overlaps<'a>(
        &'a self,
        node: &'a Node,
        query: &[(f64, f64)],
        ranges: Vec<(f64, f64)>,
        depth: usize,
        out: &mut Vec<&'a Zone>,
    ) {
        // Prune as soon as any dimension's range misses the query.
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            let (ql, qu) = query[i];
            if hi < ql || lo > qu {
                return;
            }
        }
        match node {
            Node::Leaf(idx) => out.push(&self.zones[*idx]),
            Node::Internal { children } => {
                let k = query.len();
                let dim = depth % k;
                let (lo, hi) = ranges[dim];
                let mid = (lo + hi) / 2.0;
                let mut lo_ranges = ranges.clone();
                lo_ranges[dim] = (lo, mid);
                self.collect_overlaps(&children[0], query, lo_ranges, depth + 1, out);
                let mut hi_ranges = ranges;
                hi_ranges[dim] = (mid, hi);
                self.collect_overlaps(&children[1], query, hi_ranges, depth + 1, out);
            }
        }
    }

    /// Reassigns every zone whose owner died to the live node nearest the
    /// zone's center (DIM's repair: a neighboring owner absorbs the dead
    /// zone). Returns the number of zones reassigned.
    pub fn repair_owners(&mut self, topology: &Topology) -> usize {
        let mut reassigned = 0;
        for zone in &mut self.zones {
            if !topology.is_alive(zone.owner) {
                zone.owner = topology.nearest_node(zone.region.center());
                reassigned += 1;
            }
        }
        reassigned
    }

    /// Re-elects the owner of every zone whose current owner is dead or
    /// listed in `displaced` (it moved this epoch and may no longer be the
    /// zone's best host). The new owner is the live node nearest the
    /// zone's center — the same rule [`ZoneTree::repair_owners`] applies
    /// to dead owners. Returns `(zone index, old owner, new owner)` for
    /// every zone that actually changed hands, in zone order.
    pub fn re_elect_owners(
        &mut self,
        topology: &Topology,
        displaced: &[NodeId],
    ) -> Vec<(usize, NodeId, NodeId)> {
        let mut changed = Vec::new();
        for (i, zone) in self.zones.iter_mut().enumerate() {
            if !topology.is_alive(zone.owner) || displaced.contains(&zone.owner) {
                let elected = topology.nearest_node(zone.region.center());
                if elected != zone.owner {
                    changed.push((i, zone.owner, elected));
                    zone.owner = elected;
                }
            }
        }
        changed
    }

    /// Maximum code length (tree depth).
    pub fn depth(&self) -> usize {
        self.zones.iter().map(|z| z.code.len()).max().unwrap_or(0)
    }

    #[allow(dead_code)]
    fn dims_hint(&self) -> usize {
        self.dims_hint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_netsim::node::Node as NetNode;

    /// The eight-sensor network of Figure 1(a), normalized to a unit field.
    fn figure1_topology() -> (Topology, Rect) {
        let field = Rect::square(1.0);
        let positions = [
            (0.2, 0.2),  // zone 00
            (0.1, 0.7),  // zone 010
            (0.35, 0.7), // zone 011
            (0.6, 0.2),  // zone 100
            (0.8, 0.2),  // zone 101
            (0.6, 0.7),  // zone 110
            (0.8, 0.6),  // zone 1110
            (0.8, 0.9),  // zone 1111
        ];
        let nodes = positions
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| NetNode::new(NodeId(i as u32), Point::new(x, y)))
            .collect();
        (Topology::build(nodes, 2.0).unwrap(), field)
    }

    #[test]
    fn figure1_zone_codes() {
        let (topo, field) = figure1_topology();
        let tree = ZoneTree::build(&topo, field);
        let mut codes: Vec<String> = tree.zones().iter().map(|z| z.code.to_string()).collect();
        codes.sort();
        let mut expect = vec!["00", "010", "011", "100", "101", "110", "1110", "1111"];
        expect.sort_unstable();
        assert_eq!(codes, expect);
    }

    #[test]
    fn figure1_owners_match_their_zone() {
        let (topo, field) = figure1_topology();
        let tree = ZoneTree::build(&topo, field);
        for zone in tree.zones() {
            assert!(
                zone.region.contains(topo.position(zone.owner)),
                "owner of {} outside its region",
                zone.code
            );
        }
    }

    #[test]
    fn figure1_exact_query_hits_expected_zones() {
        // §1: Q = <[0.6,0.8], [0.6,0.65], [0.45,0.6]> involves zones 110,
        // 1111 and 1110.
        let (topo, field) = figure1_topology();
        let tree = ZoneTree::build(&topo, field);
        let hits: Vec<String> = tree
            .zones_overlapping(&[(0.6, 0.8), (0.6, 0.65), (0.45, 0.6)])
            .iter()
            .map(|z| z.code.to_string())
            .collect();
        assert_eq!(hits, vec!["110", "1110", "1111"]);
    }

    #[test]
    fn figure1_partial_query_spans_half_the_network() {
        // §1: Q = <*, [0.6,0.7], [0.4,0.6]> is collected from zones 010,
        // 011, 110, 1111 and 1110 — half the sensors.
        let (topo, field) = figure1_topology();
        let tree = ZoneTree::build(&topo, field);
        let hits: Vec<String> = tree
            .zones_overlapping(&[(0.0, 1.0), (0.6, 0.7), (0.4, 0.6)])
            .iter()
            .map(|z| z.code.to_string())
            .collect();
        assert_eq!(hits, vec!["010", "011", "110", "1110", "1111"]);
    }

    #[test]
    fn zones_partition_the_field() {
        let (topo, field) = figure1_topology();
        let tree = ZoneTree::build(&topo, field);
        let area: f64 = tree.zones().iter().map(|z| z.region.area()).sum();
        assert!((area - field.area()).abs() < 1e-9);
        // Codes are prefix-free.
        for (i, a) in tree.zones().iter().enumerate() {
            for b in &tree.zones()[i + 1..] {
                assert!(!a.code.is_prefix_of(&b.code) && !b.code.is_prefix_of(&a.code));
            }
        }
    }

    #[test]
    fn event_maps_to_exactly_one_zone_with_prefix_code() {
        let (topo, field) = figure1_topology();
        let tree = ZoneTree::build(&topo, field);
        let probes = [
            [0.1, 0.1, 0.1],
            [0.9, 0.9, 0.9],
            [0.3, 0.8, 0.2],
            [0.51, 0.49, 0.99],
            [0.62, 0.71, 0.44],
        ];
        for values in probes {
            let zone = tree.zone_of_event(&values);
            let event_code = ZoneCode::of_event(&values, zone.code.len());
            assert_eq!(event_code, zone.code, "event {values:?}");
            // The zone's attribute region contains the event.
            for (i, (lo, hi)) in zone.code.attribute_ranges(3).into_iter().enumerate() {
                assert!(values[i] >= lo && values[i] <= hi, "dim {i} of {values:?}");
            }
        }
    }

    #[test]
    fn overlapping_zones_include_the_storing_zone() {
        // Soundness: a matching event's zone is always in the overlap set.
        let (topo, field) = figure1_topology();
        let tree = ZoneTree::build(&topo, field);
        let query = [(0.2, 0.7), (0.1, 0.8), (0.3, 0.9)];
        let overlapping: Vec<ZoneCode> =
            tree.zones_overlapping(&query).iter().map(|z| z.code).collect();
        let steps = 8;
        for a in 0..=steps {
            for b in 0..=steps {
                for c in 0..=steps {
                    let v =
                        [a as f64 / steps as f64, b as f64 / steps as f64, c as f64 / steps as f64];
                    let matches = (0..3).all(|i| v[i] >= query[i].0 && v[i] <= query[i].1);
                    if matches {
                        let zone = tree.zone_of_event(&v);
                        assert!(overlapping.contains(&zone.code), "event {v:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn larger_network_zones_scale_with_nodes() {
        use pool_netsim::deployment::{Deployment, Placement};
        let field = Rect::square(200.0);
        let nodes = Deployment::new(field, 150, Placement::Uniform, 5).nodes();
        let topo = Topology::build(nodes, 40.0).unwrap();
        let tree = ZoneTree::build(&topo, field);
        // At least one zone per node (empty siblings may add more).
        assert!(tree.zones().len() >= 150);
        // Every node owns at least one zone.
        let mut owners: Vec<NodeId> = tree.zones().iter().map(|z| z.owner).collect();
        owners.sort_unstable();
        owners.dedup();
        assert_eq!(owners.len(), 150);
    }
}

#[cfg(test)]
mod physical_reading_tests {
    use super::*;
    use pool_netsim::deployment::{Deployment, Placement};

    /// The double reading is consistent: every zone's code equals the
    /// physical reading of its own region's center — DIM's defining
    /// property tying attribute space to the field.
    #[test]
    fn zone_codes_equal_physical_reading_of_their_region() {
        let field = Rect::square(150.0);
        let nodes = Deployment::new(field, 60, Placement::Uniform, 9).nodes();
        let topo = Topology::build(nodes, 40.0).unwrap();
        let tree = ZoneTree::build(&topo, field);
        for zone in tree.zones() {
            let derived = ZoneCode::of_position(zone.region.center(), field, zone.code.len());
            assert_eq!(derived, zone.code, "zone {} region {:?}", zone.code, zone.region);
        }
    }

    /// Owners sit inside regions whose physical reading prefixes their
    /// zone's code.
    #[test]
    fn owner_positions_read_back_to_their_codes() {
        let field = Rect::square(120.0);
        let nodes = Deployment::new(field, 50, Placement::Uniform, 12).nodes();
        let topo = Topology::build(nodes, 40.0).unwrap();
        let tree = ZoneTree::build(&topo, field);
        for zone in tree.zones() {
            let owner_pos = topo.position(zone.owner);
            if zone.region.contains(owner_pos) {
                let reading = ZoneCode::of_position(owner_pos, field, zone.code.len());
                assert_eq!(reading, zone.code);
            }
        }
    }
}
