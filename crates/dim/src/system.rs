//! The deployed DIM system: insertion and range-query processing with
//! message accounting, mirroring [`pool_core::system::PoolSystem`]'s API so
//! the benchmark harness can drive both schemes identically.
//!
//! ## Cost model
//!
//! * **Insertion**: the detecting node computes the event's zone locally
//!   and GPSR-routes the event to the zone owner — identical in kind to
//!   Pool's insertion (the paper omits the insertion comparison for exactly
//!   this reason, §5.2).
//! * **Query**: the relevant zones are visited along a chain in code (DFS)
//!   order, which is geographically local because code order is space
//!   order. The sink routes to the first owner; each owner forwards to the
//!   next; aggregated replies retrace the chain. This is a *charitable*
//!   model for DIM — real DIM pays additional splitting overhead — so any
//!   Pool advantage measured against it is conservative.

use crate::zone::ZoneTree;
use pool_core::event::Event;
use pool_core::insert::InsertError;
use pool_core::query::RangeQuery;
use pool_core::system::QueryCost;
use pool_core::PoolError;
use pool_gpsr::Planarization;
use pool_netsim::geometry::Rect;
use pool_netsim::node::NodeId;
use pool_netsim::stats::TrafficStats;
use pool_netsim::topology::Topology;
use pool_transport::metrics::{LedgerSnapshot, LoadReport, NodeRole};
use pool_transport::trace::{TraceOp, Tracer};
use pool_transport::{
    FaultPlan, FaultyTransport, LossyConfig, LossyTransport, OpRetryPolicy, RecoveryConfig,
    TrafficLayer, TrafficLedger, Transport, TransportKind,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of one DIM query.
#[derive(Debug, Clone, PartialEq)]
pub struct DimQueryResult {
    /// All qualifying events.
    pub events: Vec<Event>,
    /// Message cost breakdown (same shape as Pool's).
    pub cost: QueryCost,
    /// Number of zones whose attribute region overlapped the query.
    pub zones_visited: usize,
    /// Zones that received the query and (when they had matches) got their
    /// reply back to the sink — DIM's analogue of Pool's
    /// [`pool_core::system::Completeness`]. Equals `zones_visited` on a
    /// loss-free radio.
    pub zones_reached: usize,
    /// Zone indices (into [`DimSystem::tree`]'s zone order) among the
    /// visited zones that did NOT fully answer — cut off the forward
    /// chain, or stranded by a dead reply leg. The sharded service layer
    /// uses this identity to recompose per-request completeness when
    /// queries are coalesced.
    pub unreached_zones: Vec<usize>,
}

/// Outcome of a DIM failure-injection step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DimFailureReport {
    /// Nodes newly failed.
    pub failed_nodes: usize,
    /// Zones reassigned to surviving owners.
    pub zones_reassigned: usize,
    /// Events lost with their dead owners (DIM keeps no replicas).
    pub events_lost: usize,
    /// Whether the surviving network is split into several components
    /// (repair proceeds in degraded mode, mirroring Pool).
    pub partitioned: bool,
    /// Survivors outside the largest connected component.
    pub nodes_unreachable: usize,
    /// Zones whose (repaired) owner sits outside the largest component.
    pub zones_unreachable: usize,
}

/// Receipt for one DIM insertion.
#[derive(Debug, Clone, PartialEq)]
pub struct DimInsertReceipt {
    /// The owner node the event was stored at.
    pub owner: NodeId,
    /// Radio messages charged.
    pub messages: u64,
    /// Virtual time the insertion took, in seconds.
    pub elapsed: f64,
}

/// A running DIM deployment over one sensor network.
///
/// # Examples
///
/// ```
/// use pool_core::event::Event;
/// use pool_core::query::RangeQuery;
/// use pool_dim::system::DimSystem;
/// use pool_netsim::deployment::Deployment;
/// use pool_netsim::topology::Topology;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let deployment = Deployment::paper_setting(300, 40.0, 20.0, 23)?;
/// let field = deployment.field();
/// let topology = Topology::build(deployment.nodes(), 40.0)?;
/// let mut dim = DimSystem::build(topology, field, 3)?;
///
/// let src = dim.topology().nodes()[4].id;
/// dim.insert_from(src, Event::new(vec![0.7, 0.2, 0.4])?)?;
/// let result = dim.query_from(
///     dim.topology().nodes()[9].id,
///     &RangeQuery::exact(vec![(0.6, 0.8), (0.1, 0.3), (0.3, 0.5)])?,
/// )?;
/// assert_eq!(result.events.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DimSystem {
    pub(crate) topology: Arc<Topology>,
    pub(crate) transport: Box<dyn Transport>,
    pub(crate) tree: ZoneTree,
    dims: usize,
    /// Events stored per zone index (index into `tree.zones()`).
    pub(crate) store: HashMap<usize, Vec<Event>>,
    zone_index_by_code: HashMap<crate::code::ZoneCode, usize>,
    tracer: Tracer,
    /// Optional bounded operation-level retry for query legs (mirrors
    /// [`pool_core::config::PoolConfig::op_retry`]).
    op_retry: Option<OpRetryPolicy>,
}

impl DimSystem {
    /// Builds a DIM deployment for `dims`-dimensional events.
    ///
    /// # Errors
    ///
    /// [`PoolError::InvalidConfig`] for `dims == 0` and
    /// [`PoolError::Routing`] for a disconnected network.
    pub fn build(topology: Topology, field: Rect, dims: usize) -> Result<Self, PoolError> {
        Self::build_with_transport(topology, field, dims, TransportKind::Gpsr)
    }

    /// Builds a DIM deployment over the chosen routing substrate (the
    /// benchmark harness passes the same [`TransportKind`] to Pool and DIM
    /// so both schemes route — and memoize — identically).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DimSystem::build`].
    pub fn build_with_transport(
        topology: Topology,
        field: Rect,
        dims: usize,
        kind: TransportKind,
    ) -> Result<Self, PoolError> {
        Self::build_with_substrate(topology, field, dims, kind, None)
    }

    /// Builds a DIM deployment over the chosen routing substrate and an
    /// optional lossy link layer — the same degraded-mode radio Pool runs
    /// on via [`pool_core::config::PoolConfig::with_lossy`], so lossy
    /// benchmarks stress both schemes identically.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DimSystem::build`].
    pub fn build_with_substrate(
        topology: Topology,
        field: Rect,
        dims: usize,
        kind: TransportKind,
        lossy: Option<LossyConfig>,
    ) -> Result<Self, PoolError> {
        Self::build_with_resilience(topology, field, dims, kind, lossy, None, None, None)
    }

    /// Builds a DIM deployment with the full resilience stack: structured
    /// fault injection, adaptive recovery, and operation-level retry — the
    /// same knobs Pool exposes via [`pool_core::config::PoolConfig`], so
    /// chaos campaigns stress both schemes identically. When `faults` or
    /// `recovery` is set, a perfect-link lossy substrate is substituted if
    /// `lossy` is `None` (the fault machinery needs the ARQ walk).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DimSystem::build`].
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_resilience(
        topology: Topology,
        field: Rect,
        dims: usize,
        kind: TransportKind,
        lossy: Option<LossyConfig>,
        faults: Option<FaultPlan>,
        recovery: Option<RecoveryConfig>,
        op_retry: Option<OpRetryPolicy>,
    ) -> Result<Self, PoolError> {
        Self::build_shared(Arc::new(topology), field, dims, kind, lossy, faults, recovery, op_retry)
    }

    /// Builds a DIM deployment over an already-shared `topology` with the
    /// full resilience stack. The service layer builds many per-shard
    /// systems over one network snapshot; sharing the [`Arc`] keeps them
    /// all reading the identical immutable neighbor tables. Behaviour is
    /// byte-identical to [`DimSystem::build_with_resilience`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`DimSystem::build`].
    #[allow(clippy::too_many_arguments)]
    pub fn build_shared(
        topology: Arc<Topology>,
        field: Rect,
        dims: usize,
        kind: TransportKind,
        lossy: Option<LossyConfig>,
        faults: Option<FaultPlan>,
        recovery: Option<RecoveryConfig>,
        op_retry: Option<OpRetryPolicy>,
    ) -> Result<Self, PoolError> {
        if dims == 0 {
            return Err(PoolError::InvalidConfig { reason: "k = 0".into() });
        }
        topology.require_connected().map_err(|e| PoolError::Routing(e.to_string()))?;
        let tree = ZoneTree::build(&topology, field);
        let mut transport = kind.build(&topology, Planarization::Gabriel);
        if faults.is_some() || recovery.is_some() {
            let lossy = lossy.unwrap_or_else(|| LossyConfig::fixed(1.0, 0));
            let plan = faults.unwrap_or_default();
            transport = match recovery {
                Some(recovery) => {
                    Box::new(FaultyTransport::wrap_adaptive(transport, lossy, plan, recovery))
                }
                None => Box::new(FaultyTransport::wrap(transport, lossy, plan)),
            };
        } else if let Some(lossy) = lossy {
            transport = Box::new(LossyTransport::wrap(transport, lossy));
        }
        let zone_index_by_code =
            tree.zones().iter().enumerate().map(|(i, z)| (z.code, i)).collect();
        Ok(DimSystem {
            topology,
            transport,
            tree,
            dims,
            store: HashMap::new(),
            zone_index_by_code,
            tracer: Tracer::default(),
            op_retry,
        })
    }

    /// Delivers one packet along `path`, charging `layer` and tracing the
    /// leg under `op` — DIM's mirror of Pool's traced delivery helper.
    pub(crate) fn deliver_traced(
        &mut self,
        op: TraceOp,
        path: &[NodeId],
        layer: TrafficLayer,
    ) -> pool_transport::DeliveryOutcome {
        let outcome = self.transport.deliver(&self.topology, path, layer);
        let end = self.transport.clock().now();
        self.tracer.record_delivery(op, path, layer, &outcome, end);
        outcome
    }

    /// Delivers `copies` reply packets in reverse along `path`, tracing.
    fn deliver_reverse_traced(
        &mut self,
        op: TraceOp,
        path: &[NodeId],
        copies: u64,
        layer: TrafficLayer,
    ) -> pool_transport::ReverseDelivery {
        let outcome = self.transport.deliver_reverse(&self.topology, path, copies, layer);
        let end = self.transport.clock().now();
        self.tracer.record_reverse(op, path, copies, layer, &outcome, end);
        outcome
    }

    /// [`DimSystem::deliver_traced`] with the span's detour flag set.
    fn deliver_traced_marked(
        &mut self,
        op: TraceOp,
        path: &[NodeId],
        layer: TrafficLayer,
        detour: bool,
    ) -> pool_transport::DeliveryOutcome {
        let mut outcome = self.transport.deliver(&self.topology, path, layer);
        outcome.detour = detour;
        let end = self.transport.clock().now();
        self.tracer.record_delivery(op, path, layer, &outcome, end);
        outcome
    }

    /// Delivers along `route` with bounded operation-level retry — DIM's
    /// mirror of `PoolSystem::deliver_with_recovery`. Failed legs are
    /// re-attempted (via a detour route around the failed hop when the
    /// policy allows), every attempt charged normally. Returns the
    /// aggregated outcome and the route the packet last travelled, which
    /// the reply must retrace.
    fn deliver_with_recovery(
        &mut self,
        op: TraceOp,
        route: Arc<pool_gpsr::Route>,
        layer: TrafficLayer,
    ) -> (pool_transport::DeliveryOutcome, Arc<pool_gpsr::Route>) {
        let mut total = self.deliver_traced(op, &route.path, layer);
        let mut used = route;
        let Some(policy) = self.op_retry else {
            return (total, used);
        };
        let from = used.path[0];
        let to = *used.path.last().expect("routes contain at least the source");
        let mut excluded: Vec<NodeId> = Vec::new();
        for _ in 0..policy.attempts {
            if total.delivered {
                break;
            }
            let Some((_, suspect)) = total.failed_hop else { break };
            let attempt_route = if policy.detour {
                if suspect != to && !excluded.contains(&suspect) {
                    excluded.push(suspect);
                }
                match self.transport.route_to_node_avoiding(&self.topology, from, to, &excluded) {
                    Ok(r) => r,
                    Err(_) => break,
                }
            } else {
                Arc::clone(&used)
            };
            let on_detour = policy.detour && !excluded.is_empty();
            let retry = self.deliver_traced_marked(op, &attempt_route.path, layer, on_detour);
            total.transmissions += retry.transmissions;
            total.retransmissions += retry.retransmissions;
            total.latency += retry.latency;
            total.delivered = retry.delivered;
            total.reached = retry.reached;
            total.failed_hop = retry.failed_hop;
            total.detour = on_detour;
            used = attempt_route;
        }
        (total, used)
    }

    /// Reply-leg bounded retry: re-sends only the copies that failed to
    /// arrive, along the same path.
    fn deliver_reverse_with_retry(
        &mut self,
        op: TraceOp,
        path: &[NodeId],
        copies: u64,
        layer: TrafficLayer,
    ) -> pool_transport::ReverseDelivery {
        let mut total = self.deliver_reverse_traced(op, path, copies, layer);
        let Some(policy) = self.op_retry else {
            return total;
        };
        for _ in 0..policy.attempts {
            if total.delivered_copies >= copies {
                break;
            }
            let missing = copies - total.delivered_copies;
            let retry = self.deliver_reverse_traced(op, path, missing, layer);
            total.delivered_copies += retry.delivered_copies;
            total.transmissions += retry.transmissions;
            total.retransmissions += retry.retransmissions;
            total.latency += retry.latency;
        }
        total
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The zone tree.
    pub fn tree(&self) -> &ZoneTree {
        &self.tree
    }

    /// All traffic charged so far.
    pub fn traffic(&self) -> &TrafficStats {
        self.transport.ledger().stats()
    }

    /// The per-layer message ledger.
    pub fn ledger(&self) -> &TrafficLedger {
        self.transport.ledger()
    }

    /// The routing substrate.
    pub fn transport(&self) -> &dyn Transport {
        self.transport.as_ref()
    }

    /// Mutable access to the routing substrate.
    pub fn transport_mut(&mut self) -> &mut dyn Transport {
        self.transport.as_mut()
    }

    /// The delivery trace (one span per routed leg, bounded ring buffer).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the delivery trace.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Assembles the per-node load report: message loads from the ledger,
    /// storage loads from the zone store, and an [`NodeRole::Index`] tag on
    /// every zone owner (DIM has no splitters or delegates — every owner is
    /// its zone's index).
    pub fn load_report(&self) -> LoadReport {
        let mut report = LoadReport::from_ledger(self.transport.ledger());
        report.set_busy_times(self.transport.clock().busy_times());
        report.set_delivery_stats(self.transport.delivery_stats());
        let zones = self.tree.zones();
        let mut held: HashMap<NodeId, u64> = HashMap::new();
        for (&zone_idx, events) in &self.store {
            *held.entry(zones[zone_idx].owner).or_insert(0) += events.len() as u64;
        }
        for (&owner, &count) in &held {
            report.set_events_held(owner, count);
        }
        for z in zones {
            report.tag(z.owner, NodeRole::Index);
        }
        report
    }

    /// Number of stored events.
    pub fn stored_events(&self) -> usize {
        self.store.values().map(Vec::len).sum()
    }

    /// The largest number of events held by any single zone owner (hotspot
    /// indicator; DIM "does not adapt gracefully to skewed data", §1).
    pub fn max_owner_load(&self) -> usize {
        let mut by_owner: HashMap<NodeId, usize> = HashMap::new();
        for (&zone_idx, events) in &self.store {
            *by_owner.entry(self.tree.zones()[zone_idx].owner).or_insert(0) += events.len();
        }
        by_owner.values().copied().max().unwrap_or(0)
    }

    /// Inserts an event detected at `source`.
    ///
    /// # Errors
    ///
    /// [`InsertError::Undeliverable`] when the event cannot reach its zone
    /// owner over the lossy link layer; [`InsertError::Pool`] wrapping
    /// [`PoolError::DimensionMismatch`] for wrong arity or other routing
    /// errors — the same contract as
    /// [`pool_core::system::PoolSystem::insert_from`].
    pub fn insert_from(
        &mut self,
        source: NodeId,
        event: Event,
    ) -> Result<DimInsertReceipt, InsertError> {
        if event.dims() != self.dims {
            return Err(InsertError::Pool(PoolError::DimensionMismatch {
                expected: self.dims,
                got: event.dims(),
            }));
        }
        let ledger_before = LedgerSnapshot::of(self.transport.ledger());
        let zone = self.tree.zone_of_event(event.values());
        let owner = zone.owner;
        let zone_idx = self.zone_index_by_code[&zone.code];
        let route = match self.transport.route_to_node(&self.topology, source, owner) {
            Ok(route) => route,
            Err(pool_gpsr::RouteError::NotDelivered { delivered, .. }) => {
                return Err(InsertError::Undeliverable {
                    from: source,
                    to: owner,
                    reached: delivered,
                    transmissions: 0,
                });
            }
            Err(e) => return Err(InsertError::Pool(e.into())),
        };
        let outcome = self.deliver_traced(TraceOp::Insert, &route.path, TrafficLayer::Insert);
        if !outcome.delivered {
            return Err(InsertError::Undeliverable {
                from: source,
                to: owner,
                reached: outcome.reached,
                transmissions: outcome.transmissions,
            });
        }
        self.store.entry(zone_idx).or_default().push(event);
        ledger_before.debug_assert_sum(
            self.transport.ledger(),
            "dim insert_from",
            outcome.transmissions,
            &[TrafficLayer::Insert, TrafficLayer::Retransmit],
        );
        Ok(DimInsertReceipt { owner, messages: outcome.transmissions, elapsed: outcome.latency })
    }

    /// Processes a range query issued at `sink`.
    ///
    /// # Errors
    ///
    /// [`PoolError::DimensionMismatch`] for wrong arity, routing errors
    /// otherwise.
    pub fn query_from(
        &mut self,
        sink: NodeId,
        query: &RangeQuery,
    ) -> Result<DimQueryResult, PoolError> {
        self.query_restricted(sink, query, None)
    }

    /// Processes a range query restricted to the given zone indices
    /// (indices into [`DimSystem::tree`]'s zone order).
    ///
    /// The sharded service layer partitions the zone tree across shards
    /// and has each shard answer only its owned slice. Unlike Pool's
    /// per-pool decomposition, DIM's full-query owner chain is serial —
    /// so the union of restricted sub-queries walks shorter chains (each
    /// paying its own sink → first-owner leg) rather than reproducing the
    /// single chain's cost. The result is still exact: every restricted
    /// zone that answers returns precisely its matching events.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DimSystem::query_from`].
    pub fn query_zones_from(
        &mut self,
        sink: NodeId,
        query: &RangeQuery,
        zones: &[usize],
    ) -> Result<DimQueryResult, PoolError> {
        self.query_restricted(sink, query, Some(zones))
    }

    fn query_restricted(
        &mut self,
        sink: NodeId,
        query: &RangeQuery,
        zones: Option<&[usize]>,
    ) -> Result<DimQueryResult, PoolError> {
        if query.dims() != self.dims {
            return Err(PoolError::DimensionMismatch { expected: self.dims, got: query.dims() });
        }
        let ledger_before = LedgerSnapshot::of(self.transport.ledger());
        let rewritten = query.rewritten();
        let mut relevant: Vec<(usize, NodeId)> = self
            .tree
            .zones_overlapping(&rewritten)
            .iter()
            .map(|z| (self.zone_index_by_code[&z.code], z.owner))
            .collect();
        if let Some(zones) = zones {
            relevant.retain(|(zone_idx, _)| zones.contains(zone_idx));
        }
        let zones_visited = relevant.len();

        // Visit owners in code (DFS) order, skipping consecutive duplicates
        // (empty zones backed by the same physical node). `zone_pos[i]` is
        // the chain position serving relevant zone `i`.
        let mut chain: Vec<NodeId> = Vec::new();
        let mut zone_pos: Vec<usize> = Vec::with_capacity(relevant.len());
        for (_, owner) in &relevant {
            if chain.last() != Some(owner) {
                chain.push(*owner);
            }
            zone_pos.push(chain.len() - 1);
        }

        let mut cost = QueryCost::default();
        let mut events = Vec::new();
        if chain.is_empty() {
            return Ok(DimQueryResult {
                events,
                cost,
                zones_visited,
                zones_reached: 0,
                unreached_zones: Vec::new(),
            });
        }

        // DIM's chain is inherently serial in time too: each owner can only
        // forward once it has the query, and replies retrace leg by leg —
        // there is no fan-out to overlap, so the elapsed time is simply the
        // clock advance across the whole operation.
        let op_start = self.transport.clock().now();

        // Forward legs: sink to the first owner, then owner to owner. On a
        // lossy radio the chain is only as long as its weakest link — the
        // first undelivered leg cuts every owner past it off the query.
        let mut legs: Vec<Arc<pool_gpsr::Route>> = Vec::new();
        let mut from = sink;
        for &to in &chain {
            let leg = match self.transport.route_to_node(&self.topology, from, to) {
                Ok(route) => route,
                Err(pool_gpsr::RouteError::NotDelivered { .. }) => break,
                Err(e) => return Err(e.into()),
            };
            let (fwd, leg) = self.deliver_with_recovery(TraceOp::Query, leg, TrafficLayer::Forward);
            cost.forward_messages += fwd.transmissions - fwd.retransmissions;
            cost.retransmit_messages += fwd.retransmissions;
            cost.forward_latency += fwd.latency;
            if !fwd.delivered {
                break;
            }
            legs.push(leg);
            from = to;
        }
        // Owners at chain positions `0..reached_len` received the query.
        let reached_len = legs.len();

        // Collect matches from the owners the query reached.
        let mut any_match = false;
        let mut unreached_zones: Vec<usize> = Vec::new();
        // (zone idx, chain pos, matches) for zones the query reached.
        let mut per_zone: Vec<(usize, usize, Vec<Event>)> = Vec::new();
        for ((zone_idx, _), &pos) in relevant.iter().zip(&zone_pos) {
            if pos >= reached_len {
                unreached_zones.push(*zone_idx);
                continue;
            }
            let matches: Vec<Event> = self
                .store
                .get(zone_idx)
                .into_iter()
                .flatten()
                .filter(|e| query.matches(e))
                .cloned()
                .collect();
            if !matches.is_empty() {
                any_match = true;
            }
            per_zone.push((*zone_idx, pos, matches));
        }

        // Aggregated replies retrace the chain back to the sink: each owner
        // merges its sub-reply into the homeward stream, so each leg is
        // charged once in reverse, and owner `i`'s events arrive iff every
        // leg between it and the sink (reverse legs `0..=i`) delivered.
        let mut first_failed_reverse = reached_len;
        if any_match {
            for (j, leg) in legs.iter().enumerate() {
                let rev = self.deliver_reverse_with_retry(
                    TraceOp::Query,
                    &leg.path,
                    1,
                    TrafficLayer::Reply,
                );
                cost.reply_messages += rev.transmissions - rev.retransmissions;
                cost.retransmit_messages += rev.retransmissions;
                cost.reply_latency += rev.latency;
                if rev.delivered_copies == 0 && j < first_failed_reverse {
                    first_failed_reverse = j;
                }
            }
        }
        cost.elapsed = self.transport.clock().now() - op_start;
        let mut zones_reached = 0usize;
        for (zone_idx, pos, matches) in per_zone {
            if matches.is_empty() {
                zones_reached += 1;
            } else if pos < first_failed_reverse {
                zones_reached += 1;
                events.extend(matches);
            } else {
                unreached_zones.push(zone_idx);
            }
        }
        ledger_before.debug_assert_layers(
            self.transport.ledger(),
            "dim query_from",
            &[
                (TrafficLayer::Forward, cost.forward_messages),
                (TrafficLayer::Reply, cost.reply_messages),
                (TrafficLayer::Retransmit, cost.retransmit_messages),
            ],
        );
        Ok(DimQueryResult { events, cost, zones_visited, zones_reached, unreached_zones })
    }

    /// Fails `dead` nodes: the events they owned are lost (DIM keeps no
    /// replicas), their zones are absorbed by the nearest survivors, and
    /// routing is rebuilt over the live network.
    ///
    /// A failure that splits the survivors no longer aborts — the report's
    /// [`DimFailureReport::partitioned`] flag is set and the unreachable
    /// remainder tallied, mirroring Pool's degraded mode.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownNode`] if any id was never deployed (nothing is
    /// applied). Failing an already-dead node is an idempotent no-op:
    /// duplicates and corpses are filtered out before counting, mirroring
    /// [`pool_core::system::PoolSystem`]'s `fail_nodes`.
    pub fn fail_nodes(&mut self, dead: &[NodeId]) -> Result<DimFailureReport, PoolError> {
        let nodes = self.topology.len();
        if let Some(&bad) = dead.iter().find(|d| d.index() >= nodes) {
            return Err(PoolError::UnknownNode { node: bad, nodes });
        }
        let mut victims: Vec<NodeId> =
            dead.iter().copied().filter(|&d| self.topology.is_alive(d)).collect();
        victims.sort_unstable();
        victims.dedup();
        if victims.is_empty() {
            return Ok(DimFailureReport::default());
        }
        let dead = victims.as_slice();
        let failed_nodes = dead.len();
        let new_topology = self.topology.without_nodes(dead);
        let partitioned = !new_topology.is_connected();
        self.transport.rebuild(&new_topology);
        self.topology = Arc::new(new_topology);

        // Events held by dead owners are gone.
        let mut events_lost = 0usize;
        let zones = self.tree.zones().to_vec();
        for (zone_idx, events) in self.store.iter_mut() {
            if !self.topology.is_alive(zones[*zone_idx].owner) {
                events_lost += events.len();
                events.clear();
            }
        }
        self.store.retain(|_, v| !v.is_empty());
        let zones_reassigned = self.tree.repair_owners(&self.topology);
        let (nodes_unreachable, zones_unreachable) = if partitioned {
            let main: std::collections::HashSet<NodeId> =
                self.topology.largest_component_members().into_iter().collect();
            (
                self.topology.len() - main.len(),
                self.tree.zones().iter().filter(|z| !main.contains(&z.owner)).count(),
            )
        } else {
            (0, 0)
        };
        Ok(DimFailureReport {
            failed_nodes,
            zones_reassigned,
            events_lost,
            partitioned,
            nodes_unreachable,
            zones_unreachable,
        })
    }

    /// Brute-force ground truth over every stored event.
    pub fn brute_force_query(&self, query: &RangeQuery) -> Vec<Event> {
        let mut out = Vec::new();
        for events in self.store.values() {
            for e in events {
                if query.matches(e) {
                    out.push(e.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_netsim::deployment::Deployment;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(n: usize, seed: u64) -> DimSystem {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(n, 40.0, 20.0, s).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                return DimSystem::build(topo, dep.field(), 3).unwrap();
            }
            s += 1000;
        }
    }

    fn ev(v: &[f64]) -> Event {
        Event::new(v.to_vec()).unwrap()
    }

    #[test]
    fn insert_query_roundtrip() {
        let mut dim = build(300, 1);
        dim.insert_from(NodeId(0), ev(&[0.7, 0.2, 0.4])).unwrap();
        dim.insert_from(NodeId(3), ev(&[0.1, 0.9, 0.9])).unwrap();
        let q = RangeQuery::exact(vec![(0.6, 0.8), (0.1, 0.3), (0.3, 0.5)]).unwrap();
        let r = dim.query_from(NodeId(99), &q).unwrap();
        assert_eq!(r.events, vec![ev(&[0.7, 0.2, 0.4])]);
        assert!(r.cost.total() > 0);
    }

    #[test]
    fn query_matches_brute_force_over_random_workload() {
        let mut dim = build(300, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let n = dim.topology().len() as u32;
        for _ in 0..300 {
            let e = ev(&[rng.gen(), rng.gen(), rng.gen()]);
            dim.insert_from(NodeId(rng.gen_range(0..n)), e).unwrap();
        }
        for trial in 0..15 {
            let mut bounds = Vec::new();
            for _ in 0..3 {
                if rng.gen_bool(0.3) {
                    bounds.push(None);
                } else {
                    let lo: f64 = rng.gen_range(0.0..0.8);
                    bounds.push(Some((lo, (lo + rng.gen_range(0.0..0.4)).min(1.0))));
                }
            }
            if bounds.iter().all(Option::is_none) {
                bounds[2] = Some((0.2, 0.8));
            }
            let q = RangeQuery::from_bounds(bounds).unwrap();
            let mut got = dim.query_from(NodeId(rng.gen_range(0..n)), &q).unwrap().events;
            let mut want = dim.brute_force_query(&q);
            let key = |e: &Event| e.values().iter().map(|v| (v * 1e9) as i64).collect::<Vec<_>>();
            got.sort_by_key(key);
            want.sort_by_key(key);
            assert_eq!(got, want, "trial {trial}");
        }
    }

    #[test]
    fn empty_result_charges_no_replies() {
        let mut dim = build(300, 3);
        let q = RangeQuery::exact(vec![(0.0, 0.1), (0.0, 0.1), (0.0, 0.1)]).unwrap();
        let r = dim.query_from(NodeId(0), &q).unwrap();
        assert!(r.events.is_empty());
        assert_eq!(r.cost.reply_messages, 0);
        assert!(r.cost.forward_messages > 0, "the query still visits zones");
    }

    #[test]
    fn wider_queries_visit_more_zones() {
        let mut dim = build(300, 4);
        let narrow = RangeQuery::exact(vec![(0.4, 0.45), (0.4, 0.45), (0.4, 0.45)]).unwrap();
        let wide = RangeQuery::exact(vec![(0.1, 0.9), (0.1, 0.9), (0.1, 0.9)]).unwrap();
        let zn = dim.query_from(NodeId(0), &narrow).unwrap().zones_visited;
        let zw = dim.query_from(NodeId(0), &wide).unwrap().zones_visited;
        assert!(zw > zn, "wide {zw} <= narrow {zn}");
    }

    #[test]
    fn unspecified_first_dimension_hurts_most() {
        // The Figure 7(b) effect: 1@1-partial queries prune worst in DIM.
        let mut dim = build(300, 5);
        let q1 = RangeQuery::from_bounds(vec![None, Some((0.4, 0.5)), Some((0.4, 0.5))]).unwrap();
        let q3 = RangeQuery::from_bounds(vec![Some((0.4, 0.5)), Some((0.4, 0.5)), None]).unwrap();
        let z1 = dim.query_from(NodeId(0), &q1).unwrap().zones_visited;
        let z3 = dim.query_from(NodeId(0), &q3).unwrap().zones_visited;
        assert!(z1 >= z3, "1@1-partial should visit at least as many zones as 1@3 ({z1} vs {z3})");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut dim = build(300, 6);
        assert!(matches!(
            dim.insert_from(NodeId(0), ev(&[0.5, 0.5])),
            Err(InsertError::Pool(PoolError::DimensionMismatch { .. }))
        ));
    }

    #[test]
    fn skewed_data_concentrates_on_owners() {
        // DIM's hotspot problem: identical events pile on one owner.
        let mut dim = build(300, 7);
        for i in 0..50 {
            dim.insert_from(NodeId(i), ev(&[0.801, 0.102, 0.053])).unwrap();
        }
        assert_eq!(dim.max_owner_load(), 50);
    }

    #[test]
    fn failure_loses_dead_owners_events_and_repairs_zones() {
        let mut dim = build(300, 9);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let e = ev(&[rng.gen(), rng.gen(), rng.gen()]);
            dim.insert_from(NodeId(rng.gen_range(0..300)), e).unwrap();
        }
        let before = dim.stored_events();
        // Fail three owners that hold events.
        let victims: Vec<NodeId> = {
            let zones = dim.tree().zones().to_vec();
            let mut owners: Vec<NodeId> = zones.iter().map(|z| z.owner).collect();
            owners.sort_unstable();
            owners.dedup();
            owners.into_iter().take(3).collect()
        };
        let report = dim.fail_nodes(&victims).unwrap();
        assert_eq!(report.failed_nodes, 3);
        assert!(report.zones_reassigned >= 3);
        assert_eq!(dim.stored_events(), before - report.events_lost);
        // Every zone owner is now alive, and queries still work.
        for z in dim.tree().zones() {
            assert!(dim.topology().is_alive(z.owner));
        }
        let q = RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap();
        let got = dim.query_from(NodeId(250), &q).unwrap();
        assert_eq!(got.events.len(), dim.stored_events());
    }

    #[test]
    fn traffic_ledger_tracks_costs() {
        let mut dim = build(300, 8);
        let r = dim.insert_from(NodeId(0), ev(&[0.3, 0.6, 0.2])).unwrap();
        assert_eq!(dim.traffic().total_messages(), r.messages);
    }
}

impl pool_core::dcs::DataCentricStore for DimSystem {
    fn scheme_name(&self) -> &'static str {
        "dim"
    }

    fn insert_event(&mut self, source: NodeId, event: Event) -> Result<u64, PoolError> {
        Ok(self.insert_from(source, event)?.messages)
    }

    fn range_query(
        &mut self,
        sink: NodeId,
        query: &RangeQuery,
    ) -> Result<(Vec<Event>, u64), PoolError> {
        let result = self.query_from(sink, query)?;
        Ok((result.events, result.cost.total()))
    }

    fn stored_events(&self) -> usize {
        DimSystem::stored_events(self)
    }

    fn total_messages(&self) -> u64 {
        self.traffic().total_messages()
    }
}

#[cfg(test)]
mod dcs_trait_tests {
    use super::*;
    use pool_core::dcs::DataCentricStore;
    use pool_netsim::deployment::Deployment;

    #[test]
    fn pool_and_dim_are_interchangeable_behind_the_trait() {
        let mut seed = 61u64;
        let (topo, field) = loop {
            let dep = Deployment::paper_setting(250, 40.0, 20.0, seed).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                break (topo, dep.field());
            }
            seed += 1;
        };
        let mut stores: Vec<Box<dyn DataCentricStore>> = vec![
            Box::new(
                pool_core::system::PoolSystem::build(
                    topo.clone(),
                    field,
                    pool_core::config::PoolConfig::paper(),
                )
                .unwrap(),
            ),
            Box::new(DimSystem::build(topo, field, 3).unwrap()),
        ];
        let q = RangeQuery::exact(vec![(0.4, 0.6), (0.0, 0.5), (0.0, 1.0)]).unwrap();
        let mut answers = Vec::new();
        for store in &mut stores {
            store.insert_event(NodeId(3), Event::new(vec![0.5, 0.25, 0.75]).unwrap()).unwrap();
            let (events, msgs) = store.range_query(NodeId(100), &q).unwrap();
            assert!(msgs > 0, "{} charged nothing", store.scheme_name());
            answers.push(events);
        }
        assert_eq!(answers[0], answers[1], "schemes must agree");
    }
}
