//! Churn support for the DIM baseline: epoch-stepped joins, deaths, and
//! waypoint moves with incremental, budgeted zone handoffs.
//!
//! Mirrors [`pool_core::dynamics`] so benchmark drivers can replay the
//! *same* [`EpochPlan`] stream against Pool and DIM. DIM keeps no
//! replicas, so a dead owner's events are lost outright; a zone whose
//! owner changed hands while the old owner survives (a deposed or moved
//! owner) hands its events off under the per-epoch message budget — until
//! the handoff lands those events are parked in the [`DimRepairQueue`] and
//! honestly invisible to queries.

use crate::system::DimSystem;
use pool_core::dynamics::EpochPlan;
use pool_core::event::Event;
use pool_core::failure::FailureReport;
use pool_core::PoolError;
use pool_netsim::node::NodeId;
use pool_transport::metrics::LedgerSnapshot;
use pool_transport::trace::TraceOp;
use pool_transport::TrafficLayer;
use std::collections::{HashSet, VecDeque};

#[derive(Debug, Clone, PartialEq)]
struct DimHandoff {
    zone_idx: usize,
    event: Event,
    /// The surviving ex-owner still physically holding the event.
    from: NodeId,
}

/// Carry-over queue of zone handoffs deferred by the per-epoch budget.
///
/// FIFO, like Pool's [`pool_core::dynamics::RepairQueue`]: parked events
/// are not query-visible until their handoff is delivered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DimRepairQueue {
    tasks: VecDeque<DimHandoff>,
}

impl DimRepairQueue {
    /// Number of handoffs still waiting for budget.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no handoffs are pending.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl DimSystem {
    /// Applies one epoch of churn: joins, moves, then deaths (one
    /// transport rebuild), re-elects the owners of dead or displaced
    /// zones, and drains the handoff queue FIFO under `budget` radio
    /// messages.
    ///
    /// The drain semantics match Pool's
    /// [`pool_core::system::PoolSystem::apply_epoch`]: a budget of 0
    /// pauses handoffs entirely, a handoff whose loss-free route alone
    /// exceeds the budget is abandoned as unreachable, and the report's
    /// `cells_*` fields count *zones*.
    ///
    /// # Errors
    ///
    /// [`PoolError::UnknownNode`] if the plan names a node that was never
    /// deployed (nothing is applied).
    pub fn apply_epoch(
        &mut self,
        plan: &EpochPlan,
        queue: &mut DimRepairQueue,
        budget: u64,
    ) -> Result<FailureReport, PoolError> {
        let ledger_before = LedgerSnapshot::of(self.transport.ledger());
        let mut report = FailureReport { epochs: 1, ..FailureReport::default() };

        // Mutate the radio network on a scratch topology first: one clone
        // per epoch, in-place overlay patches per event, one compaction.
        let mut topo = self.topology.as_ref().clone();
        for &p in &plan.joins {
            topo.add_node(p);
        }
        let nodes = topo.len();
        if let Some(&(bad, _)) = plan.moves.iter().find(|&&(id, _)| id.index() >= nodes) {
            return Err(PoolError::UnknownNode { node: bad, nodes });
        }
        if let Some(&bad) = plan.deaths.iter().find(|d| d.index() >= nodes) {
            return Err(PoolError::UnknownNode { node: bad, nodes });
        }
        let mut displaced = Vec::new();
        for &(id, dest) in &plan.moves {
            if topo.is_alive(id) {
                topo.move_node(id, dest);
                displaced.push(id);
            }
        }
        let mut victims: Vec<NodeId> =
            plan.deaths.iter().copied().filter(|&d| topo.is_alive(d)).collect();
        victims.sort_unstable();
        victims.dedup();
        report.failed_nodes = victims.len();
        topo.fail_nodes(&victims);
        topo.compact();
        report.partitioned = !topo.is_connected();
        if report.partitioned {
            report.nodes_unreachable = topo.alive_count() - topo.largest_component_members().len();
        }
        self.transport.rebuild(&topo);
        self.topology = std::sync::Arc::new(topo);

        // Re-elect the owners of dead and displaced zones.
        let changed = self.tree.re_elect_owners(&self.topology, &displaced);
        report.cells_reassigned = changed.len();
        if report.partitioned {
            let main: HashSet<NodeId> =
                self.topology.largest_component_members().into_iter().collect();
            report.cells_unreachable =
                self.tree.zones().iter().filter(|z| !main.contains(&z.owner)).count();
        }

        // Carried-over handoffs whose source died while queued are lost
        // (DIM keeps no replicas to fall back to).
        let carried = queue.tasks.len();
        let topology = &self.topology;
        queue.tasks.retain(|t| topology.is_alive(t.from));
        report.events_lost += carried - queue.tasks.len();

        // Triage the reassigned zones: a dead ex-owner's events are lost;
        // a surviving ex-owner's events leave the store and queue as
        // budgeted handoffs (invisible to queries until they land).
        for (zone_idx, old_owner, _) in changed {
            let Some(events) = self.store.remove(&zone_idx) else { continue };
            if self.topology.is_alive(old_owner) {
                for event in events {
                    queue.tasks.push_back(DimHandoff { zone_idx, event, from: old_owner });
                }
            } else {
                report.events_lost += events.len();
            }
        }
        report.events_retained = self.stored_events();

        self.drain_handoffs(queue, budget, &mut report);
        report.deferred_repairs = queue.len() as u64;
        ledger_before.debug_assert_sum(
            self.transport.ledger(),
            "dim apply_epoch",
            report.repair_messages,
            &[TrafficLayer::Repair, TrafficLayer::Retransmit],
        );
        Ok(report)
    }

    /// Drains `queue` front-to-back until the next handoff would exceed
    /// `budget` messages (0 pauses; an over-budget route is abandoned).
    fn drain_handoffs(
        &mut self,
        queue: &mut DimRepairQueue,
        budget: u64,
        report: &mut FailureReport,
    ) {
        if budget == 0 {
            return;
        }
        let mut spent = 0u64;
        while let Some(task) = queue.tasks.front() {
            let owner = self.tree.zones()[task.zone_idx].owner;
            if owner == task.from {
                // Ownership swung back to the holder while the handoff
                // waited: the event is already home, zero messages.
                let task = queue.tasks.pop_front().expect("front exists");
                self.store.entry(task.zone_idx).or_default().push(task.event);
                report.events_migrated += 1;
                continue;
            }
            let route = match self.transport.route_to_node(&self.topology, task.from, owner) {
                Ok(route) => route,
                Err(_) => {
                    queue.tasks.pop_front();
                    report.events_unreachable += 1;
                    continue;
                }
            };
            let estimate = route.path.windows(2).filter(|w| w[0] != w[1]).count() as u64;
            if estimate > budget {
                queue.tasks.pop_front();
                report.events_unreachable += 1;
                continue;
            }
            if spent + estimate > budget {
                break;
            }
            let task = queue.tasks.pop_front().expect("front exists");
            let outcome = self.deliver_traced(TraceOp::Repair, &route.path, TrafficLayer::Repair);
            spent += outcome.transmissions;
            report.repair_messages += outcome.transmissions;
            if outcome.delivered {
                report.events_migrated += 1;
                self.store.entry(task.zone_idx).or_default().push(task.event);
            } else {
                report.events_unreachable += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pool_core::dynamics::{ChurnConfig, ChurnPlanner};
    use pool_core::query::RangeQuery;
    use pool_netsim::deployment::Deployment;
    use pool_netsim::geometry::{Point, Rect};
    use pool_netsim::topology::Topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build(n: usize, seed: u64) -> (DimSystem, Rect) {
        let mut s = seed;
        loop {
            let dep = Deployment::paper_setting(n, 40.0, 20.0, s).unwrap();
            let topo = Topology::build(dep.nodes(), 40.0).unwrap();
            if topo.is_connected() {
                return (DimSystem::build(topo, dep.field(), 3).unwrap(), dep.field());
            }
            s += 1000;
        }
    }

    fn load(dim: &mut DimSystem, count: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = dim.topology().len() as u32;
        for _ in 0..count {
            let e = Event::new(vec![rng.gen(), rng.gen(), rng.gen()]).unwrap();
            let mut src = NodeId(rng.gen_range(0..n));
            while !dim.topology().is_alive(src) {
                src = NodeId(rng.gen_range(0..n));
            }
            dim.insert_from(src, e).unwrap();
        }
    }

    fn all_query() -> RangeQuery {
        RangeQuery::exact(vec![(0.0, 1.0), (0.0, 1.0), (0.0, 1.0)]).unwrap()
    }

    #[test]
    fn epochs_keep_dim_queryable_and_owners_alive() {
        let (mut dim, field) = build(300, 41);
        load(&mut dim, 120, 1);
        let config = ChurnConfig::new(3).with_rates(2, 3, 3);
        let mut planner = ChurnPlanner::new(config);
        let mut queue = DimRepairQueue::default();
        let mut merged = FailureReport::default();
        for _ in 0..6 {
            let plan = planner.plan(dim.topology(), field);
            let report = dim.apply_epoch(&plan, &mut queue, u64::MAX).unwrap();
            merged = merged.merge(&report);
            for z in dim.tree().zones() {
                assert!(dim.topology().is_alive(z.owner), "owner {} is dead", z.owner);
            }
            let sink = dim.topology().largest_component_members()[0];
            let got = dim.query_from(sink, &all_query()).unwrap();
            assert!(got.events.len() <= dim.stored_events());
        }
        assert_eq!(merged.epochs, 6);
        assert!(merged.failed_nodes > 0);
        assert_eq!(queue.len(), 0, "an unbounded budget leaves nothing deferred");
    }

    #[test]
    fn budget_bounds_dim_handoff_traffic_per_epoch() {
        let (mut dim, field) = build(300, 42);
        load(&mut dim, 150, 2);
        let budget = 20u64;
        let config = ChurnConfig::new(7).with_rates(1, 8, 6);
        let mut planner = ChurnPlanner::new(config);
        let mut queue = DimRepairQueue::default();
        for _ in 0..10 {
            let plan = planner.plan(dim.topology(), field);
            let before = dim.ledger().layer_total(TrafficLayer::Repair);
            let report = dim.apply_epoch(&plan, &mut queue, budget).unwrap();
            let after = dim.ledger().layer_total(TrafficLayer::Repair);
            assert!(after - before <= budget, "epoch spent {} > {budget}", after - before);
            assert_eq!(report.repair_messages, after - before);
            assert_eq!(report.deferred_repairs as usize, queue.len());
        }
    }

    #[test]
    fn deferred_dim_events_return_once_the_budget_allows() {
        let (mut dim, field) = build(300, 43);
        load(&mut dim, 100, 3);
        let before = dim.stored_events();
        let config = ChurnConfig::new(19).with_rates(0, 5, 5);
        let mut planner = ChurnPlanner::new(config);
        let mut queue = DimRepairQueue::default();
        let plan = planner.plan(dim.topology(), field);
        let report = dim.apply_epoch(&plan, &mut queue, 0).unwrap();
        assert_eq!(
            dim.stored_events() + queue.len() + report.events_lost,
            before,
            "every event is visible, queued, or lost: {report:?}"
        );
        let sink = dim.topology().largest_component_members()[0];
        let got = dim.query_from(sink, &all_query()).unwrap();
        assert_eq!(got.events.len(), dim.stored_events(), "queries see only the visible store");
        if !queue.is_empty() {
            let report = dim.apply_epoch(&EpochPlan::empty(), &mut queue, u64::MAX).unwrap();
            assert_eq!(queue.len(), 0);
            assert!(report.events_migrated > 0);
            let got = dim.query_from(sink, &all_query()).unwrap();
            assert_eq!(got.events.len(), dim.stored_events());
        }
    }

    #[test]
    fn unknown_plan_nodes_are_typed_errors() {
        let (mut dim, _) = build(300, 44);
        let mut queue = DimRepairQueue::default();
        let plan = EpochPlan { joins: vec![], deaths: vec![NodeId(900)], moves: vec![] };
        let err = dim.apply_epoch(&plan, &mut queue, u64::MAX).unwrap_err();
        assert!(matches!(err, PoolError::UnknownNode { node: NodeId(900), nodes: 300 }));
        let plan = EpochPlan {
            joins: vec![],
            deaths: vec![],
            moves: vec![(NodeId(301), Point::new(0.0, 0.0))],
        };
        assert!(dim.apply_epoch(&plan, &mut queue, u64::MAX).is_err());
        assert_eq!(dim.topology().len(), 300);
    }

    #[test]
    fn dim_fail_nodes_is_double_kill_safe() {
        let (mut dim, _) = build(300, 45);
        load(&mut dim, 50, 4);
        let victim = dim.tree().zones()[0].owner;
        let first = dim.fail_nodes(&[victim, victim]).unwrap();
        assert_eq!(first.failed_nodes, 1, "duplicates count once");
        let second = dim.fail_nodes(&[victim]).unwrap();
        assert_eq!(second, crate::system::DimFailureReport::default());
        let err = dim.fail_nodes(&[NodeId(300)]).unwrap_err();
        assert!(matches!(err, PoolError::UnknownNode { node: NodeId(300), nodes: 300 }));
    }
}
