//! Zone codes and DIM's locality-preserving code ↔ value mapping.
//!
//! A zone code is a bit string with **two readings**:
//!
//! * **Physically**, bit `j` halves the deployment field — vertically on
//!   even depths, horizontally on odd depths — so a code names a rectangle
//!   of the field (the zone).
//! * **In attribute space**, bit `j` halves the range of attribute
//!   `j mod k`, so the same code names a hyper-rectangle of event values —
//!   the events the zone stores.
//!
//! The double reading is DIM's locality-preserving geographic hash: an
//! event's code is computed bit by bit from its attribute values, and the
//! event is stored in the zone whose code is a prefix of the event's code.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A zone code: up to 64 bits, most-significant-first.
///
/// # Examples
///
/// ```
/// use pool_dim::code::ZoneCode;
///
/// let code = ZoneCode::from_bits(&[true, true, true, false]); // "1110"
/// assert_eq!(code.to_string(), "1110");
/// assert!(ZoneCode::from_bits(&[true, true]).is_prefix_of(&code));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ZoneCode {
    /// Bits packed most-significant-first into the low `len` positions.
    bits: u64,
    len: u8,
}

impl ZoneCode {
    /// The empty (root) code.
    pub fn root() -> Self {
        ZoneCode { bits: 0, len: 0 }
    }

    /// Builds a code from explicit bits.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 bits are supplied.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut code = ZoneCode::root();
        for &b in bits {
            code = code.child(b);
        }
        code
    }

    /// Parses a code from a string of `0`s and `1`s.
    ///
    /// # Panics
    ///
    /// Panics on characters other than `0`/`1` or length over 64.
    pub fn parse(s: &str) -> Self {
        let mut code = ZoneCode::root();
        for c in s.chars() {
            match c {
                '0' => code = code.child(false),
                '1' => code = code.child(true),
                other => panic!("invalid zone-code character {other:?}"),
            }
        }
        code
    }

    /// The code extended by one bit.
    ///
    /// # Panics
    ///
    /// Panics at 64 bits (deeper zone trees than 2⁶⁴ zones are impossible
    /// in practice).
    pub fn child(self, bit: bool) -> Self {
        assert!(self.len < 64, "zone code overflow");
        ZoneCode { bits: (self.bits << 1) | bit as u64, len: self.len + 1 }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the code is the root (no bits).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (0 = first/most-significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len(), "bit index {i} out of range");
        (self.bits >> (self.len() - 1 - i)) & 1 == 1
    }

    /// Whether `self` is a prefix of `other` (every zone's code is a prefix
    /// of the codes of the events it stores).
    pub fn is_prefix_of(&self, other: &ZoneCode) -> bool {
        if self.len > other.len {
            return false;
        }
        (other.bits >> (other.len - self.len)) == self.bits
    }

    /// The per-dimension attribute ranges this code pins down, for
    /// `k`-dimensional events: bit `j` halves the range of dimension
    /// `j mod k`.
    pub fn attribute_ranges(&self, k: usize) -> Vec<(f64, f64)> {
        assert!(k > 0, "dimensionality must be positive");
        let mut ranges = vec![(0.0f64, 1.0f64); k];
        for j in 0..self.len() {
            let dim = j % k;
            let (lo, hi) = ranges[dim];
            let mid = (lo + hi) / 2.0;
            ranges[dim] = if self.bit(j) { (mid, hi) } else { (lo, mid) };
        }
        ranges
    }

    /// The first `len` bits of the *physical* reading of a position inside
    /// `field`: bit `j` halves the field vertically (even `j`) or
    /// horizontally (odd `j`). A zone's code is exactly this reading of
    /// any point in its region.
    pub fn of_position(
        p: pool_netsim::geometry::Point,
        field: pool_netsim::geometry::Rect,
        len: usize,
    ) -> Self {
        let mut region = field;
        let mut code = ZoneCode::root();
        for j in 0..len {
            if j % 2 == 0 {
                let mid = (region.min.x + region.max.x) / 2.0;
                if p.x >= mid {
                    code = code.child(true);
                    region.min.x = mid;
                } else {
                    code = code.child(false);
                    region.max.x = mid;
                }
            } else {
                let mid = (region.min.y + region.max.y) / 2.0;
                if p.y >= mid {
                    code = code.child(true);
                    region.min.y = mid;
                } else {
                    code = code.child(false);
                    region.max.y = mid;
                }
            }
        }
        code
    }

    /// The first `len` code bits of a `k`-dimensional event — DIM's
    /// locality-preserving hash.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of_event(values: &[f64], len: usize) -> Self {
        assert!(!values.is_empty(), "event has no attributes");
        let k = values.len();
        let mut ranges = vec![(0.0f64, 1.0f64); k];
        let mut code = ZoneCode::root();
        for j in 0..len {
            let dim = j % k;
            let (lo, hi) = ranges[dim];
            let mid = (lo + hi) / 2.0;
            if values[dim] >= mid {
                code = code.child(true);
                ranges[dim] = (mid, hi);
            } else {
                code = code.child(false);
                ranges[dim] = (lo, mid);
            }
        }
        code
    }
}

impl fmt::Display for ZoneCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        for i in 0..self.len() {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0", "1", "010", "1111", "1110", "00"] {
            assert_eq!(ZoneCode::parse(s).to_string(), s);
        }
        assert_eq!(ZoneCode::root().to_string(), "ε");
    }

    #[test]
    fn prefix_relation() {
        let long = ZoneCode::parse("1101");
        assert!(ZoneCode::parse("110").is_prefix_of(&long));
        assert!(ZoneCode::parse("1101").is_prefix_of(&long));
        assert!(!ZoneCode::parse("111").is_prefix_of(&long));
        assert!(!ZoneCode::parse("11011").is_prefix_of(&long));
        assert!(ZoneCode::root().is_prefix_of(&long));
    }

    #[test]
    fn figure1_attribute_ranges() {
        // Figure 1(b): the value ranges of each zone code for k = 3.
        let cases: [(&str, [(f64, f64); 3]); 8] = [
            ("010", [(0.0, 0.5), (0.5, 1.0), (0.0, 0.5)]),
            ("011", [(0.0, 0.5), (0.5, 1.0), (0.5, 1.0)]),
            ("00", [(0.0, 0.5), (0.0, 0.5), (0.0, 1.0)]),
            ("110", [(0.5, 1.0), (0.5, 1.0), (0.0, 0.5)]),
            ("1111", [(0.75, 1.0), (0.5, 1.0), (0.5, 1.0)]),
            ("1110", [(0.5, 0.75), (0.5, 1.0), (0.5, 1.0)]),
            ("100", [(0.5, 1.0), (0.0, 0.5), (0.0, 0.5)]),
            ("101", [(0.5, 1.0), (0.0, 0.5), (0.5, 1.0)]),
        ];
        for (code, expect) in cases {
            let got = ZoneCode::parse(code).attribute_ranges(3);
            assert_eq!(got, expect.to_vec(), "code {code}");
        }
    }

    #[test]
    fn event_code_lands_in_own_ranges() {
        let values = [0.62, 0.31, 0.87];
        let code = ZoneCode::of_event(&values, 9);
        let ranges = code.attribute_ranges(3);
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            assert!(
                values[i] >= lo && values[i] < hi + 1e-12,
                "dim {i}: {} outside [{lo}, {hi})",
                values[i]
            );
        }
    }

    #[test]
    fn event_code_prefixes_are_consistent() {
        let values = [0.2, 0.9, 0.4];
        let short = ZoneCode::of_event(&values, 4);
        let long = ZoneCode::of_event(&values, 10);
        assert!(short.is_prefix_of(&long));
    }

    #[test]
    fn bit_accessor_msb_first() {
        let c = ZoneCode::parse("101");
        assert!(c.bit(0));
        assert!(!c.bit(1));
        assert!(c.bit(2));
    }

    #[test]
    fn ordering_is_lexicographic_for_same_length() {
        assert!(ZoneCode::parse("001") < ZoneCode::parse("010"));
        assert!(ZoneCode::parse("10") < ZoneCode::parse("11"));
    }

    #[test]
    #[should_panic(expected = "invalid zone-code character")]
    fn parse_rejects_garbage() {
        let _ = ZoneCode::parse("10x");
    }
}
