//! A deterministic discrete-event scheduler.
//!
//! Events are `(time, payload)` pairs popped in time order; ties are broken
//! by insertion order so simulations are fully reproducible. This queue is
//! the clock of record for the latency-aware execution layer: every virtual
//! timestamp in the repo ultimately comes from popping one of these events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Simulated time in seconds.
pub type SimTime = f64;

/// A rejected [`EventQueue::schedule`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleError {
    /// The event time was NaN, which has no place on a timeline.
    NanTime,
    /// The event time was negative or earlier than the queue's current
    /// time; a discrete-event clock only moves forward.
    PastTime {
        /// The rejected event time.
        time: SimTime,
        /// The queue's current time.
        now: SimTime,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NanTime => write!(f, "event time must not be NaN"),
            ScheduleError::PastTime { time, now } => {
                write!(f, "cannot schedule in the past ({time} < {now})")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first order. NaN
        // times are rejected at the schedule boundary, so `total_cmp` is a
        // plain total order here — it exists to keep the comparator
        // panic-free (the repo-wide convention for ordering floats).
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue driving a discrete-event simulation.
///
/// # Examples
///
/// ```
/// use pool_netsim::schedule::EventQueue;
///
/// # fn main() -> Result<(), pool_netsim::schedule::ScheduleError> {
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late")?;
/// q.schedule(1.0, "early")?;
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// assert!(q.schedule(f64::NAN, "never").is_err());
/// # Ok(())
/// # }
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0.0 }
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NanTime`] for NaN times and
    /// [`ScheduleError::PastTime`] for times earlier than the current time
    /// (which includes all negative times — the clock starts at zero).
    pub fn schedule(&mut self, time: SimTime, payload: T) -> Result<(), ScheduleError> {
        if time.is_nan() {
            return Err(ScheduleError::NanTime);
        }
        if time < self.now {
            return Err(ScheduleError::PastTime { time, now: self.now });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
        Ok(())
    }

    /// Schedules `payload` at `delay` seconds after the current time.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::NanTime`] for a NaN delay and
    /// [`ScheduleError::PastTime`] for a negative one.
    pub fn schedule_after(&mut self, delay: SimTime, payload: T) -> Result<(), ScheduleError> {
        if delay.is_nan() {
            return Err(ScheduleError::NanTime);
        }
        if delay < 0.0 {
            return Err(ScheduleError::PastTime { time: self.now + delay, now: self.now });
        }
        self.schedule(self.now + delay, payload)
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.payload)
        })
    }

    /// The current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c').unwrap();
        q.schedule(1.0, 'a').unwrap();
        q.schedule(2.0, 'b').unwrap();
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1).unwrap();
        q.schedule(1.0, 2).unwrap();
        q.schedule(1.0, 3).unwrap();
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ()).unwrap();
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first").unwrap();
        q.pop();
        q.schedule_after(1.5, "second").unwrap();
        assert_eq!(q.pop(), Some((3.5, "second")));
    }

    #[test]
    fn scheduling_in_the_past_is_a_typed_error() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ()).unwrap();
        q.pop();
        assert_eq!(q.schedule(1.0, ()), Err(ScheduleError::PastTime { time: 1.0, now: 2.0 }));
    }

    #[test]
    fn negative_and_nan_times_are_rejected() {
        let mut q = EventQueue::new();
        assert_eq!(q.schedule(-0.5, ()), Err(ScheduleError::PastTime { time: -0.5, now: 0.0 }));
        assert_eq!(q.schedule(f64::NAN, ()), Err(ScheduleError::NanTime));
        assert_eq!(
            q.schedule_after(-1.0, ()),
            Err(ScheduleError::PastTime { time: -1.0, now: 0.0 })
        );
        assert_eq!(q.schedule_after(f64::NAN, ()), Err(ScheduleError::NanTime));
        // Rejections leave the queue untouched.
        assert!(q.is_empty());
        q.schedule(0.0, ()).unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ()).unwrap();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    /// One step of an interleaved workload: schedule a delay or pop.
    #[derive(Debug, Clone, Copy)]
    enum Step {
        Schedule(u32),
        Pop,
    }

    /// Expands a seed into a reproducible interleaving of schedules and
    /// pops (the vendored proptest has no collection strategies).
    fn expand(seed: u64, len: usize) -> Vec<Step> {
        let mut state = seed;
        let mut next = move || {
            // splitmix64, the repo's standard seed expander.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (0..len)
            .map(|_| {
                let word = next();
                if word % 4 == 0 {
                    Step::Pop
                } else {
                    Step::Schedule((word >> 2) as u32 % 1000)
                }
            })
            .collect()
    }

    fn steps() -> impl Strategy<Value = Vec<Step>> {
        (any::<u64>(), 0usize..200).prop_map(|(seed, len)| expand(seed, len))
    }

    proptest! {
        /// Pops are nondecreasing in time, and events scheduled for the
        /// same instant come back in insertion (FIFO) order — under any
        /// interleaving of schedules and pops.
        #[test]
        fn pops_are_nondecreasing_with_fifo_ties(steps in steps()) {
            let mut q = EventQueue::new();
            let mut id = 0u64;
            let mut popped: Vec<(SimTime, u64)> = Vec::new();
            for step in steps {
                match step {
                    Step::Schedule(millis) => {
                        // Coarse delays force plenty of exact ties.
                        q.schedule_after(f64::from(millis / 100) * 0.01, id).unwrap();
                        id += 1;
                    }
                    Step::Pop => {
                        if let Some(ev) = q.pop() {
                            popped.push(ev);
                        }
                    }
                }
            }
            while let Some(ev) = q.pop() {
                popped.push(ev);
            }
            prop_assert_eq!(popped.len() as u64, id, "every scheduled event pops exactly once");
            for w in popped.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time went backward: {:?}", w);
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated: {:?}", w);
                }
            }
        }

        /// The clock never runs backward and always equals the last popped
        /// event's time.
        #[test]
        fn now_tracks_the_last_pop(steps in steps()) {
            let mut q = EventQueue::new();
            for step in steps {
                let before = q.now();
                match step {
                    Step::Schedule(millis) => q.schedule_after(f64::from(millis) * 1e-3, ()).unwrap(),
                    Step::Pop => {
                        if let Some((t, ())) = q.pop() {
                            prop_assert_eq!(q.now(), t);
                        }
                    }
                }
                prop_assert!(q.now() >= before, "clock ran backward");
            }
        }
    }
}
