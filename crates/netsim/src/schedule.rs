//! A deterministic discrete-event scheduler.
//!
//! Events are `(time, payload)` pairs popped in time order; ties are broken
//! by insertion order so simulations are fully reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in seconds.
pub type SimTime = f64;

struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first order.
        other
            .time
            .partial_cmp(&self.time)
            .expect("NaN event time")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue driving a discrete-event simulation.
///
/// # Examples
///
/// ```
/// use pool_netsim::schedule::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0.0 }
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current time.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(time >= self.now, "cannot schedule in the past ({time} < {})", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Schedules `payload` at `delay` seconds after the current time.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_after(&mut self, delay: SimTime, payload: T) {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.payload)
        })
    }

    /// The current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(1.0, 2);
        q.schedule(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(2.0, "first");
        q.pop();
        q.schedule_after(1.5, "second");
        assert_eq!(q.pop(), Some((3.5, "second")));
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
