//! Sensor node identity and per-node state.

use crate::geometry::Point;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a sensor node.
///
/// Node ids are dense indices assigned at deployment time, so they can be
/// used directly to index per-node vectors.
///
/// # Examples
///
/// ```
/// use pool_netsim::node::NodeId;
///
/// let id = NodeId(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(format!("{id}"), "n7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index into per-node vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A deployed sensor node: an id plus a fixed geographic position.
///
/// The paper assumes every node knows its own location (via GPS or a
/// localization service); we model that by constructing nodes with known
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node's identifier.
    pub id: NodeId,
    /// The node's position in the field, in meters.
    pub position: Point,
}

impl Node {
    /// Creates a node at `position`.
    pub fn new(id: NodeId, position: Point) -> Self {
        Node { id, position }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id: NodeId = 42u32.into();
        assert_eq!(id, NodeId(42));
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn node_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }

    #[test]
    fn node_ordering_by_id() {
        assert!(NodeId(1) < NodeId(2));
    }
}
