//! A message-passing discrete-event simulator over a unit-disk topology.
//!
//! Protocols are state machines reacting to delivered messages. A node may
//! only transmit to its unit-disk neighbors (enforced at send time), so any
//! multi-hop behaviour must be implemented by the protocol itself — exactly
//! the constraint real sensor firmware faces.
//!
//! The storage schemes in this workspace mostly use analytic path accounting
//! (via [`crate::stats::TrafficStats`]) for speed, but the simulator is the
//! ground truth: the integration suite replays GPSR hop-by-hop inside it and
//! checks that both accountings agree.

use crate::node::NodeId;
use crate::schedule::{EventQueue, SimTime};
use crate::stats::TrafficStats;
use crate::topology::Topology;
use crate::trace::TraceLog;

/// The side effects a protocol may produce while handling a message.
///
/// A `Context` is passed to [`Protocol::on_message`]; sends are enqueued and
/// delivered after the configured per-hop latency.
#[derive(Debug)]
pub struct Context<M> {
    now: SimTime,
    outbox: Vec<(NodeId, NodeId, M)>,
}

impl<M> Context<M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Transmits `msg` from `from` to its neighbor `to`. The neighbor
    /// constraint is validated when the simulator flushes the outbox.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.outbox.push((from, to, msg));
    }
}

/// A distributed protocol running on every node of the network.
pub trait Protocol {
    /// The over-the-air message type.
    type Message: Clone;

    /// Handles `msg` arriving at node `at`. Replies and forwards go through
    /// `ctx`.
    fn on_message(&mut self, ctx: &mut Context<Self::Message>, at: NodeId, msg: Self::Message);
}

/// Errors surfaced while running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A protocol attempted to transmit between non-neighbor nodes.
    NotANeighbor {
        /// The sending node.
        from: NodeId,
        /// The intended (non-neighbor) receiver.
        to: NodeId,
    },
    /// The event budget was exhausted, which usually means a routing loop.
    EventBudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NotANeighbor { from, to } => {
                write!(f, "node {from} attempted to send to non-neighbor {to}")
            }
            SimError::EventBudgetExhausted { budget } => {
                write!(f, "simulation exceeded event budget of {budget} (routing loop?)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Drives a [`Protocol`] over a [`Topology`], delivering messages in
/// simulated-time order and recording traffic.
///
/// # Examples
///
/// A one-hop flood:
///
/// ```
/// use pool_netsim::deployment::{Deployment, Placement};
/// use pool_netsim::geometry::Rect;
/// use pool_netsim::node::NodeId;
/// use pool_netsim::sim::{Context, Protocol, Simulator};
/// use pool_netsim::topology::Topology;
///
/// struct Ping;
/// impl Protocol for Ping {
///     type Message = u8;
///     fn on_message(&mut self, ctx: &mut Context<u8>, at: NodeId, ttl: u8) {
///         // nothing to do at TTL 0
///         let _ = (ctx, at, ttl);
///     }
/// }
///
/// let nodes = Deployment::new(Rect::square(50.0), 20, Placement::Uniform, 1).nodes();
/// let topo = Topology::build(nodes, 30.0).unwrap();
/// let mut sim = Simulator::new(topo, Ping);
/// sim.inject(NodeId(0), 0);
/// sim.run().unwrap();
/// ```
#[derive(Debug)]
pub struct Simulator<P: Protocol> {
    topology: Topology,
    protocol: P,
    queue: EventQueue<(NodeId, NodeId, P::Message)>,
    traffic: TrafficStats,
    hop_latency: SimTime,
    event_budget: u64,
    trace: Option<TraceLog>,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator with a 1 ms per-hop latency and a one-million
    /// event budget.
    pub fn new(topology: Topology, protocol: P) -> Self {
        let n = topology.len();
        Simulator {
            topology,
            protocol,
            queue: EventQueue::new(),
            traffic: TrafficStats::new(n),
            hop_latency: 1e-3,
            event_budget: 1_000_000,
            trace: None,
        }
    }

    /// Enables the message flight recorder (see [`crate::trace`]).
    pub fn with_tracing(mut self) -> Self {
        self.trace = Some(TraceLog::new());
        self
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }

    /// Sets the per-hop delivery latency in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is negative or not finite.
    pub fn with_hop_latency(mut self, latency: SimTime) -> Self {
        assert!(latency.is_finite() && latency >= 0.0, "invalid hop latency {latency}");
        self.hop_latency = latency;
        self
    }

    /// Sets the maximum number of deliveries before the run aborts.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Injects an external message (e.g. a locally-sensed event or a user
    /// query arriving at the sink) at node `at`, delivered immediately.
    pub fn inject(&mut self, at: NodeId, msg: P::Message) {
        // Local injection is not a radio transmission: from == to.
        self.queue.schedule_after(0.0, (at, at, msg));
    }

    /// Runs until no events remain.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotANeighbor`] if the protocol violates the radio
    /// model, or [`SimError::EventBudgetExhausted`] on suspected livelock.
    pub fn run(&mut self) -> Result<u64, SimError> {
        let mut delivered = 0u64;
        while let Some((now, (from, to, msg))) = self.queue.pop() {
            delivered += 1;
            if delivered > self.event_budget {
                return Err(SimError::EventBudgetExhausted { budget: self.event_budget });
            }
            self.traffic.record_hop(from, to);
            if let Some(trace) = &mut self.trace {
                trace.record(now, from, to);
            }
            let mut ctx = Context { now, outbox: Vec::new() };
            self.protocol.on_message(&mut ctx, to, msg);
            for (f, t, m) in ctx.outbox {
                if f != t && !self.topology.are_neighbors(f, t) {
                    return Err(SimError::NotANeighbor { from: f, to: t });
                }
                self.queue.schedule_after(self.hop_latency, (f, t, m));
            }
        }
        Ok(delivered)
    }

    /// The traffic recorded so far.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Immutable access to the protocol state (for post-run assertions).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable access to the protocol state.
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};
    use crate::geometry::Rect;
    use std::collections::HashSet;

    /// Floods a token through the network; each node forwards once.
    struct Flood {
        seen: HashSet<NodeId>,
        neighbor_map: Vec<Vec<NodeId>>,
    }

    impl Protocol for Flood {
        type Message = ();
        fn on_message(&mut self, ctx: &mut Context<()>, at: NodeId, _msg: ()) {
            if !self.seen.insert(at) {
                return;
            }
            for &nb in &self.neighbor_map[at.index()] {
                ctx.send(at, nb, ());
            }
        }
    }

    fn build_topo(n: usize, side: f64, range: f64, seed: u64) -> Topology {
        let nodes = Deployment::new(Rect::square(side), n, Placement::Uniform, seed).nodes();
        Topology::build(nodes, range).unwrap()
    }

    #[test]
    fn flood_reaches_whole_connected_network() {
        let topo = build_topo(50, 60.0, 25.0, 3);
        assert!(topo.is_connected());
        let neighbor_map =
            (0..topo.len()).map(|i| topo.neighbors(NodeId(i as u32)).to_vec()).collect();
        let mut sim = Simulator::new(topo, Flood { seen: HashSet::new(), neighbor_map });
        sim.inject(NodeId(0), ());
        sim.run().unwrap();
        assert_eq!(sim.protocol().seen.len(), sim.topology().len());
    }

    #[test]
    fn flood_traffic_counts_each_forward() {
        let topo = build_topo(30, 50.0, 25.0, 8);
        let neighbor_map: Vec<Vec<NodeId>> =
            (0..topo.len()).map(|i| topo.neighbors(NodeId(i as u32)).to_vec()).collect();
        let expected: u64 = neighbor_map.iter().map(|v| v.len() as u64).sum();
        let mut sim = Simulator::new(topo, Flood { seen: HashSet::new(), neighbor_map });
        sim.inject(NodeId(0), ());
        sim.run().unwrap();
        // Every node forwards to all of its neighbors exactly once (the
        // injection itself is a free self-hop).
        assert_eq!(sim.traffic().total_messages(), expected);
    }

    struct BadSender;
    impl Protocol for BadSender {
        type Message = ();
        fn on_message(&mut self, ctx: &mut Context<()>, at: NodeId, _msg: ()) {
            // Try to transmit to a node far outside radio range.
            if at == NodeId(0) {
                ctx.send(at, NodeId(1), ());
            }
        }
    }

    #[test]
    fn non_neighbor_send_is_rejected() {
        let nodes = vec![
            crate::node::Node::new(NodeId(0), crate::geometry::Point::new(0.0, 0.0)),
            crate::node::Node::new(NodeId(1), crate::geometry::Point::new(100.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 10.0).unwrap();
        let mut sim = Simulator::new(topo, BadSender);
        sim.inject(NodeId(0), ());
        assert_eq!(sim.run(), Err(SimError::NotANeighbor { from: NodeId(0), to: NodeId(1) }));
    }

    struct PingPong {
        count: u64,
        peer_of: Vec<NodeId>,
    }
    impl Protocol for PingPong {
        type Message = ();
        fn on_message(&mut self, ctx: &mut Context<()>, at: NodeId, _msg: ()) {
            self.count += 1;
            ctx.send(at, self.peer_of[at.index()], ());
        }
    }

    #[test]
    fn event_budget_catches_livelock() {
        let nodes = vec![
            crate::node::Node::new(NodeId(0), crate::geometry::Point::new(0.0, 0.0)),
            crate::node::Node::new(NodeId(1), crate::geometry::Point::new(1.0, 0.0)),
        ];
        let topo = Topology::build(nodes, 10.0).unwrap();
        let mut sim =
            Simulator::new(topo, PingPong { count: 0, peer_of: vec![NodeId(1), NodeId(0)] })
                .with_event_budget(100);
        sim.inject(NodeId(0), ());
        assert_eq!(sim.run(), Err(SimError::EventBudgetExhausted { budget: 100 }));
    }

    #[test]
    fn injection_is_free() {
        let topo = build_topo(5, 20.0, 30.0, 1);
        struct Noop;
        impl Protocol for Noop {
            type Message = ();
            fn on_message(&mut self, _ctx: &mut Context<()>, _at: NodeId, _msg: ()) {}
        }
        let mut sim = Simulator::new(topo, Noop);
        sim.inject(NodeId(0), ());
        sim.run().unwrap();
        assert_eq!(sim.traffic().total_messages(), 0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::deployment::{Deployment, Placement};
    use crate::geometry::Rect;

    struct Relay {
        next_of: Vec<Option<NodeId>>,
    }
    impl Protocol for Relay {
        type Message = ();
        fn on_message(&mut self, ctx: &mut Context<()>, at: NodeId, _msg: ()) {
            if let Some(next) = self.next_of[at.index()] {
                ctx.send(at, next, ());
            }
        }
    }

    #[test]
    fn trace_matches_traffic_ledger() {
        let nodes = Deployment::new(Rect::square(60.0), 25, Placement::Uniform, 6).nodes();
        let topo = Topology::build(nodes, 30.0).unwrap();
        // A 3-hop relay along arbitrary neighbors.
        let mut next_of = vec![None; topo.len()];
        let a = NodeId(0);
        let b = topo.neighbors(a)[0];
        let c = topo.neighbors(b).iter().copied().find(|&x| x != a).unwrap();
        next_of[a.index()] = Some(b);
        next_of[b.index()] = Some(c);
        let mut sim = Simulator::new(topo, Relay { next_of }).with_tracing();
        sim.inject(a, ());
        sim.run().unwrap();
        let trace = sim.trace().unwrap();
        // Injection + 2 radio hops are logged; the ledger counts only hops.
        assert_eq!(trace.len(), 3);
        assert_eq!(sim.traffic().total_messages(), 2);
        assert_eq!(trace.sends_by(a), 1);
        assert!(trace.makespan() > 0.0);
    }

    #[test]
    fn tracing_off_by_default() {
        let nodes = Deployment::new(Rect::square(20.0), 5, Placement::Uniform, 1).nodes();
        let topo = Topology::build(nodes, 30.0).unwrap();
        let sim = Simulator::new(topo, Relay { next_of: vec![None; 5] });
        assert!(sim.trace().is_none());
    }
}
